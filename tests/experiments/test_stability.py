"""Multi-seed stability: the reproduction is not tuned to one seed.

Runs every task at several seeds and asserts the convergence quality
band the paper reports (§6.2: the vast majority of scenarios at 100 %,
the outliers a small-superset tail, never an undershoot).
"""

import pytest

from repro.assistant.strategies import SimulationStrategy
from repro.experiments.runner import run_iflex
from repro.experiments.tasks import TASK_IDS, build_task

SEEDS = (0, 1, 2)


@pytest.mark.parametrize("seed", SEEDS)
def test_all_tasks_converge_within_band(seed):
    exact = 0
    outcomes = {}
    for task_id in TASK_IDS:
        task = build_task(task_id, size=80, seed=seed)
        run = run_iflex(task, strategy=SimulationStrategy(alpha=0.1), seed=seed)
        outcomes[task_id] = run.superset_pct
        # never an undershoot: supersets only
        assert run.final_count >= run.correct_count * 0.999, (task_id, seed)
        if round(run.superset_pct) == 100:
            exact += 1
    # at least 6 of 9 tasks exactly right at every seed; no blowups
    # beyond the similarity-join tail the paper also reports
    assert exact >= 6, outcomes
    for task_id, pct in outcomes.items():
        assert pct <= 700, (task_id, seed, outcomes)


@pytest.mark.parametrize("task_id", ["T1", "T7"])
def test_easy_tasks_exact_across_seeds(task_id):
    for seed in SEEDS:
        task = build_task(task_id, size=60, seed=seed)
        run = run_iflex(task, strategy=SimulationStrategy(alpha=0.1), seed=seed)
        assert round(run.superset_pct) == 100, (task_id, seed)
