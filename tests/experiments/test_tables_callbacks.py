"""Table-harness plumbing: progress callbacks and extras contracts."""

import pytest

from repro.experiments.tables import table3, table4, table5


class TestProgressCallbacks:
    def test_table3_progress_called_per_scenario(self):
        seen = []
        table3(seed=0, scale=0.04, progress=seen.append)
        assert len(seen) == 27
        assert all(message.startswith("table3 ") for message in seen)

    def test_table4_progress(self):
        seen = []
        table4(seed=0, scale=0.04, progress=seen.append)
        assert len(seen) == 9

    def test_table5_progress(self):
        seen = []
        table5(seed=0, scale=0.04, progress=seen.append)
        assert len(seen) == 18
        assert any("Seq" in message for message in seen)
        assert any("Sim" in message for message in seen)


class TestExtrasContracts:
    def test_table3_runs_pair_tasks_and_runs(self):
        _, _, extras = table3(seed=0, scale=0.04)
        for task, run in extras["runs"]:
            assert task.task_id == run.task_id
            assert run.minutes > 0
        assert extras["scale"] == 0.04

    def test_table5_runs_labelled(self):
        _, _, extras = table5(seed=0, scale=0.04)
        labels = {label for _, label, _ in extras["runs"]}
        assert labels == {"Seq", "Sim"}
