"""Task construction tests for T1-T9."""

import pytest

from repro.experiments.tasks import TASK_IDS, build_task


class TestBuildTask:
    @pytest.mark.parametrize("task_id", TASK_IDS)
    def test_builds_and_validates(self, task_id):
        task = build_task(task_id, size=20, seed=1)
        task.program.check_safety()
        assert task.correct_rows is not None
        assert task.key_attr in {
            v.name
            for r in task.program.skeleton_rules
            if r.head.name == task.program.query
            for v in r.head.variables
        }

    @pytest.mark.parametrize("task_id", TASK_IDS)
    def test_truth_spans_match_programs(self, task_id):
        task = build_task(task_id, size=20, seed=1)
        ie_attrs = set(task.program.ie_attributes())
        for key in task.truth.attribute_spans:
            assert key in ie_attrs, key

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            build_task("T99")

    def test_size_controls_tables(self):
        task = build_task("T7", size=30, seed=1)
        assert task.table_sizes() == {"Barnes": 30}

    def test_join_task_has_both_tables(self):
        task = build_task("T9", size=25, seed=1)
        assert set(task.table_sizes()) == {"Amazon", "Barnes"}

    def test_deterministic(self):
        a = build_task("T5", size=25, seed=9)
        b = build_task("T5", size=25, seed=9)
        assert a.correct_rows == b.correct_rows

    def test_answers_nonempty_at_reasonable_size(self):
        for task_id in TASK_IDS:
            task = build_task(task_id, size=60, seed=1)
            assert task.correct_rows, task_id

    def test_cleanup_minutes_on_join_tasks(self):
        assert build_task("T3", size=15, seed=1).cleanup_minutes > 0
        assert build_task("T1", size=15, seed=1).cleanup_minutes == 0
