"""Sensitivity sweep tests (extension experiments)."""

import pytest

from repro.experiments.sweeps import alpha_sweep, k_sweep, subset_fraction_sweep


class TestAlphaSweep:
    def test_monotone_cost_shape(self):
        task, points = alpha_sweep(task_id="T7", size=60, seed=1, alphas=(0.0, 0.5))
        assert len(points) == 2
        eager, reluctant = points
        # a decline-happy developer never makes the result *smaller*
        assert reluctant.superset_pct >= eager.superset_pct - 1
        assert eager.superset_pct == pytest.approx(100, abs=1)

    def test_rows_render(self):
        _, points = alpha_sweep(task_id="T1", size=40, seed=1, alphas=(0.0,))
        row = points[0].row()
        assert row[1].endswith("%")


class TestSubsetFractionSweep:
    def test_quality_independent_of_fraction_here(self):
        task, points = subset_fraction_sweep(
            task_id="T7", size=120, seed=1, fractions=(0.2, 1.0)
        )
        for point in points:
            assert point.superset_pct == pytest.approx(100, abs=1)

    def test_full_fraction_costs_more_machine_work(self):
        _, points = subset_fraction_sweep(
            task_id="T7", size=300, seed=1, fractions=(0.1, 1.0)
        )
        sampled, full = points
        # deterministic work measure: with verify/refine memoized, wall
        # clock at this size is dominated by load noise, but iterating
        # over the full input still *builds* far more tuples
        assert full.tuples_built > sampled.tuples_built
        assert full.machine_seconds > 0 and sampled.machine_seconds > 0


class TestKSweep:
    def test_larger_k_never_cheaper(self):
        _, points = k_sweep(task_id="T5", size=80, seed=1, ks=(2, 5))
        small, large = points
        assert large.iterations >= small.iterations

    def test_all_ks_converge_on_easy_task(self):
        _, points = k_sweep(task_id="T1", size=40, seed=1, ks=(2, 3, 4))
        assert all(p.converged for p in points)
