"""DBLife task tests (section 6.3, Table 6)."""

import pytest

from repro.experiments.dblife_tasks import build_dblife_tasks, run_dblife_task

SMALL_PAGES = {"conference": 12, "project": 8, "homepage": 5}


@pytest.fixture(scope="module")
def tasks():
    return build_dblife_tasks(pages=SMALL_PAGES, seed=0)


class TestConstruction:
    def test_three_tasks(self, tasks):
        assert [t.name for t in tasks] == ["Panel", "Project", "Chair"]

    def test_programs_safe(self, tasks):
        for task in tasks:
            task.program.check_safety()

    def test_chair_has_cleanup(self, tasks):
        chair = tasks[2]
        assert chair.cleanup is not None
        assert chair.cleanup_minutes > 0

    def test_scripted_answers_present(self, tasks):
        panel = tasks[0]
        assert ("extractConference", "y", "starts_with") in panel.truth.scripted_answers


class TestRuns:
    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_task_converges_exactly(self, tasks, index):
        row = run_dblife_task(tasks[index], seed=0)
        assert row["result_tuples"] == row["correct_tuples"], row
        assert row["converged"]
        assert row["minutes"] > row["cleanup_minutes"]

    def test_chair_cleanup_extracts_types(self, tasks):
        from repro.assistant.oracle import SimulatedDeveloper
        from repro.assistant.session import RefinementSession
        from repro.assistant.strategies import SimulationStrategy
        from repro.ctables.assignments import value_text
        from repro.processor.executor import IFlexEngine

        chair = tasks[2]
        developer = SimulatedDeveloper(chair.truth, seed=0)
        session = RefinementSession(
            chair.program, chair.corpus, developer,
            strategy=SimulationStrategy(alpha=0.1), seed=0,
        )
        trace = session.run()
        final_program = chair.cleanup(trace.program)
        result = IFlexEngine(final_program, chair.corpus).execute()
        assert result.query_table.attrs == ("x", "t", "y")
        types = {
            value_text(t.cells[1].assignments[0].value)
            for t in result.query_table
        }
        assert types <= {"PC", "General", "Demo", "Industrial"}
