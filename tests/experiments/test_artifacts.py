"""Artifact writer tests."""

import json

from repro.experiments.artifacts import (
    ArtifactWriter,
    write_json_artifact,
    write_table_artifact,
)


class TestWriteTable:
    def test_writes_text_and_json(self, tmp_path):
        paths = write_table_artifact(
            tmp_path, "table3", ("a", "b"), [(1, "x"), (2, "y")], meta={"scale": 0.25}
        )
        assert len(paths) == 2
        text = (tmp_path / "table3.txt").read_text(encoding="utf-8")
        assert "table3" in text and "x" in text
        payload = json.loads((tmp_path / "table3.json").read_text(encoding="utf-8"))
        assert payload["rows"] == [[1, "x"], [2, "y"]]
        assert payload["meta"]["scale"] == 0.25

    def test_non_jsonable_cells_stringified(self, tmp_path):
        class Odd:
            def __str__(self):
                return "odd!"

        write_table_artifact(tmp_path, "t", ("a",), [(Odd(),)])
        payload = json.loads((tmp_path / "t.json").read_text(encoding="utf-8"))
        assert payload["rows"] == [["odd!"]]


class TestArtifactWriter:
    def test_manifest(self, tmp_path):
        writer = ArtifactWriter(tmp_path)
        writer.table("t1", ("a",), [(1,)])
        writer.json("extra", {"k": "v"})
        manifest_path = writer.finish(extra={"seed": 0})
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert manifest["seed"] == 0
        assert len(manifest["written"]) == 3

    def test_json_artifact(self, tmp_path):
        path = write_json_artifact(tmp_path, "stat", {"exact": 24, "scenarios": 27})
        assert json.loads(path.read_text(encoding="utf-8"))["exact"] == 24
