"""Smoke tests of the table harness (tiny scales; full runs live in

benchmarks/)."""

import pytest

from repro.experiments.report import fmt_minutes, fmt_pct, render_table
from repro.experiments.tables import (
    convergence_stat,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)


class TestRendering:
    def test_render_table(self):
        text = render_table(("a", "bb"), [(1, 2), ("x", "yyyy")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]

    def test_fmt_minutes(self):
        assert fmt_minutes(None) == "—"
        assert fmt_minutes(3.21) == "3.21"
        assert fmt_minutes(42.4) == "42"

    def test_fmt_pct(self):
        assert fmt_pct(100.0) == "100%"
        assert fmt_pct(float("inf")) == "inf"


class TestStaticTables:
    def test_table1(self):
        headers, rows, _ = table1()
        assert len(rows) == 9  # 3 + 4 + 2 tables
        domains = {row[0] for row in rows}
        assert domains == {"Movies", "DBLP", "Books"}

    def test_table2(self):
        headers, rows, _ = table2()
        assert len(rows) == 9
        assert rows[0][0] == "T1"


class TestExperimentTables:
    def test_table3_tiny(self):
        headers, rows, extras = table3(seed=0, scale=0.04)
        assert len(rows) == 27
        assert len(extras["runs"]) == 27
        stat = convergence_stat(extras)
        assert stat["scenarios"] == 27
        assert 0 <= stat["exact"] <= 27

    def test_table4_tiny(self):
        headers, rows, extras = table4(seed=0, scale=0.04)
        assert len(rows) == 9

    def test_table5_tiny(self):
        headers, rows, extras = table5(seed=0, scale=0.04)
        assert len(rows) == 18
        schemes = {row[3] for row in rows}
        assert schemes == {"Seq", "Sim"}

    def test_table6_tiny(self):
        headers, rows, extras = table6(
            seed=0, pages={"conference": 8, "project": 6, "homepage": 4}
        )
        assert [row[0] for row in rows] == ["Panel", "Project", "Chair"]
        for result in extras["results"]:
            assert result["result_tuples"] >= 0
