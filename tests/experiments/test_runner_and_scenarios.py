"""Runner scoring and scenario-grid tests."""

import pytest

from repro.assistant.strategies import SequentialStrategy
from repro.ctables.assignments import Exact
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.experiments.runner import extracted_keys, run_iflex, superset_pct
from repro.experiments.scenarios import (
    SCENARIO_SIZES,
    TABLE4_SCENARIOS,
    TABLE5_SCENARIOS,
    scenario_sizes,
)
from repro.experiments.tasks import TASK_IDS, build_task


class TestScoring:
    def test_superset_pct(self):
        assert superset_pct(52, 52) == 100.0
        assert superset_pct(104, 52) == 200.0
        assert superset_pct(0, 0) == 100.0
        assert superset_pct(5, 0) == float("inf")

    def test_extracted_keys_exact(self):
        table = CompactTable(
            ["title"], [CompactTuple([Cell((Exact("A"),))]), CompactTuple([Cell((Exact("B"),))])]
        )
        assert extracted_keys(table, "title") == {"A", "B"}

    def test_extracted_keys_ambiguous(self):
        table = CompactTable(
            ["title"], [CompactTuple([Cell((Exact("A"), Exact("B")))])]
        )
        assert extracted_keys(table, "title") is None


class TestRunIFlex:
    def test_run_produces_scored_outcome(self):
        task = build_task("T7", size=30, seed=2)
        run = run_iflex(task, strategy=SequentialStrategy(), seed=2)
        assert run.task_id == "T7"
        assert run.correct_count == len(task.correct_rows)
        assert run.minutes > 0
        assert run.superset_pct >= 100.0 or run.final_count <= run.correct_count

    def test_cleanup_minutes_included(self):
        task = build_task("T3", size=15, seed=2)
        with_cleanup = run_iflex(task, strategy=SequentialStrategy(), seed=2)
        without = run_iflex(
            task, strategy=SequentialStrategy(), seed=2, include_cleanup=False
        )
        assert with_cleanup.minutes > without.minutes


class TestScenarios:
    def test_grid_covers_all_tasks(self):
        assert set(SCENARIO_SIZES) == set(TASK_IDS)
        assert set(TABLE4_SCENARIOS) == set(TASK_IDS)
        assert set(TABLE5_SCENARIOS) == set(TASK_IDS)

    def test_scenario_sizes_full_scale(self):
        sizes = scenario_sizes("T1", scale=1.0)
        assert sizes == [10, 100, 250]

    def test_scenario_sizes_scaled(self):
        sizes = scenario_sizes("T7", scale=0.1)
        assert sizes == [10, 50, 500]

    def test_natural_full_at_scale_one(self):
        sizes = scenario_sizes("T9", scale=1.0)
        assert sizes[2] is None  # natural asymmetric full size

    def test_minimum_size_floor(self):
        sizes = scenario_sizes("T1", scale=0.01)
        assert min(sizes) >= 10
