"""The paper's Figures 2.e and 3, reconstructed as data-model tests.

Figure 2.e gives the a-tables for the houses/schools example; Figure 3
condenses them into compact tables.  These tests build both by hand and
check they represent the same possible relations.
"""

import pytest

from repro.ctables.assignments import Contain, Exact, value_key
from repro.ctables.atable import ATable, ATuple
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.ctables.worlds import atable_worlds, compact_worlds
from repro.text.document import Document
from repro.text.span import Span


@pytest.fixture
def page():
    # a miniature x1: three numbers and a small h region
    return Document("x1", "2750 351,000 5146 Cozy High")


def number_spans(doc):
    from repro.text.tokenize import NUMBER

    return [
        Span(doc, t.start, t.end) for t in doc.tokens if t.kind == NUMBER
    ]


class TestFigure3Condensation:
    def test_houses_cell_equivalence(self, page):
        """{exact(2750), exact(351000), exact(5146)} as a choice cell

        equals the explicit a-table value set."""
        numbers = number_spans(page)
        compact = CompactTable(
            ["p"], [CompactTuple([Cell(tuple(Exact(s) for s in numbers))])]
        )
        atable = ATable(["p"], [ATuple([numbers])])
        assert compact_worlds(compact) == atable_worlds(atable)

    def test_contain_condenses_subspan_enumeration(self, page):
        """contain("Cozy High") == the enumerated sub-span value set."""
        h_region = Span(page, 18, 27)  # "Cozy High"
        compact = CompactTable(
            ["h"], [CompactTuple([Cell((Contain(h_region),))])]
        )
        values = h_region.token_aligned_subspans()
        atable = ATable(["h"], [ATuple([values])])
        assert compact_worlds(compact) == atable_worlds(atable)

    def test_schools_expand_condenses_tuples(self, page):
        """expand({contain(s1), contain(s2)})? == one maybe a-tuple per

        sub-span value of either bold region."""
        s1 = Span(page, 0, 4)    # "2750" (stand-in bold region)
        s2 = Span(page, 18, 27)  # "Cozy High"
        compact = CompactTable(
            ["s"],
            [CompactTuple([Cell.expansion([Contain(s1), Contain(s2)])], maybe=True)],
        )
        values = s1.token_aligned_subspans() + s2.token_aligned_subspans()
        atable = ATable(["s"], [ATuple([[v]], maybe=True) for v in values])
        assert compact_worlds(compact) == atable_worlds(atable)

    def test_condensation_is_strictly_smaller(self, page):
        h_region = Span(page, 18, 27)
        cell = Cell((Contain(h_region),))
        assert len(cell.assignments) == 1
        assert cell.value_count() == 3  # Cozy / High / Cozy High
