"""Compact-table diff tests."""

import pytest

from repro.ctables.assignments import Contain, Exact
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.ctables.diff import diff_tables
from repro.text.document import Document
from repro.text.span import Span, doc_span


def table_of(rows, attrs=("k", "v")):
    table = CompactTable(attrs)
    for row in rows:
        table.add(row)
    return table


def keyed(key, cell, maybe=False):
    return CompactTuple([Cell((Exact(key),)), cell], maybe=maybe)


class TestDiff:
    def test_no_change(self):
        a = table_of([keyed("x", Cell.exact(1))])
        b = table_of([keyed("x", Cell.exact(1))])
        diff = diff_tables(a, b)
        assert diff.is_empty
        assert diff.summary() == "no change"

    def test_added_and_removed(self):
        a = table_of([keyed("x", Cell.exact(1)), keyed("y", Cell.exact(2))])
        b = table_of([keyed("y", Cell.exact(2)), keyed("z", Cell.exact(3))])
        diff = diff_tables(a, b)
        assert len(diff.removed_keys) == 1 and "x" in diff.removed_keys[0]
        assert len(diff.added_keys) == 1 and "z" in diff.added_keys[0]

    def test_narrowing_detected(self):
        doc = Document("dd", "one two three four")
        wide = Cell((Contain(doc_span(doc)),))
        narrow = Cell((Contain(Span(doc, 0, 7)),))
        diff = diff_tables(
            table_of([keyed("x", wide)]), table_of([keyed("x", narrow)])
        )
        (key, attr, before_n, after_n), = diff.narrowed
        assert attr == "v" and after_n < before_n

    def test_widening_detected(self):
        a = table_of([keyed("x", Cell((Exact(1),)))])
        b = table_of([keyed("x", Cell((Exact(1), Exact(2))))])
        diff = diff_tables(a, b)
        assert diff.widened

    def test_maybe_flip(self):
        a = table_of([keyed("x", Cell.exact(1))])
        b = table_of([keyed("x", Cell.exact(1), maybe=True)])
        diff = diff_tables(a, b)
        assert diff.maybe_changed == [diff.maybe_changed[0]]
        assert diff.maybe_changed[0][1] is False
        assert diff.maybe_changed[0][2] is True

    def test_attr_mismatch_raises(self):
        a = CompactTable(("a",))
        b = CompactTable(("b", "c"))
        with pytest.raises(ValueError):
            diff_tables(a, b)

    def test_report_renders(self):
        a = table_of([keyed("x", Cell.exact(1))])
        b = table_of([])
        text = diff_tables(a, b).report()
        assert "-1 tuples" in text

    def test_keyless_tables_counted_unmatched(self):
        doc = Document("dq", "alpha beta")
        contain = Cell((Contain(doc_span(doc)),))
        a = table_of([CompactTuple([contain, contain])])
        b = table_of([CompactTuple([contain, contain])])
        diff = diff_tables(a, b)
        assert diff.unmatched == 2
        assert diff.is_empty


class TestDiffAcrossRefinement:
    def test_refinement_diff_story(self, figure2_program, figure1_corpus):
        from repro.processor.executor import IFlexEngine

        before = IFlexEngine(figure2_program, figure1_corpus).execute()
        refined = figure2_program.add_constraint(
            "extractHouses", "p", "bold_font", "yes"
        )
        after = IFlexEngine(refined, figure1_corpus).execute()
        diff = diff_tables(before.tables["houses"], after.tables["houses"])
        # prices narrowed from three numbers to the bold one, per page
        assert len(diff.narrowed) >= 2
        assert not diff.added_keys and not diff.removed_keys
