"""CompactTable codec: round trips and strict corruption rejection.

The persistent result cache serves whatever this codec decodes, so the
contract is absolute: a decoded table is repr-identical to the encoded
one, and anything else — malformed buffers, stale versions, spans that
no longer fit their documents — raises :class:`CodecError` (which the
store layer maps to "recompute").
"""

import numpy as np
import pytest

from repro.ctables import (
    RESULT_CODEC_VERSION,
    Cell,
    CodecError,
    CompactTable,
    CompactTuple,
    Contain,
    Exact,
    decode_table,
    encode_table,
)
from repro.text import parse_html
from repro.text.span import Span


@pytest.fixture
def docs():
    return {
        d.doc_id: d
        for d in (
            parse_html("d1", "<p><b>Widget Alpha</b> $120.00 in 1999</p>"),
            parse_html("d2", "<title>Plain</title><p>no markup 42</p>"),
        )
    }


def _table(docs):
    d1, d2 = docs["d1"], docs["d2"]
    table = CompactTable(("x", "title", "votes"))
    table.add(
        CompactTuple(
            [
                Cell([Exact(Span(d1, 0, len(d1.text)))]),
                Cell(
                    [Contain(Span(d1, 0, 12)), Contain(Span(d1, 2, 8))],
                    is_expansion=True,
                ),
                Cell([Exact(24_000)]),
            ]
        )
    )
    table.add(
        CompactTuple(
            [
                Cell([Exact(Span(d2, 0, len(d2.text)))]),
                Cell([Exact(Span(d2, 7, 12))]),
                Cell([Exact("n/a"), Exact(3.5), Exact(-1)]),
            ],
            maybe=True,
        )
    )
    return table


def _image(table):
    return (table.attrs, [repr(t) for t in table.tuples])


class TestRoundTrip:
    def test_byte_identical_round_trip(self, docs):
        table = _table(docs)
        data, meta = encode_table(table)
        decoded = decode_table(data, meta, docs)
        assert _image(decoded) == _image(table)

    def test_empty_table_round_trips(self, docs):
        table = CompactTable(("a",))
        data, meta = encode_table(table)
        assert decode_table(data, meta, docs).tuples == []
        assert meta["doc_ids"] == [] and meta["scalars"] == []

    def test_meta_is_json_safe(self, docs):
        import json

        _, meta = encode_table(_table(docs))
        assert json.loads(json.dumps(meta)) == meta
        assert meta["codec_version"] == RESULT_CODEC_VERSION

    def test_scalar_types_survive(self, docs):
        table = CompactTable(("v",))
        for value in ("text", 0, -7, 3.25, True, False, None):
            table.add(CompactTuple([Cell([Exact(value)])]))
        data, meta = encode_table(table)
        decoded = decode_table(data, meta, docs)
        values = [t.cells[0].assignments[0].value for t in decoded.tuples]
        assert values == ["text", 0, -7, 3.25, True, False, None]
        assert [type(v) for v in values] == [
            str, int, int, float, bool, bool, type(None)
        ]

    def test_unencodable_scalar_raises(self, docs):
        table = CompactTable(("v",))
        table.add(CompactTuple([Cell([Exact(object())])]))
        with pytest.raises(CodecError):
            encode_table(table)


class TestCorruptionRejection:
    def _encoded(self, docs):
        return encode_table(_table(docs))

    def test_version_mismatch(self, docs):
        data, meta = self._encoded(docs)
        meta = dict(meta, codec_version=RESULT_CODEC_VERSION + 1)
        with pytest.raises(CodecError):
            decode_table(data, meta, docs)

    def test_unknown_document(self, docs):
        data, meta = self._encoded(docs)
        with pytest.raises(CodecError):
            decode_table(data, meta, {"other": docs["d1"]})

    def test_truncated_buffer(self, docs):
        data, meta = self._encoded(docs)
        with pytest.raises(CodecError):
            decode_table(data[:-3], meta, docs)

    def test_trailing_words(self, docs):
        data, meta = self._encoded(docs)
        padded = np.concatenate([data, np.zeros(4, dtype=np.int64)])
        with pytest.raises(CodecError):
            decode_table(padded, meta, docs)

    def test_span_outside_document(self, docs):
        data, meta = self._encoded(docs)
        data = data.copy()
        # first exact-span assignment: [kind, doc, start, end] right
        # after [n_tuples][maybe, n_cells][is_expansion, n_assignments]
        assert data[5] == 0  # kind: exact span
        data[8] = 10_000  # end beyond the document text
        with pytest.raises(CodecError):
            decode_table(data, meta, docs)

    def test_negative_count_rejected(self, docs):
        data, meta = self._encoded(docs)
        data = data.copy()
        data[0] = -1
        with pytest.raises(CodecError):
            decode_table(data, meta, docs)

    def test_bad_assignment_kind(self, docs):
        data, meta = self._encoded(docs)
        data = data.copy()
        data[5] = 99
        with pytest.raises(CodecError):
            decode_table(data, meta, docs)

    def test_scalar_index_out_of_range(self, docs):
        data, meta = self._encoded(docs)
        meta = dict(meta, scalars=[])
        with pytest.raises(CodecError):
            decode_table(data, meta, docs)

    def test_malformed_scalar_repr(self, docs):
        data, meta = self._encoded(docs)
        meta = dict(meta, scalars=["not ( a literal"] * len(meta["scalars"]))
        with pytest.raises(CodecError):
            decode_table(data, meta, docs)

    def test_wrong_dtype_rejected(self, docs):
        data, meta = self._encoded(docs)
        with pytest.raises(CodecError):
            decode_table(data.astype(np.float64), meta, docs)
