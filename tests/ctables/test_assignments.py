"""Assignment (exact/contain) tests."""

import pytest
from hypothesis import given, strategies as st

from repro.ctables.assignments import (
    Contain,
    Exact,
    value_key,
    value_number,
    value_text,
    values_equal,
)
from repro.text.document import Document
from repro.text.span import Span, doc_span


def span_of(text, start=None, end=None):
    doc = Document("d-%s" % hash(text), text)
    if start is None:
        return doc_span(doc)
    return Span(doc, start, end)


class TestValueKeys:
    def test_span_key(self):
        s = span_of("hello world", 0, 5)
        assert value_key(s) == ("span", s.doc.doc_id, 0, 5)

    def test_numeric_coercion(self):
        assert value_key(92) == value_key(92.0)

    def test_string_key(self):
        assert value_key("abc") == ("str", "abc")

    def test_bool_is_not_number(self):
        assert value_key(True) != value_key(1)

    def test_values_equal(self):
        assert values_equal(5, 5.0)
        assert not values_equal("5", 6)

    def test_value_text_of_span(self):
        assert value_text(span_of("abc", 0, 2)) == "ab"

    def test_value_number_of_span(self):
        assert value_number(span_of("351,000")) == 351000
        assert value_number(span_of("hello")) is None

    def test_value_number_of_scalar(self):
        assert value_number(42) == 42
        assert value_number("92") == 92
        assert value_number(True) is None


class TestExact:
    def test_encodes_single_value(self):
        a = Exact(92)
        values, complete = a.enumerate_values()
        assert values == [92] and complete
        assert a.value_count() == 1

    def test_paper_example_cast(self):
        # exact("92") encodes the value 92 (string-to-numeric cast)
        span = span_of("92")
        assert Exact(span).encodes(span)

    def test_equality(self):
        assert Exact(5) == Exact(5.0)
        assert Exact(5) != Exact(6)
        assert hash(Exact(5)) == hash(Exact(5.0))

    def test_anchor_span(self):
        s = span_of("abc")
        assert Exact(s).anchor_span is s
        assert Exact(42).anchor_span is None


class TestContain:
    def test_requires_span(self):
        with pytest.raises(TypeError):
            Contain("not a span")

    def test_encodes_subspans(self):
        s = span_of("Cherry Hills")
        c = Contain(s)
        cherry = s.sub(0, 6)
        assert c.encodes(cherry)
        assert c.encodes(s)

    def test_does_not_encode_other_docs(self):
        c = Contain(span_of("abc def"))
        assert not c.encodes(span_of("abc"))

    def test_enumerate_matches_count(self):
        s = span_of("one two three")
        c = Contain(s)
        values, complete = c.enumerate_values()
        assert complete
        assert len(values) == c.value_count() == 6

    def test_enumerate_with_limit(self):
        c = Contain(span_of("a b c d e f"))
        values, complete = c.enumerate_values(3)
        assert len(values) == 3 and not complete

    @given(st.text(alphabet="pq 7", min_size=1, max_size=20))
    def test_every_enumerated_value_encoded(self, text):
        c = Contain(span_of(text))
        values, _ = c.enumerate_values()
        for v in values:
            assert c.encodes(v)
