"""Compact ↔ a-table conversion tests (section 3's expansion recipe)."""

import pytest

from repro.ctables.assignments import Contain, Exact, value_key
from repro.ctables.atable import ATable, ATuple
from repro.ctables.convert import (
    atable_to_compact,
    compact_to_atable,
    expand_expansion_cells,
)
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.errors import EnumerationLimitError
from repro.text.document import Document
from repro.text.span import Span, doc_span


@pytest.fixture
def doc():
    return Document("d", "alpha beta gamma")


class TestExpandExpansionCells:
    def test_no_expansion_is_identity(self):
        t = CompactTuple([Cell.exact(1)])
        assert expand_expansion_cells(t) == [t]

    def test_expansion_of_exacts(self):
        t = CompactTuple([Cell.expansion([Exact(1), Exact(2)]), Cell.exact(0)])
        flats = expand_expansion_cells(t)
        assert len(flats) == 2
        values = {f.cells[0].assignments[0].value for f in flats}
        assert values == {1, 2}

    def test_expansion_of_contain_enumerates_values(self, doc):
        t = CompactTuple([Cell.expansion([Contain(Span(doc, 0, 10))])])  # "alpha beta"
        flats = expand_expansion_cells(t)
        assert len(flats) == 3  # alpha, beta, alpha beta

    def test_cross_product_of_two_expansions(self):
        t = CompactTuple(
            [Cell.expansion([Exact(1), Exact(2)]), Cell.expansion([Exact(3), Exact(4)])]
        )
        assert len(expand_expansion_cells(t)) == 4

    def test_maybe_inherited(self):
        t = CompactTuple([Cell.expansion([Exact(1), Exact(2)])], maybe=True)
        assert all(f.maybe for f in expand_expansion_cells(t))

    def test_limit_enforced(self, doc):
        t = CompactTuple([Cell.expansion([Contain(doc_span(doc))])])
        with pytest.raises(EnumerationLimitError):
            expand_expansion_cells(t, value_limit=2)


class TestCompactToATable:
    def test_choice_cell_becomes_value_set(self, doc):
        table = CompactTable(["a"], [CompactTuple([Cell((Exact(1), Exact(2)))])])
        atable = compact_to_atable(table)
        assert len(atable) == 1
        assert {value_key(v) for v in atable.tuples[0].cells[0]} == {
            value_key(1),
            value_key(2),
        }

    def test_tuple_with_empty_cell_vanishes(self):
        table = CompactTable(["a"], [CompactTuple([Cell(())])])
        assert len(compact_to_atable(table)) == 0

    def test_maybe_preserved(self):
        table = CompactTable(["a"], [CompactTuple([Cell.exact(1)], maybe=True)])
        assert compact_to_atable(table).tuples[0].maybe


class TestATableToCompact:
    def test_round_trip_values(self):
        atable = ATable(["a", "b"], [ATuple([[1, 2], [3]], maybe=True)])
        ctable = atable_to_compact(atable)
        t = ctable.tuples[0]
        assert t.maybe
        values, _ = t.cells[0].enumerate_values()
        assert {value_key(v) for v in values} == {value_key(1), value_key(2)}

    def test_atuple_rejects_empty_cell(self):
        with pytest.raises(ValueError):
            ATuple([[]])
