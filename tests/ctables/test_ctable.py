"""Compact table structure tests (paper section 3, Definition 3)."""

import pytest

from repro.ctables.assignments import Contain, Exact
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.text.document import Document
from repro.text.span import Span, doc_span


@pytest.fixture
def doc():
    return Document("d", "Basktall Cherry Hills 92 acres")


class TestCell:
    def test_exact_constructor(self):
        cell = Cell.exact(5)
        assert cell.assignments == (Exact(5),)
        assert not cell.is_expansion

    def test_expansion_constructor(self, doc):
        cell = Cell.expansion([Contain(doc_span(doc))])
        assert cell.is_expansion

    def test_rejects_non_assignments(self):
        with pytest.raises(TypeError):
            Cell(["raw value"])

    def test_enumerate_values_dedupes(self, doc):
        span = Span(doc, 22, 24)  # "92"
        cell = Cell((Exact(span), Contain(span)))
        values, complete = cell.enumerate_values()
        assert complete
        assert len(values) == 1

    def test_enumerate_values_limit_zero(self, doc):
        # a zero budget yields nothing and reports the enumeration
        # incomplete — the PPredicateOp cap check relies on this
        cell = Cell((Exact(1), Exact(2)))
        assert cell.enumerate_values(limit=0) == ([], False)

    def test_enumerate_values_limit_zero_empty_cell_is_complete(self):
        # with no assignments there is nothing left to enumerate, so
        # even a zero budget covers everything
        assert Cell(()).enumerate_values(limit=0) == ([], True)

    def test_enumerate_values_limit_spans_assignments(self, doc):
        cell = Cell((Exact(1), Exact(2), Exact(3)))
        values, complete = cell.enumerate_values(limit=2)
        assert values == [1, 2]
        assert not complete
        values, complete = cell.enumerate_values(limit=3)
        assert values == [1, 2, 3]
        assert complete

    def test_enumerate_values_limit_counts_distinct(self, doc):
        # duplicates don't consume budget: the limit bounds *distinct*
        # values, matching the dedup in the unlimited path
        span = Span(doc, 22, 24)  # "92"
        cell = Cell((Exact(span), Contain(span), Exact(99)))
        values, complete = cell.enumerate_values(limit=2)
        assert complete
        assert len(values) == 2

    def test_multiplicity(self, doc):
        choice = Cell((Exact(1), Exact(2)))
        assert choice.multiplicity() == 1
        expansion = Cell((Exact(1), Exact(2)), is_expansion=True)
        assert expansion.multiplicity() == 2

    def test_empty_cell(self):
        assert Cell(()).is_empty()

    def test_equality_ignores_order(self):
        a = Cell((Exact(1), Exact(2)))
        b = Cell((Exact(2), Exact(1)))
        assert a == b

    def test_expansion_flag_in_equality(self):
        assert Cell((Exact(1),)) != Cell((Exact(1),), is_expansion=True)


class TestCompactTuple:
    def test_maybe_flag(self):
        t = CompactTuple([Cell.exact(1)])
        assert not t.maybe
        assert t.as_maybe().maybe
        assert t.as_maybe().as_maybe().maybe

    def test_with_cell(self):
        t = CompactTuple([Cell.exact(1), Cell.exact(2)])
        t2 = t.with_cell(1, Cell.exact(9))
        assert t.cells[1] == Cell.exact(2)  # original untouched
        assert t2.cells[1] == Cell.exact(9)

    def test_multiplicity_product(self, doc):
        t = CompactTuple(
            [
                Cell.expansion([Exact(1), Exact(2)]),
                Cell.expansion([Exact(3), Exact(4), Exact(5)]),
                Cell.exact(0),
            ]
        )
        assert t.multiplicity() == 6

    def test_assignment_count(self):
        t = CompactTuple([Cell((Exact(1), Exact(2))), Cell.exact(3)])
        assert t.assignment_count() == 3

    def test_cells_must_be_cells(self):
        with pytest.raises(TypeError):
            CompactTuple([Exact(1)])


class TestCompactTable:
    def test_arity_checked(self):
        table = CompactTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add(CompactTuple([Cell.exact(1)]))

    def test_attr_index(self):
        table = CompactTable(["a", "b"])
        assert table.attr_index("b") == 1
        with pytest.raises(KeyError):
            table.attr_index("c")

    def test_counts(self, doc):
        table = CompactTable(["s"])
        table.add(CompactTuple([Cell.expansion([Exact(1), Exact(2)])]))
        table.add(CompactTuple([Cell.exact(3)], maybe=True))
        assert table.tuple_count() == 3
        assert table.assignment_count() == 3
        assert table.maybe_count() == 1

    def test_encoded_value_count_sensitive_to_narrowing(self, doc):
        wide = CompactTable(["s"], [CompactTuple([Cell.contain(doc_span(doc))])])
        narrow = CompactTable(["s"], [CompactTuple([Cell.contain(Span(doc, 0, 8))])])
        assert wide.encoded_value_count() > narrow.encoded_value_count()
        assert wide.assignment_count() == narrow.assignment_count() == 1

    def test_pretty_renders(self):
        table = CompactTable(["a"], [CompactTuple([Cell.exact(1)], maybe=True)])
        text = table.pretty()
        assert "a" in text and "?" in text
