"""Export tests (JSON / CSV / dict round-trips)."""

import csv
import io
import json

import pytest

from repro.ctables.assignments import Contain, Exact
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.ctables.export import (
    assignment_to_dict,
    result_to_dict,
    table_to_csv,
    table_to_dicts,
    table_to_json,
)
from repro.text.document import Document
from repro.text.span import Span, doc_span


@pytest.fixture
def doc():
    return Document("ex", "Price: $351,000 today")


@pytest.fixture
def table(doc):
    t = CompactTable(["x", "p"])
    t.add(
        CompactTuple(
            [
                Cell.exact(doc_span(doc)),
                Cell((Exact(Span(doc, 7, 15)), Contain(Span(doc, 0, 15)))),
            ],
            maybe=True,
        )
    )
    t.add(CompactTuple([Cell.exact(42), Cell.expansion([Exact("a"), Exact("b")])]))
    return t


class TestAssignmentExport:
    def test_exact_span(self, doc):
        d = assignment_to_dict(Exact(Span(doc, 7, 15)))
        assert d["kind"] == "exact"
        assert d["span"]["text"] == "$351,000"
        assert d["span"]["doc"] == "ex"

    def test_exact_scalar(self):
        assert assignment_to_dict(Exact(5)) == {"kind": "exact", "value": 5}

    def test_contain(self, doc):
        d = assignment_to_dict(Contain(doc_span(doc)))
        assert d["kind"] == "contain"
        assert d["span"]["start"] == 0

    def test_rejects_non_assignment(self):
        with pytest.raises(TypeError):
            assignment_to_dict("nope")


class TestTableExport:
    def test_dicts_structure(self, table):
        exported = table_to_dicts(table)
        assert exported["attrs"] == ["x", "p"]
        assert exported["tuples"][0]["maybe"] is True
        assert exported["tuples"][1]["cells"]["p"]["expansion"] is True

    def test_json_round_trip(self, table):
        parsed = json.loads(table_to_json(table))
        assert parsed["attrs"] == ["x", "p"]
        assert len(parsed["tuples"]) == 2

    def test_csv_best_guess(self, table):
        rows = list(csv.reader(io.StringIO(table_to_csv(table))))
        assert rows[0] == ["x", "p", "maybe"]
        assert rows[1][1] == "$351,000"  # exact preferred over contain
        assert rows[1][2] == "?"
        assert rows[2][2] == ""

    def test_csv_without_maybe(self, table):
        rows = list(csv.reader(io.StringIO(table_to_csv(table, include_maybe_column=False))))
        assert rows[0] == ["x", "p"]


class TestResultExport:
    def test_execution_result(self, figure2_program, figure1_corpus):
        from repro.processor.executor import IFlexEngine

        result = IFlexEngine(figure2_program, figure1_corpus).execute()
        exported = result_to_dict(result)
        assert exported["summary"]["tuples"] == 1
        assert "houses" in exported["tables"]
        json.dumps(exported)  # fully serialisable
