"""Property tests for ``CompactTable.union`` (the gather merge).

The physical execution layer reassembles per-partition results with
``CompactTable.union``; its correctness contract is multiset-union
semantics over represented relations:

* commutative and associative *as multisets of compact tuples* (the
  concatenation order differs, the multiset never does);
* possible-worlds round-trip: every world of the union is the union of
  one world per operand — in particular a superset of some world of
  each operand, and every operand world extends to a union world.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.ctables.assignments import Contain, Exact
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.ctables.worlds import compact_worlds
from repro.errors import EnumerationLimitError
from repro.text.document import Document
from repro.text.span import Span

ATTRS = ("a", "b")

_DOC = Document("prop-doc", "alpha beta 42")


def spans():
    return st.sampled_from(
        [Span(_DOC, 0, 5), Span(_DOC, 6, 10), Span(_DOC, 11, 13)]
    )


def assignments():
    return st.one_of(
        st.integers(min_value=0, max_value=9).map(Exact),
        st.sampled_from(["x", "y", "z"]).map(Exact),
        spans().map(Contain),
    )


def cells():
    return st.builds(
        Cell,
        st.lists(assignments(), min_size=1, max_size=3),
        is_expansion=st.booleans(),
    )


def compact_tuples():
    return st.builds(
        CompactTuple,
        st.tuples(*(cells() for _ in ATTRS)),
        maybe=st.booleans(),
    )


def tables(max_tuples=4):
    return st.lists(compact_tuples(), max_size=max_tuples).map(
        lambda ts: CompactTable(ATTRS, ts)
    )


def multiset(table):
    """The table's tuples as an order-insensitive multiset image."""
    return sorted(repr(t) for t in table.tuples)


def ordered(table):
    return [repr(t) for t in table.tuples]


@settings(max_examples=60, deadline=None)
@given(tables(), tables())
def test_union_is_commutative_as_multiset(left, right):
    ab = CompactTable.union([left, right])
    ba = CompactTable.union([right, left], attrs=ATTRS)
    assert multiset(ab) == multiset(ba)


@settings(max_examples=60, deadline=None)
@given(tables(), tables(), tables())
def test_union_is_associative(first, second, third):
    left = CompactTable.union([CompactTable.union([first, second]), third])
    right = CompactTable.union([first, CompactTable.union([second, third])])
    # concatenation makes association order-exact, not just multiset-equal
    assert ordered(left) == ordered(right)
    flat = CompactTable.union([first, second, third])
    assert ordered(flat) == ordered(left)


@settings(max_examples=40, deadline=None)
@given(tables(max_tuples=2), tables(max_tuples=2))
def test_union_worlds_round_trip(left, right):
    # the worlds oracle counts options *before* deduplication, so a few
    # maybe-flagged expansion cells can overflow its cap even on tiny
    # tables; such examples say nothing about union semantics — skip
    try:
        union_worlds = compact_worlds(CompactTable.union([left, right]))
        left_worlds = compact_worlds(left)
        right_worlds = compact_worlds(right)
    except EnumerationLimitError:
        assume(False)
    # exact round-trip: the union's worlds are precisely the pairwise
    # unions of one world from each operand
    expected = {wl | wr for wl in left_worlds for wr in right_worlds}
    assert union_worlds == expected
    # and therefore a superset of some world of each operand...
    for world in union_worlds:
        assert any(wl <= world for wl in left_worlds)
        assert any(wr <= world for wr in right_worlds)
    # ...with every operand world extending to a union world
    for wl in left_worlds:
        assert any(wl <= world for world in union_worlds)
    for wr in right_worlds:
        assert any(wr <= world for world in union_worlds)


def test_union_preserves_maybe_and_multiplicity():
    dup = CompactTuple([Cell.exact(1), Cell.exact(2)])
    flagged = CompactTuple([Cell.exact(1), Cell.exact(2)], maybe=True)
    left = CompactTable(ATTRS, [dup, dup])
    right = CompactTable(ATTRS, [flagged])
    out = CompactTable.union([left, right])
    assert len(out) == 3  # duplicates are kept: multiset, not set
    assert out.maybe_count() == 1


def test_union_requires_matching_arity():
    import pytest

    with pytest.raises(ValueError):
        CompactTable.union(
            [CompactTable(("a",)), CompactTable(("a", "b"))]
        )
    with pytest.raises(ValueError):
        CompactTable.union([])


def test_union_of_none_needs_attrs_only():
    out = CompactTable.union([], attrs=ATTRS)
    assert out.attrs == ATTRS and len(out) == 0
