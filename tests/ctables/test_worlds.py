"""Possible-worlds enumeration tests (the reference semantics)."""

import pytest

from repro.ctables.assignments import Contain, Exact, value_key
from repro.ctables.atable import ATable, ATuple
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.ctables.worlds import atable_worlds, compact_worlds, world_of_exact_tuples
from repro.errors import EnumerationLimitError
from repro.text.document import Document
from repro.text.span import Span


class TestATableWorlds:
    def test_certain_single_value(self):
        atable = ATable(["a"], [ATuple([[1]])])
        assert atable_worlds(atable) == {world_of_exact_tuples([(1,)])}

    def test_choice_of_two_values(self):
        atable = ATable(["a"], [ATuple([[1, 2]])])
        worlds = atable_worlds(atable)
        assert worlds == {
            world_of_exact_tuples([(1,)]),
            world_of_exact_tuples([(2,)]),
        }

    def test_maybe_tuple_adds_empty_world(self):
        atable = ATable(["a"], [ATuple([[1]], maybe=True)])
        worlds = atable_worlds(atable)
        assert frozenset() in worlds
        assert world_of_exact_tuples([(1,)]) in worlds
        assert len(worlds) == 2

    def test_two_tuples_cross_product(self):
        atable = ATable(["a"], [ATuple([[1, 2]]), ATuple([[3]], maybe=True)])
        worlds = atable_worlds(atable)
        assert len(worlds) == 4

    def test_world_cap(self):
        atable = ATable(["a"], [ATuple([list(range(10))]) for _ in range(10)])
        with pytest.raises(EnumerationLimitError):
            atable_worlds(atable, max_worlds=100)

    def test_multi_attribute_choices(self):
        atable = ATable(["a", "b"], [ATuple([[1, 2], [3, 4]])])
        worlds = atable_worlds(atable)
        assert len(worlds) == 4


class TestCompactWorlds:
    def test_expansion_is_certain_multiplicity(self):
        # expand({1, 2}) = both tuples exist in every world
        table = CompactTable(
            ["a"], [CompactTuple([Cell.expansion([Exact(1), Exact(2)])])]
        )
        worlds = compact_worlds(table)
        assert worlds == {world_of_exact_tuples([(1,), (2,)])}

    def test_choice_is_uncertainty(self):
        table = CompactTable(["a"], [CompactTuple([Cell((Exact(1), Exact(2)))])])
        assert len(compact_worlds(table)) == 2

    def test_paper_schools_shape(self):
        # expand of contains, maybe: every subset of every bold span's
        # sub-spans is possible
        doc = Document("y", "Basktall HS")
        table = CompactTable(
            ["s"],
            [
                CompactTuple(
                    [Cell.expansion([Contain(Span(doc, 0, 11))])], maybe=True
                )
            ],
        )
        worlds = compact_worlds(table)
        # 3 sub-span values (Basktall / HS / Basktall HS) -> 2^3 subsets
        assert len(worlds) == 8
        assert frozenset() in worlds
