"""Error-policy behaviour: fail-fast enrichment, retry with recovery,
retry exhaustion, and the failures that no policy may contain.
"""

import pytest

from repro.errors import ExecutionFailure
from repro.features.registry import default_registry
from repro.processor.context import ExecConfig
from repro.processor.executor import IFlexEngine, _PolicyDriver
from tests.faults.harness import build_corpus, build_program, faulting_registry
from tests.processor.test_parallel import result_image

BACKENDS = ("serial", "thread", "process")


def make_engine(registry, corpus=None, **config_kwargs):
    return IFlexEngine(
        build_program(),
        corpus if corpus is not None else build_corpus(6),
        registry,
        ExecConfig(**config_kwargs),
        validate=False,
    )


class TestFailFast:
    def test_raises_enriched_failure_not_bare_exception(self):
        engine = make_engine(faulting_registry(("d3",)))
        with pytest.raises(ExecutionFailure) as excinfo:
            engine.execute()
        failure = excinfo.value
        assert failure.doc_id == "d3"
        assert failure.feature == "numeric"
        assert failure.operator in ("Verify", "Refine")
        assert failure.exc_type == "RuntimeError"
        assert "injected fault" in str(failure)
        assert "d3" in str(failure)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partitioned_failure_carries_partition(self, backend):
        engine = make_engine(
            faulting_registry(("d5",)), workers=3, backend=backend
        )
        with pytest.raises(ExecutionFailure) as excinfo:
            engine.execute()
        assert excinfo.value.doc_id == "d5"
        assert excinfo.value.partition is not None

    def test_fail_fast_is_the_default(self):
        engine = make_engine(faulting_registry(("d0",)))
        assert engine.config.on_error == "fail-fast"
        with pytest.raises(ExecutionFailure):
            engine.execute()


class TestRetry:
    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_transient_fault_recovers(self, tmp_path, backend):
        # fails twice, succeeds on the third attempt: with two retries
        # budgeted the run recovers with the *full* corpus intact
        registry = faulting_registry(
            ("d2",), fail_times=2, trip_dir=tmp_path
        )
        engine = make_engine(
            registry,
            workers=3,
            backend=backend,
            on_error="retry",
            max_retries=2,
            retry_backoff=0.0,
        )
        result = engine.execute()
        assert result.report.records == []
        assert result.report.retries == 2
        assert result.stats.retries == 2
        reference = IFlexEngine(
            build_program(), build_corpus(6), default_registry(), validate=False
        ).execute()
        assert result_image(result) == result_image(reference)

    def test_exhausted_retries_fall_back_to_skip(self):
        engine = make_engine(
            faulting_registry(("d2",)),
            on_error="retry",
            max_retries=1,
            retry_backoff=0.0,
        )
        result = engine.execute()
        (record,) = result.report.records
        assert record.doc_id == "d2"
        assert record.retry_count == 1
        assert result.report.retries == 1
        reference = IFlexEngine(
            build_program(),
            build_corpus(6).without(("d2",)),
            default_registry(),
            validate=False,
        ).execute()
        assert result_image(result) == result_image(reference)


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        engine = make_engine(default_registry(), on_error="ignore")
        with pytest.raises(ValueError, match="unknown error policy"):
            engine.execute()

    def test_non_attributable_failure_always_raises(self):
        engine = make_engine(default_registry(), on_error="skip")
        driver = _PolicyDriver(engine)
        with pytest.raises(ExecutionFailure, match="unattributed"):
            driver._handle(ExecutionFailure("unattributed breakage"))

    def test_engine_quarantine_rebuilds_active_corpus(self):
        engine = make_engine(default_registry(), workers=3, on_error="skip")
        assert engine.active_corpus is engine.corpus
        engine._exclude_document("d1")
        assert engine.excluded_docs == {"d1"}
        ids = [
            d.doc_id
            for part in engine.physical.partitions
            for d in part.table("pages")
        ]
        assert "d1" not in ids and len(ids) == 5
