"""Scheduler bug-cluster regressions: fork-payload reentrancy,
contextful worker exception propagation, and module-state hygiene when
pickling itself fails mid-map.
"""

import threading

import pytest

from repro.errors import ExecutionFailure
from repro.processor.schedulers import (
    _FORK_PAYLOADS,
    ProcessBackend,
    SerialBackend,
    TaskError,
    ThreadBackend,
    make_scheduler,
)
from repro.text.html_parser import parse_html

BACKENDS = (SerialBackend(), ThreadBackend(3), ProcessBackend(3))


def boom(item):
    if item == 2:
        raise ValueError("task payload %r is bad" % (item,))
    return item * 10


class TestExceptionPropagation:
    @pytest.mark.timeout(60)
    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
    def test_task_error_carries_index_and_context(self, backend):
        with pytest.raises(TaskError) as excinfo:
            backend.map(boom, [0, 1, 2, 3])
        error = excinfo.value
        assert error.task_index == 2
        assert isinstance(error.failure, ExecutionFailure)
        assert error.failure.exc_type == "ValueError"
        assert "task payload 2 is bad" in str(error.failure)
        # the traceback summary survives even across a process boundary
        assert "boom" in error.failure.traceback_summary

    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
    def test_in_process_backends_chain_the_original(self, backend):
        if backend.name == "process":
            pytest.skip("the original exception cannot cross the fork result pipe")
        with pytest.raises(TaskError) as excinfo:
            backend.map(boom, [2])
        assert isinstance(excinfo.value.__cause__, ValueError)

    @pytest.mark.timeout(60)
    def test_enriched_failures_cross_the_pipe_intact(self):
        def fail(item):
            raise ExecutionFailure(
                "doc boom", doc_id="d9", operator="Verify", feature="numeric"
            )

        with pytest.raises(TaskError) as excinfo:
            ProcessBackend(2).map(fail, [0, 1])
        failure = excinfo.value.failure
        assert (failure.doc_id, failure.operator, failure.feature) == (
            "d9",
            "Verify",
            "numeric",
        )


class TestForkPayloadHygiene:
    @pytest.mark.timeout(60)
    def test_registry_empty_after_success_and_failure(self):
        backend = ProcessBackend(2)
        assert backend.map(lambda i: i + 1, [1, 2]) == [2, 3]
        assert _FORK_PAYLOADS == {}
        with pytest.raises(TaskError):
            backend.map(boom, [2, 3])
        assert _FORK_PAYLOADS == {}

    @pytest.mark.timeout(60)
    def test_unpicklable_result_is_a_contextful_error(self):
        # the child's pickler raises mid-dump; the regression was stale
        # module globals and a bare pipe error — now it must surface as
        # a TaskError naming the task, and leave the registry clean
        with pytest.raises(TaskError) as excinfo:
            ProcessBackend(2).map(lambda i: (lambda: i), [0, 1])
        assert excinfo.value.task_index == 0
        assert excinfo.value.failure.operator == "result-pickling"
        assert _FORK_PAYLOADS == {}

    @pytest.mark.timeout(60)
    def test_shared_objects_return_by_reference(self):
        doc = parse_html("shared0", "<p>shared document</p>")
        out = ProcessBackend(2).map(lambda i: (i, doc), [0, 1], shared=[doc])
        # same object, not an equal copy: results were shipped as
        # (token, index) references resolved against the parent's table
        assert out[0][1] is doc and out[1][1] is doc


class TestReentrancy:
    @pytest.mark.timeout(120)
    def test_concurrent_maps_from_two_threads(self):
        # the original bug: module-level payload slots clobbered by a
        # second in-flight map (a session simulating candidates while a
        # partitioned run executes); with the token registry each call
        # resolves its own payload
        backend = ProcessBackend(2)
        results = {}

        def runner(key, base):
            results[key] = backend.map(
                lambda i: i + base, list(range(10))
            )

        threads = [
            threading.Thread(target=runner, args=("a", 100)),
            threading.Thread(target=runner, args=("b", 200)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results["a"] == [100 + i for i in range(10)]
        assert results["b"] == [200 + i for i in range(10)]
        assert _FORK_PAYLOADS == {}

    @pytest.mark.timeout(120)
    def test_nested_map_inside_thread_map(self):
        thread = ThreadBackend(2)
        process = ProcessBackend(2)
        out = thread.map(
            lambda base: process.map(lambda i: i * base, [1, 2, 3]), [10, 100]
        )
        assert out == [[10, 20, 30], [100, 200, 300]]
        assert _FORK_PAYLOADS == {}


class TestMakeScheduler:
    def test_instances_pass_through(self):
        backend = SerialBackend()
        assert make_scheduler(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_scheduler("quantum")
