"""Deterministic fault-injection harness (see docs/robustness.md).

``FaultingFeature`` wraps a real feature and misbehaves — raises, or
stalls — only on a chosen set of poisoned documents, so tests can dial
in exactly which documents fail, how many times, and in which operator.
Faults are keyed on ``doc_id`` alone, which keeps them deterministic
across scheduler backends, partition layouts, and quarantine re-runs.

Transient faults (``fail_times``) count their trips in *files*: the
process backend runs tasks in forked children whose memory dies with
them, so an in-memory counter would reset every attempt and the fault
would never recover.  A file under ``trip_dir`` is shared by parent and
children alike.
"""

import time

from repro.features.base import Feature
from repro.features.registry import default_registry
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.xlog.program import PPredicate, Program

__all__ = [
    "FaultingFeature",
    "faulting_p_predicate",
    "faulting_registry",
    "build_corpus",
    "build_program",
    "build_ppredicate_program",
]


class FaultingFeature(Feature):
    """A real feature that fails on poisoned documents.

    ``fail_times=None`` (the default) fails every evaluation over a
    poisoned document; an integer, together with ``trip_dir``, fails
    that many evaluations per document and then recovers (transient
    faults, for exercising the ``retry`` policy).  ``sleep`` stalls
    instead of raising (partition-timeout tests).
    """

    parameterized = False

    def __init__(self, inner, poisoned, fail_times=None, trip_dir=None, sleep=None):
        self.name = inner.name
        self.inner = inner
        self.poisoned = set(poisoned)
        self.fail_times = fail_times
        self.trip_dir = trip_dir
        self.sleep = sleep

    def build_index(self, doc, arrays):
        # stay un-indexable: the naive Verify/Refine path is the fault
        # hook, and an index would answer for it (PR 3 acceleration)
        return None

    def _trip(self, doc_id):
        if self.fail_times is None:
            return True
        path = self.trip_dir / ("%s.trips" % doc_id)
        count = len(path.read_text().splitlines()) if path.exists() else 0
        if count >= self.fail_times:
            return False
        with path.open("a") as fh:
            fh.write("trip\n")
        return True

    def _maybe_fault(self, span):
        doc_id = span.doc.doc_id
        if doc_id not in self.poisoned:
            return
        if self.sleep is not None:
            time.sleep(self.sleep)
            return
        if self._trip(doc_id):
            raise RuntimeError("injected fault on %s" % doc_id)

    def verify(self, span, value):
        self._maybe_fault(span)
        return self.inner.verify(span, value)

    def refine(self, span, value):
        self._maybe_fault(span)
        return self.inner.refine(span, value)


def faulting_registry(poisoned, feature="numeric", **kwargs):
    """The default registry with ``feature`` replaced by a faulting wrap."""
    registry = default_registry()
    registry.register(FaultingFeature(registry.get(feature), poisoned, **kwargs))
    return registry


def faulting_p_predicate(name, poisoned):
    """A 1-in/1-out cleanup p-predicate that raises on poisoned docs."""

    def func(span):
        if span.doc.doc_id in poisoned:
            raise RuntimeError("injected p-predicate fault on %s" % span.doc.doc_id)
        return [(span.text.strip(),)]

    return PPredicate(name, func, 1, 1)


def build_corpus(n=6):
    """``n`` one-record pages, doc ids ``d0`` .. ``d(n-1)``."""
    docs = [
        parse_html(
            "d%d" % i, "<p>Listing %d Price: <b>$%d.00</b></p>" % (i, 100 + 10 * i)
        )
        for i in range(n)
    ]
    return Corpus({"pages": docs})


PROGRAM_SOURCE = """
q(x, <p>) :- pages(x), ie(@x, p).
ie(@x, p) :- from(@x, p), numeric(p) = yes.
"""


def build_program():
    return Program.parse(PROGRAM_SOURCE, extensional=["pages"], query="q")


PPREDICATE_SOURCE = """
q(x, <p>, c) :- pages(x), ie(@x, p), clean(@p, c).
ie(@x, p) :- from(@x, p), numeric(p) = yes.
"""


def build_ppredicate_program(poisoned):
    return Program.parse(
        PPREDICATE_SOURCE,
        extensional=["pages"],
        p_predicates={"clean": faulting_p_predicate("clean", poisoned)},
        query="q",
    )
