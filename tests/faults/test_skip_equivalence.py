"""The tentpole invariant: ``skip`` over k poisoned documents is
byte-identical to a clean run over the corpus minus those documents —
on every scheduler backend, with exactly k fully-attributed
FailureRecords.
"""

import pytest

from repro.processor.context import ExecConfig
from repro.processor.executor import IFlexEngine
from tests.faults.harness import (
    build_corpus,
    build_ppredicate_program,
    build_program,
    faulting_registry,
)
from tests.processor.test_parallel import result_image

BACKENDS = ("serial", "thread", "process")
POISONED = ("d1", "d4")


def run_engine(program, corpus, registry, **config_kwargs):
    config = ExecConfig(**config_kwargs)
    engine = IFlexEngine(program, corpus, registry, config, validate=False)
    return engine.execute()


class TestSkipEquivalence:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_skip_matches_clean_run_minus_poisoned(self, backend):
        corpus = build_corpus(6)
        result = run_engine(
            build_program(),
            corpus,
            faulting_registry(POISONED),
            workers=3,
            backend=backend,
            on_error="skip",
        )
        # the reference uses the same faulting registry: with the
        # poisoned documents absent, no fault ever trips, so any
        # divergence is the error policy's fault alone
        reference = run_engine(
            build_program(),
            corpus.without(POISONED),
            faulting_registry(POISONED),
            workers=3,
            backend=backend,
        )
        assert result_image(result) == result_image(reference), (
            "skip run diverged from clean-minus-poisoned on %s" % backend
        )
        report = result.report
        assert report.policy == "skip"
        assert len(report.records) == len(POISONED)
        assert sorted(report.skipped_doc_ids) == sorted(POISONED)
        for record in report.records:
            assert record.doc_id in POISONED
            # constraint application refines first, so the injected
            # fault surfaces from whichever protocol call ran first
            assert record.operator in ("Verify", "Refine")
            assert record.feature == "numeric"
            assert record.partition is not None
            assert record.exc_type == "RuntimeError"
            assert "injected fault" in record.message
        assert result.stats.failures == len(POISONED)

    def test_skip_single_worker_serial_path(self):
        # workers=1 bypasses the physical layer entirely; the policy
        # driver must contain failures on that path too (no partition
        # context to attribute, doc/operator still present)
        corpus = build_corpus(6)
        result = run_engine(
            build_program(),
            corpus,
            faulting_registry(POISONED),
            on_error="skip",
        )
        reference = run_engine(
            build_program(), corpus.without(POISONED), faulting_registry(POISONED)
        )
        assert result_image(result) == result_image(reference)
        assert sorted(result.report.skipped_doc_ids) == sorted(POISONED)
        assert all(r.partition is None for r in result.report.records)

    def test_skip_contains_ppredicate_faults(self):
        # the second injection point: a raising cleanup p-predicate is
        # attributed through its input span's document
        corpus = build_corpus(6)
        poisoned = {"d2"}
        result = run_engine(
            build_ppredicate_program(poisoned),
            corpus,
            None,
            on_error="skip",
        )
        reference = run_engine(
            build_ppredicate_program(poisoned), corpus.without(poisoned), None
        )
        assert result_image(result) == result_image(reference)
        (record,) = result.report.records
        assert record.doc_id == "d2"
        assert record.operator == "PPredicate"
        assert record.predicate == "clean"

    def test_clean_corpus_reports_nothing(self):
        corpus = build_corpus(4)
        result = run_engine(
            build_program(), corpus, faulting_registry(()), on_error="skip"
        )
        assert not result.report
        assert result.report.records == []
        assert result.stats.failures == 0 and result.stats.retries == 0

    @pytest.mark.timeout(120)
    def test_explain_analyze_skips_and_reports(self):
        corpus = build_corpus(6)
        config = ExecConfig(workers=2, backend="thread", on_error="skip")
        engine = IFlexEngine(
            build_program(), corpus, faulting_registry(("d0",)), config, validate=False
        )
        result, text = engine.explain_analyze()
        assert result.report.skipped_doc_ids == ["d0"]
        assert "error policy 'skip'" in text
        assert "d0" in text
