"""CLI fault surfacing: the new error-policy flags, non-zero exit only
under fail-fast, and the failure report on stderr (never mixed into the
piped table output).
"""

import pytest

from repro import cli
from repro.errors import ExecutionFailure, ExecutionReport, FailureRecord
from tests.faults.harness import PROGRAM_SOURCE


@pytest.fixture
def program_args(tmp_path):
    program = tmp_path / "listing.xlog"
    program.write_text(PROGRAM_SOURCE)
    page = tmp_path / "pages"
    page.mkdir()
    (page / "a.html").write_text("<p>Price: <b>$100.00</b></p>")
    return [str(program), "--table", "pages=%s" % page]


class TestFlagParsing:
    def test_error_policy_flags_reach_exec_config(self, program_args):
        args = cli.build_parser().parse_args(
            ["run", *program_args, "--on-error", "retry",
             "--max-retries", "5", "--partition-timeout", "1.5"]
        )
        config = cli._exec_config(args)
        assert config.on_error == "retry"
        assert config.max_retries == 5
        assert config.partition_timeout == 1.5

    def test_defaults_are_fail_fast_and_unbounded(self, program_args):
        args = cli.build_parser().parse_args(["run", *program_args])
        config = cli._exec_config(args)
        assert config.on_error == "fail-fast"
        assert config.max_retries == 2
        assert config.partition_timeout is None

    def test_unknown_policy_rejected_at_parse_time(self, program_args, capsys):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(
                ["run", *program_args, "--on-error", "ignore"]
            )
        assert "invalid choice" in capsys.readouterr().err


class _FakeTable:
    def pretty(self, max_rows=None):
        return "q\n(empty)"


class _FakeResult:
    def __init__(self, report):
        self.report = report
        self.query_table = _FakeTable()

    def summary(self):
        return {"tuples": 4, "maybe": 0, "assignments": 4, "elapsed_s": 0.01}


class _StubEngine:
    """Stands in for IFlexEngine: raise or return a canned result."""

    failure = None
    result = None

    def __init__(self, *args, **kwargs):
        pass

    def execute(self):
        if self.failure is not None:
            raise self.failure
        return self.result


class TestExitCodes:
    def test_fail_fast_exits_nonzero_with_enriched_message(
        self, program_args, monkeypatch, capsys
    ):
        _StubEngine.failure = ExecutionFailure.wrap(
            RuntimeError("injected fault on d1"),
            doc_id="d1", operator="Verify", feature="numeric",
        )
        _StubEngine.result = None
        monkeypatch.setattr(cli, "IFlexEngine", _StubEngine)
        rc = cli.main(["run", *program_args])
        captured = capsys.readouterr()
        assert rc == 1
        # the enriched one-liner, not a bare traceback dump
        assert "error:" in captured.err
        assert "d1" in captured.err and "Verify" in captured.err
        assert "Traceback" not in captured.err

    def test_skip_exits_zero_and_reports_on_stderr(
        self, program_args, monkeypatch, capsys
    ):
        record = FailureRecord(
            doc_id="d1", partition=0, operator="Verify", feature="numeric",
            predicate=None, exc_type="RuntimeError",
            message="injected fault on d1", traceback_summary="", retry_count=0,
        )
        _StubEngine.failure = None
        _StubEngine.result = _FakeResult(
            ExecutionReport(policy="skip", records=[record])
        )
        monkeypatch.setattr(cli, "IFlexEngine", _StubEngine)
        rc = cli.main(["run", *program_args])
        captured = capsys.readouterr()
        assert rc == 0
        # report on stderr; the table (stdout) stays pipe-clean
        assert "d1" in captured.err
        assert "skip" in captured.err
        assert "d1" not in captured.out

    def test_clean_run_prints_no_report(self, program_args, monkeypatch, capsys):
        _StubEngine.failure = None
        _StubEngine.result = _FakeResult(ExecutionReport(policy="skip", records=[]))
        monkeypatch.setattr(cli, "IFlexEngine", _StubEngine)
        rc = cli.main(["run", *program_args])
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.err == ""


class TestEndToEnd:
    def test_real_run_accepts_the_flags(self, program_args, capsys):
        rc = cli.main(
            ["run", *program_args, "--on-error", "skip", "--partition-timeout", "30"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "$100.00" in captured.out
        assert captured.err == ""
