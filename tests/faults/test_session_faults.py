"""A refinement session must survive a poisoned document mid-refinement:
quarantine it once, record it, and keep iterating over the reduced
corpus.
"""

import pytest

from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
from repro.assistant.session import RefinementSession
from repro.errors import ExecutionFailure
from repro.features.registry import default_registry
from repro.processor.context import ExecConfig
from repro.processor.executor import IFlexEngine
from repro.text.span import Span
from tests.faults.harness import build_corpus, build_program, faulting_registry
from tests.processor.test_parallel import result_image

POISONED = ("d2",)


def make_truth(corpus):
    spans = []
    for doc in corpus.table("pages"):
        start = doc.text.index("$") + 1
        spans.append(Span(doc, start, doc.text.index(".00") + 3))
    return GroundTruth({("ie", "p"): spans})


def make_session(corpus, registry, **config_kwargs):
    developer = SimulatedDeveloper(make_truth(corpus), seed=1)
    return RefinementSession(
        build_program(),
        corpus,
        developer,
        features=registry,
        config=ExecConfig(**config_kwargs),
        seed=1,
        max_iterations=3,
    )


class TestSessionSurvival:
    def test_session_survives_poisoned_document(self):
        corpus = build_corpus(6)
        session = make_session(corpus, faulting_registry(POISONED), on_error="skip")
        trace = session.run()
        assert session.poisoned_docs == set(POISONED)
        assert [r.doc_id for r in trace.failure_records][:1] == ["d2"]
        assert trace.final_result is not None
        # the poisoned doc was excluded from both corpora, so later
        # iterations (and the final full run) never re-pay discovery
        assert all(
            d.doc_id != "d2"
            for d in session.corpus.table("pages")
        )
        assert all(
            d.doc_id != "d2"
            for d in session.subset_corpus.table("pages")
        )

    def test_final_result_matches_clean_session(self):
        corpus = build_corpus(6)
        poisoned_session = make_session(
            corpus, faulting_registry(POISONED), on_error="skip"
        )
        trace = poisoned_session.run()
        clean_session = make_session(
            corpus.without(POISONED), default_registry(), on_error="skip"
        )
        clean_trace = clean_session.run()
        assert result_image(trace.final_result) == result_image(
            clean_trace.final_result
        )
        assert clean_trace.failure_records == []

    def test_fail_fast_session_propagates(self):
        corpus = build_corpus(6)
        session = make_session(corpus, faulting_registry(POISONED))
        with pytest.raises(ExecutionFailure) as excinfo:
            session.run()
        assert excinfo.value.doc_id == "d2"

    def test_discovery_happens_once(self):
        # after the session quarantines the doc, a fresh engine over the
        # session's reduced corpus runs clean with the faulting registry
        corpus = build_corpus(6)
        registry = faulting_registry(POISONED)
        session = make_session(corpus, registry, on_error="skip")
        session.run()
        result = IFlexEngine(
            build_program(),
            session.corpus,
            registry,
            ExecConfig(on_error="fail-fast"),
            validate=False,
        ).execute()
        assert not result.report
