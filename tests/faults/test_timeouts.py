"""Partition timeouts: enforcement strength per backend, and the rule
that a timeout is never skippable (the hung work is not attributable to
one document).
"""

import time

import pytest

from repro.errors import PartitionTimeout
from repro.processor.context import ExecConfig
from repro.processor.executor import IFlexEngine
from repro.processor.schedulers import (
    ProcessBackend,
    SerialBackend,
    TaskError,
    ThreadBackend,
)
from tests.faults.harness import build_corpus, build_program, faulting_registry


class TestSchedulerTimeouts:
    def test_serial_detects_after_the_fact(self):
        backend = SerialBackend()
        with pytest.raises(TaskError) as excinfo:
            backend.map(lambda s: time.sleep(s), [0.15], timeout=0.05)
        assert isinstance(excinfo.value.failure, PartitionTimeout)
        assert excinfo.value.task_index == 0

    @pytest.mark.timeout(60)
    def test_serial_detects_hung_task_promptly(self):
        # regression: a task that never returns used to hang the serial
        # backend forever (timeout was checked only after the task
        # completed); the watchdog now raises within ~1 poll interval
        backend = SerialBackend()
        start = time.perf_counter()
        with pytest.raises(TaskError) as excinfo:
            backend.map(lambda s: time.sleep(s), [10.0], timeout=0.2)
        assert time.perf_counter() - start < 2.0
        assert isinstance(excinfo.value.failure, PartitionTimeout)
        assert excinfo.value.task_index == 0

    @pytest.mark.timeout(60)
    def test_thread_single_worker_detects_hung_task(self):
        # regression: workers=1 (and single-item maps) fall back to the
        # serial path, which also must detect a hang, not sit in it
        backend = ThreadBackend(1)
        start = time.perf_counter()
        with pytest.raises(TaskError) as excinfo:
            backend.map(lambda s: time.sleep(s), [10.0, 0.01], timeout=0.2)
        assert time.perf_counter() - start < 2.0
        assert isinstance(excinfo.value.failure, PartitionTimeout)
        assert excinfo.value.task_index == 0

    @pytest.mark.timeout(60)
    def test_thread_detects_hang_beyond_awaited_future(self):
        # both workers hang on later tasks while the result loop waits
        # on the fast first future; per-task start stamps mean the hung
        # tasks are flagged on their own deadlines, not when the loop
        # eventually reaches them
        backend = ThreadBackend(2)
        start = time.perf_counter()
        with pytest.raises(TaskError) as excinfo:
            backend.map(lambda s: time.sleep(s), [0.01, 10.0, 10.0], timeout=0.25)
        assert time.perf_counter() - start < 2.5
        assert isinstance(excinfo.value.failure, PartitionTimeout)
        assert excinfo.value.task_index in (1, 2)

    @pytest.mark.timeout(60)
    def test_thread_detects_while_running(self):
        backend = ThreadBackend(2)
        start = time.perf_counter()
        with pytest.raises(TaskError) as excinfo:
            backend.map(lambda s: time.sleep(s), [0.05, 5.0], timeout=0.3)
        # raised well before the slow task would have finished: the
        # timeout detected a *running* task, not a completed one
        assert time.perf_counter() - start < 4.0
        assert isinstance(excinfo.value.failure, PartitionTimeout)
        assert excinfo.value.task_index == 1

    @pytest.mark.timeout(60)
    def test_process_enforces_by_termination(self):
        backend = ProcessBackend(2)
        start = time.perf_counter()
        with pytest.raises(TaskError) as excinfo:
            backend.map(lambda s: time.sleep(s), [30.0, 30.0], timeout=0.4)
        # the hung children were terminated with the pool, so the call
        # returns in timeout-time, not task-time
        assert time.perf_counter() - start < 15.0
        assert isinstance(excinfo.value.failure, PartitionTimeout)

    def test_no_timeout_means_no_limit(self):
        assert SerialBackend().map(lambda s: time.sleep(s), [0.01]) == [None]


class TestEngineTimeouts:
    @pytest.mark.timeout(120)
    def test_hung_partition_fails_even_under_skip(self):
        # a stalling (not raising) feature on one document; the process
        # backend kills the partition at the deadline, and no policy may
        # contain the resulting PartitionTimeout
        registry = faulting_registry(("d4",), sleep=30.0)
        config = ExecConfig(
            workers=3,
            backend="process",
            on_error="skip",
            partition_timeout=0.5,
        )
        engine = IFlexEngine(
            build_program(), build_corpus(6), registry, config, validate=False
        )
        start = time.perf_counter()
        with pytest.raises(PartitionTimeout) as excinfo:
            engine.execute()
        assert time.perf_counter() - start < 20.0
        assert excinfo.value.partition is not None

    def test_generous_timeout_is_harmless(self):
        config = ExecConfig(workers=2, backend="thread", partition_timeout=60.0)
        engine = IFlexEngine(
            build_program(), build_corpus(4), None, config, validate=False
        )
        result = engine.execute()
        assert result.tuple_count > 0
        assert not result.report
