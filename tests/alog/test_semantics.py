"""Reference possible-worlds semantics tests (Definitions 1 & 2)."""

import pytest

from repro.alog.semantics import (
    annotate_relation,
    powerset_relations,
    program_possible_relations,
    rule_possible_relations,
)
from repro.ctables.assignments import value_key
from repro.errors import EnumerationLimitError
from repro.text import Corpus, Document
from repro.xlog.parser import parse_rule
from repro.xlog.program import Program


def freeze(rows):
    return frozenset(tuple(value_key(v) for v in row) for row in rows)


class TestExistenceAnnotation:
    def test_powerset(self):
        base = {freeze([(1,), (2,)])}
        worlds = powerset_relations(base)
        assert len(worlds) == 4
        assert frozenset() in worlds

    def test_definition1_via_annotate(self):
        worlds = annotate_relation([(1,), (2,)], (True, ()))
        assert len(worlds) == 4

    def test_cap(self):
        rows = [(i,) for i in range(40)]
        with pytest.raises(EnumerationLimitError):
            annotate_relation(rows, (True, ()), max_worlds=1000)


class TestAttributeAnnotation:
    def test_definition2_grouping(self):
        # rows (x, v): x is key, v annotated -> one v per x
        rows = [("a", 1), ("a", 2), ("b", 3)]
        worlds = annotate_relation(rows, (False, (1,)))
        assert len(worlds) == 2
        expected = {
            freeze([("a", 1), ("b", 3)]),
            freeze([("a", 2), ("b", 3)]),
        }
        assert worlds == expected

    def test_multiple_annotated_attributes(self):
        rows = [("k", 1, "x"), ("k", 2, "y")]
        worlds = annotate_relation(rows, (False, (1, 2)))
        # 2 choices for attr1 x 2 for attr2
        assert len(worlds) == 4

    def test_no_annotation_is_identity(self):
        rows = [(1, 2)]
        assert annotate_relation(rows, (False, ())) == {freeze(rows)}

    def test_existence_after_attribute(self):
        rows = [("a", 1), ("a", 2)]
        worlds = annotate_relation(rows, (True, (1,)))
        # choose one of two values, then any subset of the 1-row relation
        assert frozenset() in worlds
        assert len(worlds) == 3  # {}, {(a,1)}, {(a,2)}


class TestRulePossibleRelations:
    def test_annotated_rule(self):
        rule = parse_rule("houses(x, <p>) :- base(x), ie(@x, p).")
        rows = [("x1", 1), ("x1", 2)]
        worlds = rule_possible_relations(rule, rows)
        assert len(worlds) == 2


class TestProgramPossibleRelations:
    def test_example_23_houses(self):
        doc = Document("x1", "Sqft: 2750 Price: 351,000")
        corpus = Corpus({"housePages": [doc]})
        program = Program.parse(
            """
            houses(x, <p>) :- housePages(x), extractP(@x, p).
            extractP(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            extensional=["housePages"],
            query="houses",
        )
        worlds = program_possible_relations(program, corpus)
        # one tuple per document, p one of the two numbers
        assert len(worlds) == 2
        sizes = {len(w) for w in worlds}
        assert sizes == {1}

    def test_existence_program(self):
        doc = Document("y1", "alpha beta")
        corpus = Corpus({"pages": [doc]})
        program = Program.parse(
            """
            schools(s)? :- pages(y), extractS(@y, s).
            extractS(@y, s) :- from(@y, s).
            """,
            extensional=["pages"],
            query="schools",
        )
        worlds = program_possible_relations(program, corpus)
        # 3 sub-spans -> powerset of 3 tuples
        assert len(worlds) == 8
