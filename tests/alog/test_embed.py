"""The SpannerLib-style embedding API (:mod:`repro.alog.embed`).

Sessions compose tables from Python data and rules from source
fragments, run in-process, and hand tuples back as plain Python values
with the approximation structure (maybe flags, cell assignments)
preserved; :meth:`AlogSession.submit` ships the same pipeline to a
resident :class:`~repro.service.ExtractionService`.
"""

import pytest

from repro.alog import AlogSession
from repro.ctables import table_key
from repro.text.html_parser import parse_html

EDGE_DOCS = {
    "e1": "<p>001 002</p>",
    "e2": "<p>002 003</p>",
    "e3": "<p>003 004</p>",
}

TC_RULES = """
edge(x, y) :- docs(d), pair(@d, x, y).
pair(@d, x, y) :- from(@d, x), numeric(x) = yes, first_half(x) = yes, from(@d, y), numeric(y) = yes, first_half(y) = no.
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y2, z), y = y2.
"""


def path_pairs(results):
    return {(int(row["x"]), int(row["y"])) for row in results}


class TestComposition:
    def test_chained_tables_and_rules_run(self):
        session = (
            AlogSession()
            .table("pages", {"a": "<p>Price: 12</p>"})
            .rule("q(x, p) :- pages(x), from(@x, p), numeric(p) = yes.")
        )
        results = session.run(query="q")
        assert len(results) == 1
        assert results[0]["p"] == "12"
        assert results.attrs == ("x", "p")

    def test_documents_accept_pairs_and_parsed_documents(self):
        doc = parse_html("b", "<p>Price: 34</p>")
        session = (
            AlogSession()
            .table("pages", [("a", "<p>Price: 12</p>"), doc])
            .rule("q(x, p) :- pages(x), from(@x, p), numeric(p) = yes.")
        )
        values = {row["p"] for row in session.run(query="q")}
        assert values == {"12", "34"}

    def test_redeclaring_a_table_replaces_it(self):
        session = (
            AlogSession()
            .table("pages", {"a": "<p>Price: 12</p>"})
            .rule("q(x, p) :- pages(x), from(@x, p), numeric(p) = yes.")
        )
        session.table("pages", {"a": "<p>Price: 99</p>"})
        values = {row["p"] for row in session.run(query="q")}
        assert values == {"99"}

    def test_no_rules_is_a_value_error(self):
        with pytest.raises(ValueError) as err:
            AlogSession().table("pages", {}).program()
        assert "no rules" in str(err.value)

    def test_lint_sees_the_assembled_program(self):
        session = AlogSession().table("docs", EDGE_DOCS).rule(TC_RULES)
        result = session.lint(query="path")
        assert result.ok
        found = [d for d in result.diagnostics if d.code == "ALOG016"]
        assert found and found[0].severity == "info"


class TestResults:
    def test_maybe_flag_rides_on_rows(self):
        session = (
            AlogSession()
            .table("pages", {"a": "<p>Price: 12</p>"})
            .rule("q(x, p)? :- pages(x), from(@x, p), numeric(p) = yes.")
        )
        results = session.run(query="q")
        assert all(row.maybe for row in results)
        assert len(results.maybe_rows()) == len(results)
        assert results[0].as_dict()["maybe"] is True

    def test_cell_exposes_the_approximation_structure(self):
        session = (
            AlogSession()
            .table("pages", {"a": "<p>Price: 12</p>"})
            .rule("q(x, p) :- pages(x), from(@x, p), numeric(p) = yes.")
        )
        cell = session.run(query="q")[0].cell("p")
        assert cell["assignments"]

    def test_exports_delegate_to_the_compact_table(self):
        session = (
            AlogSession()
            .table("pages", {"a": "<p>Price: 12</p>"})
            .rule("q(x, p) :- pages(x), from(@x, p), numeric(p) = yes.")
        )
        results = session.run(query="q")
        assert results.to_dicts()
        assert "p" in results.to_csv().splitlines()[0]

    def test_recursive_rules_run_to_fixpoint(self):
        session = AlogSession().table("docs", EDGE_DOCS).rule(TC_RULES)
        results = session.run(query="path")
        assert path_pairs(results) == {
            (1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4),
        }
        assert results.stats.fixpoint_iterations == 4


class TestProcedural:
    def test_p_function_registers_and_runs(self):
        session = (
            AlogSession()
            .table("pages", {"a": "<p>12 99</p>"})
            .rule(
                "q(x, y) :- pages(d), pair(@d, x, y), accept(x, y)."
            )
            .rule(
                "pair(@d, x, y) :- from(@d, x), numeric(x) = yes, first_half(x) = yes, from(@d, y), numeric(y) = yes, first_half(y) = no."
            )
            .p_function("accept", lambda left, right: True)
        )
        assert len(session.run(query="q")) == 1
        session.p_function("accept", lambda left, right: False)
        assert len(session.run(query="q")) == 0

    def test_p_predicate_registers_for_parsing(self):
        session = (
            AlogSession()
            .table("docs", {"a": "<p>x</p>"})
            .rule("q(t) :- docs(d), cleanup(@d, t).")
            .p_predicate("cleanup", lambda value: [(value,)], 1, 1)
        )
        program = session.program(query="q")
        assert "cleanup" in program.p_predicates


class TestSubmit:
    def service(self):
        from repro.processor.context import ExecConfig
        from repro.service.state import ExtractionService

        return ExtractionService(config=ExecConfig(workers=1))

    def test_recursive_pipeline_hosts_on_the_service(self):
        service = self.service()
        session = AlogSession().table("docs", EDGE_DOCS).rule(TC_RULES)
        host, resubmitted = session.submit(service, query="path")
        assert not resubmitted
        hosted = service.run_program(host.program_id)
        local = session.run(query="path")
        assert table_key(hosted.query_table) == table_key(
            local.result.query_table
        )

    def test_resubmitting_the_same_session_is_idempotent(self):
        service = self.service()
        session = AlogSession().table("docs", EDGE_DOCS).rule(TC_RULES)
        session.submit(service, query="path")
        _, resubmitted = session.submit(service, query="path", ingest=False)
        assert resubmitted

    def test_procedural_sessions_refuse_to_submit(self):
        service = self.service()
        session = (
            AlogSession()
            .table("pages", {"a": "<p>x</p>"})
            .rule("q(x) :- pages(x).")
            .p_function("accept", lambda left, right: True)
        )
        with pytest.raises(ValueError) as err:
            session.submit(service)
        assert "service boundary" in str(err.value)
