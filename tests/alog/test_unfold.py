"""Description-rule unfolding tests (paper section 4, Figure 4.a)."""

import pytest

from repro.xlog.ast import ConstraintAtom, PredicateAtom
from repro.xlog.program import Program
from repro.alog.unfold import unfold_program, unfold_rules


def program(source, **kwargs):
    kwargs.setdefault("extensional", ["base"])
    return Program.parse(source, **kwargs)


class TestUnfolding:
    def test_single_ie_atom(self):
        p = program(
            """
            q(x, p) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """
        )
        (rule,) = unfold_rules(p)
        names = [a.name for a in rule.body_atoms(PredicateAtom)]
        assert names == ["base", "from"]
        constraints = rule.body_atoms(ConstraintAtom)
        assert len(constraints) == 1
        assert constraints[0].var.name == "p"  # head var flows through

    def test_paper_figure4_shape(self, figure2_program):
        unfolded = unfold_program(figure2_program)
        s1 = unfolded.rules_for("houses")[0]
        from_atoms = [
            a for a in s1.body_atoms(PredicateAtom) if a.name == "from"
        ]
        assert len(from_atoms) == 3
        assert len(s1.body_atoms(ConstraintAtom)) == 2
        # annotations survive unfolding
        assert s1.annotations == (False, ("p", "a", "h"))
        s2 = unfolded.rules_for("schools")[0]
        assert s2.annotations == (True, ())

    def test_body_only_vars_renamed_fresh(self):
        p = program(
            """
            q(x, p) :- base(x), ie(@x, p).
            r(y, w) :- base(y), ie(@y, w).
            ie(@d, out) :- from(@d, tmp), from(@tmp, out).
            """,
            query="q",
        )
        rules = unfold_rules(p)
        tmp_names = set()
        for rule in rules:
            for atom in rule.body_atoms(PredicateAtom):
                for var in atom.variables:
                    if var.name.startswith("tmp"):
                        tmp_names.add(var.name)
        assert len(tmp_names) == 2  # one fresh name per unfolding instance

    def test_multiple_description_rules_multiply(self):
        p = program(
            """
            q(x, p) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            ie(@x, p) :- from(@x, p), bold_font(p) = yes.
            """
        )
        rules = unfold_rules(p)
        assert len(rules) == 2

    def test_two_ie_atoms_in_one_rule(self):
        p = program(
            """
            q(x, p, s) :- base(x), ie1(@x, p), ie2(@x, s).
            ie1(@x, p) :- from(@x, p), numeric(p) = yes.
            ie2(@x, s) :- from(@x, s), bold_font(s) = yes.
            """
        )
        (rule,) = unfold_rules(p)
        froms = [a for a in rule.body_atoms(PredicateAtom) if a.name == "from"]
        assert len(froms) == 2

    def test_procedural_ie_atoms_left_alone(self):
        from repro.xlog.program import PPredicate

        p = program(
            "q(x, p) :- base(x), cleanup(@x, p).",
            p_predicates={"cleanup": PPredicate("cleanup", lambda x: [], 1, 1)},
        )
        (rule,) = unfold_rules(p)
        assert rule.body[1].name == "cleanup"

    def test_unfolded_program_has_no_description_rules(self, figure2_program):
        unfolded = unfold_program(figure2_program)
        assert not unfolded.description_rules
        assert unfolded.query == figure2_program.query
