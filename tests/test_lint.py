"""Repository lint gate.

``ruff`` runs when it is installed (the ``[tool.ruff]`` config in
pyproject.toml is the source of truth); environments without it still
get the highest-value check — unused imports, the most common rot in a
growing codebase — from a small AST walker with no dependencies.
"""

import ast
import pathlib
import shutil
import subprocess

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def _unused_imports(tree):
    imported = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = (alias.asname or alias.name).split(".")[0]
                imported[name] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    imported[alias.asname or alias.name] = node.lineno
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)  # names listed in __all__
    return [(name, line) for name, line in imported.items() if name not in used]


def test_no_unused_imports():
    problems = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "__init__.py":
            continue  # re-export modules
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for name, line in _unused_imports(tree):
            problems.append("%s:%d: unused import %r" % (path, line, name))
    assert not problems, "\n".join(problems)
