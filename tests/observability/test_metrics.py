"""Metrics registry: ops, deterministic snapshots, and merge semantics."""

import json

import pytest

from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    record_execution,
    record_stats,
)
from repro.processor.context import ExecutionStats


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro.test.ops")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labels_key_separate_series(self):
        counter = MetricsRegistry().counter("repro.test.ops")
        counter.inc(2, backend="serial")
        counter.inc(3, backend="thread")
        assert counter.value(backend="serial") == 2
        assert counter.value(backend="thread") == 3
        assert counter.value() == 0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro.test.ops")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("repro.test.level")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value() == 3

    def test_inc_accumulates(self):
        gauge = MetricsRegistry().gauge("repro.test.level")
        gauge.inc(2)
        gauge.inc(-5)
        assert gauge.value() == -3


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = MetricsRegistry().histogram("repro.test.sizes", buckets=(1, 10))
        for value in (0, 1, 5, 100):
            histogram.observe(value)
        snap = histogram.snapshot()["series"][0]["value"]
        assert snap["count"] == 4
        assert snap["sum"] == 106
        assert snap["buckets"] == [2, 1, 1]  # <=1, <=10, +inf
        assert snap["bounds"] == [1, 10]

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestRegistry:
    def test_constructors_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_snapshot_is_sorted_and_json_stable(self):
        def build(order):
            registry = MetricsRegistry()
            for name in order:
                registry.counter(name).inc(1, z="1", a="2")
            return registry

        first = build(["b", "a", "c"]).to_json()
        second = build(["c", "b", "a"]).to_json()
        assert first == second
        names = [m["name"] for m in json.loads(first)["metrics"]]
        assert names == sorted(names)

    def test_write_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro.test.ops").inc(3)
        path = tmp_path / "metrics.json"
        registry.write(path)
        loaded = json.loads(path.read_text())
        assert loaded == registry.snapshot()

    def test_merge_sums_counters_and_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        for registry, amount in ((left, 2), (right, 5)):
            registry.counter("ops").inc(amount, task="t")
            registry.histogram("sizes", buckets=(10,)).observe(amount)
            registry.gauge("level").set(amount)
        left.merge(right)
        assert left.counter("ops").value(task="t") == 7
        series = left.histogram("sizes").snapshot()["series"][0]["value"]
        assert series["count"] == 2 and series["sum"] == 7
        # gauges: the merged-in observation wins
        assert left.gauge("level").value() == 5

    def test_merge_accepts_snapshot_dict(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        right.counter("ops").inc(4)
        left.merge(right.snapshot())
        assert left.counter("ops").value() == 4

    def test_merge_equivalent_to_single_registry(self):
        """Per-partition registries merge like ExecutionStats: the fold
        equals one registry that saw all the work."""
        parts = []
        for i in range(3):
            registry = MetricsRegistry()
            registry.counter("ops").inc(i + 1)
            parts.append(registry)
        combined = MetricsRegistry()
        for part in parts:
            combined.merge(part)
        reference = MetricsRegistry()
        reference.counter("ops").inc(6)
        assert combined.to_json() == reference.to_json()


class TestExecutionBridges:
    def test_record_stats_covers_every_field(self):
        stats = ExecutionStats(verify_calls=3, tuples_built=7)
        registry = MetricsRegistry()
        record_stats(registry, stats, backend="serial")
        assert registry.counter("repro.exec.verify_calls").value(backend="serial") == 3
        assert registry.counter("repro.exec.tuples_built").value(backend="serial") == 7
        recorded = {m["name"] for m in registry.snapshot()["metrics"]}
        assert recorded == {"repro.exec.%s" % name for name in vars(stats)}

    def test_record_execution(self, figure2_program, figure1_corpus):
        from repro.processor.executor import IFlexEngine

        result = IFlexEngine(figure2_program, figure1_corpus).execute()
        registry = MetricsRegistry()
        record_execution(registry, result)
        assert registry.counter("repro.result.executions").value() == 1
        assert registry.gauge("repro.result.tuples").value() == result.tuple_count
        histogram = registry.get("repro.result.tuples_per_execution")
        assert histogram.snapshot()["series"][0]["value"]["count"] == 1


class TestEngineMetrics:
    def test_engine_records_into_registry(self, figure2_program, figure1_corpus):
        from repro.processor.executor import IFlexEngine

        registry = MetricsRegistry()
        engine = IFlexEngine(figure2_program, figure1_corpus, metrics=registry)
        result = engine.execute()
        assert (
            registry.counter("repro.exec.verify_calls").value()
            == result.stats.verify_calls
        )
        assert registry.counter("repro.result.executions").value() == 1
