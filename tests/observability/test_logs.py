"""The shared ``repro.*`` logger hierarchy and configure_logging."""

import io
import logging

import pytest

from repro.observability.logs import configure_logging, get_logger


@pytest.fixture(autouse=True)
def clean_root_handlers():
    root = logging.getLogger("repro")
    before = list(root.handlers)
    before_level = root.level
    yield
    root.handlers = before
    root.setLevel(before_level)


class TestGetLogger:
    def test_prefixes_bare_names(self):
        assert get_logger("processor").name == "repro.processor"

    def test_keeps_qualified_names(self):
        assert get_logger("repro.assistant").name == "repro.assistant"

    def test_empty_name_is_root(self):
        assert get_logger().name == "repro"


class TestConfigureLogging:
    def test_attaches_one_handler(self):
        stream = io.StringIO()
        root = configure_logging("info", stream=stream)
        get_logger("processor").info("hello %s", "world")
        assert "hello world" in stream.getvalue()
        assert root.level == logging.INFO

    def test_idempotent(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging("info", stream=first)
        root = configure_logging("debug", stream=second)
        get_logger("x").info("once")
        # the second call replaced the first handler: one line, one stream
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1
        assert root.level == logging.DEBUG

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")

    def test_numeric_level_accepted(self):
        root = configure_logging(logging.ERROR, stream=io.StringIO())
        assert root.level == logging.ERROR
