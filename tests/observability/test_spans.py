"""Span recording and the two export formats (lossless JSON + Chrome)."""

import json

import pytest

from repro.observability.spans import (
    Span,
    Tracer,
    span_tree_image,
    spans_from_chrome,
    spans_from_json,
    spans_from_traces,
    spans_to_chrome,
    spans_to_json,
    write_chrome_trace,
)
from repro.processor.tracing import OperatorTrace


def make_tree():
    """engine > (plan > operator, scheduler) — a small realistic tree."""
    tracer = Tracer()
    with tracer.span("execute", "engine", policy="fail-fast"):
        with tracer.span("predicate:q", "plan"):
            tracer.add("Scan[pages]", "operator", start=1.0, end=2.0, tuples=4)
        with tracer.span("scheduler.map", "scheduler", backend="serial"):
            pass
    return tracer


class TestTracer:
    def test_nesting_assigns_parents(self):
        tracer = make_tree()
        image = span_tree_image(tracer.spans)
        parents = {name: parent for name, _, parent, _ in image}
        assert parents["predicate:q"] == "execute"
        assert parents["Scan[pages]"] == "predicate:q"
        assert parents["scheduler.map"] == "execute"
        assert parents["execute"] is None

    def test_span_ids_unique(self):
        tracer = make_tree()
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids))

    def test_end_without_open_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().end()

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError()
        assert len(tracer.spans) == 1
        assert tracer.current is None

    def test_adopt_remaps_ids_and_preserves_structure(self):
        worker = Tracer()
        with worker.span("partition[0]", "partition", partition=0):
            with worker.span("verify-batch:numeric(p)", "feature"):
                pass
        parent = Tracer()
        with parent.span("scheduler.map", "scheduler") as scheduler_span:
            adopted = parent.adopt(worker.spans, parent=scheduler_span)
        assert len(adopted) == 2
        image = span_tree_image(parent.spans)
        parents = {name: parent_name for name, _, parent_name, _ in image}
        assert parents["partition[0]"] == "scheduler.map"
        assert parents["verify-batch:numeric(p)"] == "partition[0]"
        # ids re-assigned from the adopting tracer's sequence
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))


class TestSpansFromTraces:
    def traces(self):
        # depth-first rows of: root(project) > select > scan
        return [
            OperatorTrace("Project", 0, elapsed=0.1, subtree_elapsed=0.6, out_tuples=2),
            OperatorTrace("Select", 1, elapsed=0.2, subtree_elapsed=0.5, out_tuples=2),
            OperatorTrace("Scan", 2, elapsed=0.3, subtree_elapsed=0.3, out_tuples=5),
        ]

    def test_nesting_follows_depth(self):
        tracer = Tracer()
        spans = spans_from_traces(self.traces(), tracer, anchor=0.0)
        parents = {
            s.name: parent
            for s, parent in (
                (span, {x.span_id: x.name for x in spans}.get(span.parent_id))
                for span in spans
            )
        }
        assert parents == {"Project": None, "Select": "Project", "Scan": "Select"}

    def test_windows_use_subtree_time_and_nest(self):
        spans = spans_from_traces(self.traces(), Tracer(), anchor=0.0)
        by_name = {s.name: s for s in spans}
        assert by_name["Project"].duration == pytest.approx(0.6)
        assert by_name["Select"].duration == pytest.approx(0.5)
        # each child's window lies inside its parent's window
        assert by_name["Select"].start >= by_name["Project"].start
        assert by_name["Select"].end <= by_name["Project"].end + 1e-9
        assert by_name["Scan"].start >= by_name["Select"].start
        assert by_name["Scan"].end <= by_name["Select"].end + 1e-9

    def test_attrs_carry_counts(self):
        spans = spans_from_traces(self.traces(), Tracer(), anchor=0.0)
        assert spans[2].attrs["tuples"] == 5
        assert spans[0].attrs["self_time_s"] == pytest.approx(0.1)

    def test_empty_traces(self):
        assert spans_from_traces([], Tracer()) == []


class TestJsonRoundTrip:
    def test_lossless(self):
        spans = make_tree().spans
        restored = spans_from_json(spans_to_json(spans))
        assert sorted(restored, key=lambda s: s.span_id) == sorted(
            spans, key=lambda s: s.span_id
        )


class TestChromeExport:
    def test_schema_validity(self):
        text = spans_to_chrome(make_tree().spans)
        payload = json.loads(text)
        assert isinstance(payload["traceEvents"], list)
        for event in payload["traceEvents"]:
            assert event["ph"] == "X"
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["cat"], str) and event["cat"]
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)

    def test_timestamps_are_relative_microseconds(self):
        tracer = Tracer()
        tracer.add("a", start=10.0, end=10.5)
        tracer.add("b", start=11.0, end=11.25)
        events = json.loads(spans_to_chrome(tracer.spans))["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["a"]["ts"] == pytest.approx(0.0)
        assert by_name["a"]["dur"] == pytest.approx(0.5e6)
        assert by_name["b"]["ts"] == pytest.approx(1.0e6)

    def test_round_trip_reproduces_tree(self):
        spans = make_tree().spans
        restored = spans_from_chrome(spans_to_chrome(spans))
        assert span_tree_image(restored) == span_tree_image(spans)

    def test_partition_spans_get_own_lane(self):
        tracer = Tracer()
        tracer.add("partition[0]", "partition", partition=0)
        tracer.add("partition[1]", "partition", partition=1)
        tracer.add("execute", "engine")
        events = json.loads(spans_to_chrome(tracer.spans))["traceEvents"]
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["partition[0]"] != tids["partition[1]"]
        assert tids["execute"] == 0

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "run.trace.json"
        write_chrome_trace(path, make_tree().spans)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 4


class TestSpanDataclass:
    def test_duration_never_negative(self):
        assert Span("x", start=2.0, end=1.0).duration == 0.0
