"""Telemetry sinks and the session's per-iteration JSONL records."""

import io
import json

import pytest

from repro.observability.telemetry import (
    TelemetrySink,
    iteration_rows,
    read_telemetry,
    render_iteration_report,
)


class TestTelemetrySink:
    def test_requires_exactly_one_target(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetrySink()
        with pytest.raises(ValueError):
            TelemetrySink(path=tmp_path / "t.jsonl", stream=io.StringIO())

    def test_emit_stamps_sequence(self):
        stream = io.StringIO()
        sink = TelemetrySink(stream=stream)
        sink.emit("iteration", index=1)
        sink.emit("session", converged=True)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [r["seq"] for r in lines] == [1, 2]
        assert lines[0]["kind"] == "iteration"
        assert lines[1]["converged"] is True

    def test_emit_after_close_is_dropped(self):
        stream = io.StringIO()
        sink = TelemetrySink(stream=stream)
        sink.close()
        assert sink.emit("iteration") is None
        assert sink.records == 0

    def test_path_sink_round_trips(self, tmp_path):
        path = tmp_path / "session.jsonl"
        with TelemetrySink(path=path) as sink:
            sink.emit("iteration", index=1, mode="subset")
            sink.emit("iteration", index=2, mode="reuse")
        records = read_telemetry(path)
        assert [r["index"] for r in records] == [1, 2]

    def test_records_serialize_deterministically(self):
        stream = io.StringIO()
        TelemetrySink(stream=stream).emit("iteration", b=1, a=2)
        line = stream.getvalue().strip()
        assert line.index('"a"') < line.index('"b"')


class TestIterationReport:
    def records(self):
        return [
            {
                "kind": "iteration",
                "seq": 1,
                "index": 1,
                "mode": "subset",
                "tuples": 9,
                "assignments": 12,
                "questions_asked": 2,
                "questions_answered": 1,
                "cache_hits": 3,
                "cache_misses": 1,
                "failures": 0,
                "elapsed_s": 0.25,
            },
            {"kind": "session", "seq": 2, "converged": True},
        ]

    def test_rows_filter_to_iterations(self):
        rows = iteration_rows(self.records())
        assert len(rows) == 1
        assert rows[0][0] == 1 and rows[0][1] == "subset"
        assert rows[0][6] == "75.0%"

    def test_zero_lookups_render_na(self):
        record = dict(self.records()[0], cache_hits=0, cache_misses=0)
        assert iteration_rows([record])[0][6] == "n/a"

    def test_render_report(self):
        text = render_iteration_report(self.records(), title="Session")
        assert "subset" in text
        assert "75.0%" in text


class TestSessionTelemetry:
    def build_session(self, telemetry):
        from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
        from repro.assistant.session import RefinementSession
        from repro.assistant.strategies import SequentialStrategy
        from repro.text.corpus import Corpus
        from repro.text.html_parser import parse_html
        from repro.text.span import Span
        from repro.xlog.program import Program

        docs, spans = [], []
        for i in range(4):
            doc = parse_html(
                "tm%d" % i, "<p><b>X%d</b> Price: $%d.00</p>" % (i, 90 + i * 10)
            )
            start = doc.text.index("$") + 1
            spans.append(Span(doc, start, start + 5))
            docs.append(doc)
        corpus = Corpus({"base": docs})
        program = Program.parse(
            """
            rows(x, <t>, <p>) :- base(x), ie(@x, t, p).
            q(t) :- rows(x, t, p), p > 100.
            ie(@x, t, p) :- from(@x, t), from(@x, p), numeric(p) = yes.
            """,
            extensional=["base"],
            query="q",
        )
        return RefinementSession(
            program,
            corpus,
            SimulatedDeveloper(GroundTruth({("ie", "p"): spans}), seed=1),
            strategy=SequentialStrategy(),
            seed=1,
            max_iterations=3,
            telemetry=telemetry,
        )

    def test_session_emits_iterations_and_summary(self, tmp_path):
        path = tmp_path / "session.jsonl"
        with TelemetrySink(path=path) as sink:
            trace = self.build_session(sink).run()
        records = read_telemetry(path)
        iterations = [r for r in records if r["kind"] == "iteration"]
        summaries = [r for r in records if r["kind"] == "session"]
        # one telemetry record per trace record, in order, plus a summary
        assert [r["index"] for r in iterations] == [r.index for r in trace.records]
        assert [r["mode"] for r in iterations] == [r.mode for r in trace.records]
        assert [r["tuples"] for r in iterations] == [r.tuples for r in trace.records]
        assert iterations[-1]["mode"] == "reuse"
        assert len(summaries) == 1
        assert summaries[0]["converged"] == trace.converged
        assert summaries[0]["questions_asked"] == trace.questions_asked
        # per-iteration question counts match the trace
        for telemetry_record, trace_record in zip(iterations, trace.records):
            assert telemetry_record["questions_asked"] == len(trace_record.questions)

    def test_iteration_records_render_as_table(self, tmp_path):
        path = tmp_path / "session.jsonl"
        with TelemetrySink(path=path) as sink:
            self.build_session(sink).run()
        text = render_iteration_report(read_telemetry(path))
        assert "subset" in text and "reuse" in text
