"""WSGI route tests, driven without sockets via the fake client."""

from repro.service import ServiceApp, build_app

from tests.service.conftest import (
    PROGRAM_SOURCE,
    FakeClient,
    doc_payload,
    ingest_pages,
    submit_program,
)

#: a program whose second head is annotated ``?`` — its tuples stream
#: with ``maybe: true``
MAYBE_SOURCE = (
    "q(x, <p>)? :- pages(x), ie(@x, p).\n"
    "ie(@x, p) :- from(@x, p), numeric(p) = yes.\n"
)


class TestPlumbing:
    def test_health(self, client):
        resp = client.get("/health")
        assert resp.code == 200
        assert resp.json["status"] == "ok"

    def test_unknown_route_404(self, client):
        assert client.get("/nope").code == 404

    def test_wrong_method_405(self, client):
        assert client.post("/health").code == 405

    def test_malformed_json_400(self, client):
        import io

        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/programs",
            "CONTENT_LENGTH": "9",
            "wsgi.input": io.BytesIO(b"not json!"),
        }
        captured = {}
        body = b"".join(
            client.app(environ, lambda s, h, e=None: captured.update(status=s))
        )
        assert captured["status"].startswith("400")
        assert b"error" in body

    def test_non_object_body_400(self, client):
        import io
        import json

        raw = json.dumps([1, 2]).encode()
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/programs",
            "CONTENT_LENGTH": str(len(raw)),
            "wsgi.input": io.BytesIO(raw),
        }
        captured = {}
        b"".join(
            client.app(environ, lambda s, h, e=None: captured.update(status=s))
        )
        assert captured["status"].startswith("400")


class TestDocuments:
    def test_ingest_and_corpus(self, client):
        resp = ingest_pages(client, range(3))
        assert resp.code == 201
        assert resp.json == {"table": "pages", "added": 3, "replaced": []}
        info = client.get("/corpus").json
        assert info["tables"] == {"pages": 3}
        assert info["documents"] == 3
        assert info["content_digest"]

    def test_ingest_upsert_reports_replaced(self, client):
        ingest_pages(client, range(2))
        resp = ingest_pages(client, [1, 2])
        assert resp.json["added"] == 1
        assert resp.json["replaced"] == ["d1"]

    def test_ingest_field_validation(self, client):
        assert client.post("/documents", {"documents": []}).code == 400
        assert client.post("/documents", {"table": "pages"}).code == 400
        bad = client.post(
            "/documents",
            {"table": "pages", "documents": [{"html": "<p>x</p>"}]},
        )
        assert bad.code == 400
        assert "doc_id" in bad.json["error"]
        bad = client.post(
            "/documents", {"table": "pages", "documents": [{"doc_id": "d"}]}
        )
        assert bad.code == 400

    def test_remove_document(self, client):
        ingest_pages(client, range(2))
        resp = client.delete("/documents/d0")
        assert resp.code == 200
        assert resp.json["removed"] == ["d0"]
        assert client.get("/corpus").json["documents"] == 1

    def test_remove_unknown_404(self, client):
        assert client.delete("/documents/zzz").code == 404


class TestPrograms:
    def test_submit_then_resubmit(self, client):
        ingest_pages(client, [0])
        first = submit_program(client)
        assert first.code == 201
        assert first.json["resubmitted"] is False
        again = submit_program(client)
        assert again.code == 200
        assert again.json["resubmitted"] is True
        assert again.json["program_id"] == first.json["program_id"]

    def test_defective_program_400(self, client):
        resp = submit_program(client, source="q(x :-", tables=["pages"])
        assert resp.code == 400
        assert resp.json["error"]

    def test_list_and_get_and_drop(self, client):
        ingest_pages(client, [0])
        pid = submit_program(client).json["program_id"]
        listed = client.get("/programs").json["programs"]
        assert [p["program_id"] for p in listed] == [pid]
        assert client.get("/programs/%s" % pid).json["query"] == "q"
        assert client.delete("/programs/%s" % pid).code == 200
        assert client.get("/programs/%s" % pid).code == 404

    def test_run_streams_ndjson(self, client):
        ingest_pages(client, range(2))
        pid = submit_program(client).json["program_id"]
        resp = client.post("/programs/%s/run" % pid)
        assert resp.code == 200
        assert resp.headers["Content-Type"] == "application/x-ndjson"
        lines = resp.ndjson
        assert lines[0]["type"] == "header"
        assert lines[0]["attrs"] == ["x", "p"]
        tuples = [l for l in lines if l["type"] == "tuple"]
        assert len(tuples) == 2
        cell = tuples[0]["cells"]["p"]
        assert cell["assignments"][0]["kind"] == "exact"
        assert lines[-1]["type"] == "summary"
        assert lines[-1]["tuples"] == 2
        assert "partitions_recomputed" in lines[-1]

    def test_maybe_flags_preserved_in_stream(self, client):
        ingest_pages(client, [0])
        pid = submit_program(client, source=MAYBE_SOURCE).json["program_id"]
        lines = client.post("/programs/%s/run" % pid).ndjson
        tuples = [l for l in lines if l["type"] == "tuple"]
        assert tuples and all(t["maybe"] is True for t in tuples)
        assert lines[-1]["maybe"] == len(tuples)

    def test_run_without_tables_409(self, client):
        pid = submit_program(client, tables=["pages"]).json["program_id"]
        assert client.post("/programs/%s/run" % pid).code == 409


class TestMetricsRoute:
    def test_request_counters_via_middleware(self, service):
        client = FakeClient(build_app(service))
        client.get("/health")
        client.post("/documents", {"table": "pages", "documents": [doc_payload(0)]})
        snap = client.get("/metrics").json
        by_name = {m["name"]: m for m in snap["metrics"]}
        requests = by_name["repro.service.requests"]
        labels = {
            (s["labels"]["method"], s["labels"]["status"]): s["value"]
            for s in requests["series"]
        }
        assert labels[("GET", "200")] >= 1
        assert labels[("POST", "201")] == 1

    def test_exec_counters_exposed(self, client, service):
        ingest_pages(client, range(2))
        pid = submit_program(client).json["program_id"]
        client.post("/programs/%s/run" % pid)
        names = {m["name"] for m in client.get("/metrics").json["metrics"]}
        assert any(n.startswith("repro.exec.") for n in names)
