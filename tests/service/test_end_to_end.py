"""The resident service's acceptance tests.

The contract this file pins down (and the CI smoke job re-checks over
a real socket):

* after ingesting k documents, re-running the same program recomputes
  exactly the k affected partitions — zero when nothing changed;
* streamed results are byte-identical to a cold one-shot batch run of
  the same program over the same documents;
* ``/metrics`` exposes the ``repro.exec.*`` reuse counters;
* a restarted service warm-starts from its ``--result-cache``
  directory.
"""

import json
import threading
import urllib.request

import pytest

from repro.ctables.export import table_to_dicts
from repro.processor.context import ExecConfig
from repro.processor.executor import IFlexEngine
from repro.processor.library import make_similar
from repro.service import (
    ExtractionService,
    ServiceApp,
    build_app,
    make_service_server,
)
from repro.text.corpus import Corpus
from repro.xlog.program import PFunction, Program

from tests.service.conftest import (
    PROGRAM_SOURCE,
    FakeClient,
    doc_payload,
    ingest_pages,
    page_doc,
    submit_program,
)


def service_client(tmp_path=None):
    config = ExecConfig(
        result_cache=str(tmp_path / "rc") if tmp_path is not None else None
    )
    service = ExtractionService(config=config)
    return service, FakeClient(ServiceApp(service))


def run_lines(client, pid):
    resp = client.post("/programs/%s/run" % pid)
    assert resp.code == 200
    return resp.ndjson


class TestDeltaContract:
    def test_ingest_k_recomputes_exactly_k(self, tmp_path):
        service, client = service_client(tmp_path)
        ingest_pages(client, range(4))
        pid = submit_program(client).json["program_id"]

        cold = run_lines(client, pid)[-1]
        assert cold["partitions_recomputed"] == 4
        assert cold["partitions_reused"] == 0

        # unchanged: zero partitions recomputed
        warm = run_lines(client, pid)[-1]
        assert warm["partitions_recomputed"] == 0

        # +2 documents: exactly the 2 new partitions recompute
        ingest_pages(client, [4, 5])
        delta = run_lines(client, pid)[-1]
        assert delta["partitions_recomputed"] == 2
        assert delta["partitions_reused"] == 4
        assert delta["tuples"] == 6

        # editing 1 document in place: exactly its partition recomputes
        client.post(
            "/documents",
            {
                "table": "pages",
                "documents": [
                    {
                        "doc_id": "d2",
                        "html": "<html><body>item 2 recosted 999 usd</body></html>",
                    }
                ],
            },
        )
        edited = run_lines(client, pid)[-1]
        assert edited["partitions_recomputed"] == 1
        assert edited["partitions_reused"] == 5

    def test_resubmitting_program_keeps_warmth(self, tmp_path):
        service, client = service_client(tmp_path)
        ingest_pages(client, range(3))
        pid = submit_program(client).json["program_id"]
        run_lines(client, pid)
        again = submit_program(client)
        assert again.json["resubmitted"] is True
        warm = run_lines(client, again.json["program_id"])[-1]
        assert warm["partitions_recomputed"] == 0

    def test_stream_identical_to_cold_batch_run(self, tmp_path):
        """The incremental warm path must not change a single byte of
        the exported result relative to a cold batch execution."""
        service, client = service_client(tmp_path)
        ingest_pages(client, range(4))
        pid = submit_program(client).json["program_id"]
        run_lines(client, pid)
        ingest_pages(client, [4, 5])
        lines = run_lines(client, pid)  # warm: 4 reused + 2 recomputed

        batch_corpus = Corpus({"pages": [page_doc(i) for i in range(6)]})
        similar = make_similar(0.6)
        program = Program.parse(
            PROGRAM_SOURCE,
            extensional=["pages"],
            p_functions={
                "similar": PFunction("similar", similar),
                "approxMatch": PFunction("approxMatch", similar),
            },
            query="q",
        )
        batch = IFlexEngine(program, batch_corpus, config=ExecConfig()).execute()

        expected = table_to_dicts(batch.query_table)
        streamed = {
            "attrs": lines[0]["attrs"],
            "tuples": [
                {"maybe": l["maybe"], "cells": l["cells"]}
                for l in lines
                if l["type"] == "tuple"
            ],
        }
        assert json.dumps(streamed, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_metrics_expose_reuse_counters(self, tmp_path):
        service, client = service_client(tmp_path)
        ingest_pages(client, range(3))
        pid = submit_program(client).json["program_id"]
        run_lines(client, pid)
        ingest_pages(client, [3])
        run_lines(client, pid)
        by_name = {
            m["name"]: m for m in client.get("/metrics").json["metrics"]
        }
        assert by_name["repro.exec.partitions_reused"]["series"][0]["value"] == 3
        assert (
            by_name["repro.exec.partitions_recomputed"]["series"][0]["value"]
            == 4  # 3 cold + 1 delta
        )

    def test_restart_warm_starts_from_result_cache(self, tmp_path):
        service, client = service_client(tmp_path)
        ingest_pages(client, range(3))
        pid = submit_program(client).json["program_id"]
        run_lines(client, pid)

        # a brand-new process state over the same cache directory
        service2, client2 = service_client(tmp_path)
        ingest_pages(client2, range(3))
        pid2 = submit_program(client2).json["program_id"]
        assert pid2 == pid
        warm = run_lines(client2, pid2)[-1]
        assert warm["result_cache_hits"] == 3
        assert warm["tuples"] == 3


class TestOverSocket:
    @pytest.mark.timeout(60)
    def test_real_server_round_trip(self, tmp_path):
        service = ExtractionService(
            config=ExecConfig(result_cache=str(tmp_path / "rc"))
        )
        app = build_app(service, rate_limit=500)
        server = make_service_server("127.0.0.1", 0, app)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = "http://127.0.0.1:%d" % port

        def request(method, path, body=None):
            data = json.dumps(body).encode() if body is not None else None
            req = urllib.request.Request(
                base + path,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req) as resp:
                return resp.status, resp.read().decode()

        try:
            status, _ = request("GET", "/health")
            assert status == 200
            request(
                "POST",
                "/documents",
                {"table": "pages", "documents": [doc_payload(i) for i in range(2)]},
            )
            status, out = request(
                "POST", "/programs", {"source": PROGRAM_SOURCE, "query": "q"}
            )
            assert status == 201
            pid = json.loads(out)["program_id"]
            status, out = request("POST", "/programs/%s/run" % pid)
            lines = [json.loads(l) for l in out.splitlines()]
            assert lines[-1]["tuples"] == 2
            assert lines[-1]["partitions_recomputed"] == 2
            status, out = request("POST", "/programs/%s/run" % pid)
            assert json.loads(out.splitlines()[-1])["partitions_recomputed"] == 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(10)
