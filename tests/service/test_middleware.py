"""Token bucket and middleware tests (fake clock, fake environ)."""

import io

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.service import (
    RateLimitMiddleware,
    RequestLogMiddleware,
    TokenBucket,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def ok_app(environ, start_response):
    start_response("200 OK", [("Content-Type", "application/json")])
    return [b"{}"]


def call(app, path="/x", method="GET"):
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": "0",
        "wsgi.input": io.BytesIO(b""),
    }
    captured = {}

    def start_response(status, headers, exc_info=None):
        captured["status"] = status
        captured["headers"] = dict(headers)

    body = b"".join(app(environ, start_response))
    return captured["status"], captured["headers"], body


class TestTokenBucket:
    def test_burst_then_exhausted(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1, capacity=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2, capacity=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_capacity_caps_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100, capacity=2, clock=clock)
        clock.advance(60)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2, capacity=1, clock=clock)
        bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, capacity=0)


class TestRateLimit:
    def test_throttles_past_burst(self):
        clock = FakeClock()
        app = RateLimitMiddleware(
            ok_app, TokenBucket(rate=1, capacity=2, clock=clock)
        )
        assert call(app)[0].startswith("200")
        assert call(app)[0].startswith("200")
        status, headers, body = call(app)
        assert status.startswith("429")
        assert int(headers["Retry-After"]) >= 1
        assert b"rate limit" in body

    def test_recovers_after_refill(self):
        clock = FakeClock()
        app = RateLimitMiddleware(
            ok_app, TokenBucket(rate=1, capacity=1, clock=clock)
        )
        call(app)
        assert call(app)[0].startswith("429")
        clock.advance(1.0)
        assert call(app)[0].startswith("200")

    def test_health_and_metrics_exempt(self):
        clock = FakeClock()
        app = RateLimitMiddleware(
            ok_app, TokenBucket(rate=1, capacity=1, clock=clock)
        )
        call(app)  # drain the bucket
        for _ in range(5):
            assert call(app, path="/health")[0].startswith("200")
            assert call(app, path="/metrics")[0].startswith("200")
        assert call(app, path="/programs")[0].startswith("429")


class TestRequestLog:
    def test_counts_by_method_and_status(self):
        metrics = MetricsRegistry()
        app = RequestLogMiddleware(ok_app, metrics=metrics)
        call(app)
        call(app)
        call(app, method="POST")
        counter = metrics.counter("repro.service.requests")
        assert counter.value(method="GET", status="200") == 2
        assert counter.value(method="POST", status="200") == 1

    def test_counts_throttled_requests(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        app = RequestLogMiddleware(
            RateLimitMiddleware(
                ok_app, TokenBucket(rate=1, capacity=1, clock=clock)
            ),
            metrics=metrics,
        )
        call(app)
        call(app)
        assert (
            metrics.counter("repro.service.requests").value(
                method="GET", status="429"
            )
            == 1
        )
        assert metrics.counter("repro.service.rate_limited").value() == 1

    def test_exceptions_counted_and_reraised(self):
        metrics = MetricsRegistry()

        def boom(environ, start_response):
            raise RuntimeError("kaput")

        app = RequestLogMiddleware(boom, metrics=metrics)
        with pytest.raises(RuntimeError):
            call(app)
        assert (
            metrics.counter("repro.service.requests").value(
                method="GET", status="500"
            )
            == 1
        )
