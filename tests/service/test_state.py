"""ExtractionService core: hosting, running, ingesting, invalidating."""

import pytest

from repro.processor.context import ExecConfig
from repro.service import ExtractionService, ServiceError
from repro.text.html_parser import parse_html

from tests.service.conftest import PROGRAM_SOURCE, page_doc


def build_service(**kwargs):
    return ExtractionService(**kwargs)


class TestSubmit:
    def test_submit_parses_and_hosts(self):
        service = build_service()
        service.ingest("pages", [page_doc(0)])
        host, resubmitted = service.submit_program(PROGRAM_SOURCE, query="q")
        assert not resubmitted
        assert host.program.query == "q"
        assert service.programs[host.program_id] is host

    def test_resubmit_returns_same_host(self):
        service = build_service()
        service.ingest("pages", [page_doc(0)])
        first, _ = service.submit_program(PROGRAM_SOURCE, query="q")
        second, resubmitted = service.submit_program(PROGRAM_SOURCE, query="q")
        assert resubmitted
        assert second is first

    def test_empty_source_rejected(self):
        with pytest.raises(ServiceError) as err:
            build_service().submit_program("   ")
        assert err.value.status == 400

    def test_unparseable_source_rejected(self):
        service = build_service()
        with pytest.raises(ServiceError) as err:
            service.submit_program("q(x :- nope", tables=["pages"])
        assert err.value.status == 400

    def test_tables_declarable_before_ingest(self):
        service = build_service()
        host, _ = service.submit_program(
            PROGRAM_SOURCE, query="q", tables=["pages"]
        )
        assert host.tables == ("pages",)

    def test_unknown_program_is_404(self):
        with pytest.raises(ServiceError) as err:
            build_service().get_program("zzz")
        assert err.value.status == 404

    def test_drop_program(self):
        service = build_service()
        host, _ = service.submit_program(
            PROGRAM_SOURCE, query="q", tables=["pages"]
        )
        service.drop_program(host.program_id)
        with pytest.raises(ServiceError):
            service.get_program(host.program_id)


class TestRun:
    def test_run_without_tables_conflicts(self):
        service = build_service()
        host, _ = service.submit_program(
            PROGRAM_SOURCE, query="q", tables=["pages"]
        )
        with pytest.raises(ServiceError) as err:
            service.run_program(host.program_id)
        assert err.value.status == 409

    def test_run_extracts(self):
        service = build_service()
        service.ingest("pages", [page_doc(i) for i in range(3)])
        host, _ = service.submit_program(PROGRAM_SOURCE, query="q")
        result = service.run_program(host.program_id)
        assert result.tuple_count == 3
        assert host.runs == 1
        assert host.last_summary["tuples"] == 3


class TestIngest:
    def test_ingest_validates(self):
        service = build_service()
        with pytest.raises(ServiceError):
            service.ingest("", [page_doc(0)])
        with pytest.raises(ServiceError):
            service.ingest("pages", [])

    def test_duplicate_within_batch_rejected(self):
        service = build_service()
        with pytest.raises(ServiceError):
            service.ingest("pages", [page_doc(0), page_doc(0)])

    def test_upsert_counts_replacements(self):
        service = build_service()
        added, replaced = service.ingest("pages", [page_doc(0), page_doc(1)])
        assert (added, replaced) == (2, [])
        added, replaced = service.ingest("pages", [page_doc(1), page_doc(2)])
        assert added == 1
        assert replaced == ["d1"]

    def test_edit_invalidates_resident_results(self):
        """The stale-cache regression: an in-place edit (same doc_id,
        new content) must change what a resident engine extracts."""
        service = build_service()
        service.ingest("pages", [page_doc(0)])
        host, _ = service.submit_program(PROGRAM_SOURCE, query="q")
        before = service.run_program(host.program_id)
        assert "100" in {
            a.value.text
            for t in before.query_table
            for a in t.cells[1].assignments
        }
        edited = parse_html(
            "d0", "<html><body>item 0 now costs 777 usd</body></html>"
        )
        service.ingest("pages", [edited])
        after = service.run_program(host.program_id)
        texts = {
            a.value.text
            for t in after.query_table
            for a in t.cells[1].assignments
        }
        assert "777" in texts
        assert "100" not in texts

    def test_remove_missing_is_404(self):
        service = build_service()
        with pytest.raises(ServiceError) as err:
            service.remove(["nope"])
        assert err.value.status == 404

    def test_remove_shrinks_results(self):
        service = build_service()
        service.ingest("pages", [page_doc(i) for i in range(3)])
        host, _ = service.submit_program(PROGRAM_SOURCE, query="q")
        assert service.run_program(host.program_id).tuple_count == 3
        service.remove(["d1"])
        assert service.run_program(host.program_id).tuple_count == 2


class TestSharedStores:
    def test_engines_share_service_stores(self):
        service = build_service()
        service.ingest("pages", [page_doc(0)])
        a, _ = service.submit_program(PROGRAM_SOURCE, query="q")
        b, _ = service.submit_program(
            "r(x, <p>) :- pages(x), ie(@x, p).\n"
            "ie(@x, p) :- from(@x, p), numeric(p) = yes.\n",
            query="r",
        )
        assert a.engine.index_store is service.index_store
        assert b.engine.index_store is service.index_store
        assert a.engine.eval_cache is service.eval_cache

    def test_result_store_shared_via_config(self, tmp_path):
        config = ExecConfig(result_cache=str(tmp_path / "rc"))
        service = build_service(config=config)
        service.ingest("pages", [page_doc(0)])
        host, _ = service.submit_program(PROGRAM_SOURCE, query="q")
        assert host.engine.result_store is service.result_store

    def test_partition_docs_defaulted(self):
        assert build_service().config.partition_docs == 1

    def test_metrics_counters_tick(self):
        service = build_service()
        service.ingest("pages", [page_doc(0)])
        host, _ = service.submit_program(PROGRAM_SOURCE, query="q")
        service.run_program(host.program_id)
        snap = service.metrics_snapshot()
        names = {m["name"] for m in snap["metrics"]}
        assert "repro.service.documents_ingested" in names
        assert "repro.service.programs_submitted" in names
        assert "repro.service.executions" in names
