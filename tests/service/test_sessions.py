"""Refinement sessions over the service: queue bridge, lifecycle, HTTP."""

import time

import pytest

from tests.service.conftest import ingest_pages, submit_program

#: generous wall-clock bound for a background session to finish
DEADLINE = 30.0


def wait_for(predicate, timeout=DEADLINE):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def start_session(client, **extra):
    ingest_pages(client, range(3))
    pid = submit_program(client).json["program_id"]
    body = {"program_id": pid, "max_iterations": 2}
    body.update(extra)
    resp = client.post("/sessions", body)
    assert resp.code == 201
    return resp.json["session_id"]


class TestLifecycle:
    def test_unknown_program_404(self, client):
        assert client.post("/sessions", {"program_id": "zzz"}).code == 404

    def test_unknown_session_404(self, client):
        assert client.get("/sessions/s99").code == 404

    def test_session_without_tables_409(self, client):
        pid = submit_program(client, tables=["pages"]).json["program_id"]
        assert client.post("/sessions", {"program_id": pid}).code == 409

    def test_timeout_developer_runs_unattended(self, client, service):
        """With answer_timeout set, every question auto-answers IDK and
        the session finishes without any client interaction."""
        sid = start_session(client, answer_timeout=0.01)
        wrapped = service.sessions.get(sid)
        assert wrapped.wait(DEADLINE)
        status = client.get("/sessions/%s" % sid).json
        assert status["state"] == "finished"
        assert status["questions_answered"] == 0
        assert status["iterations"] >= 1
        assert status["tuples"] == 3
        assert "refined_source" in status

    def test_answers_applied_as_constraints(self, client, service):
        sid = start_session(client)
        assert wait_for(
            lambda: client.get("/sessions/%s" % sid).json["pending_question"]
        )
        pending = client.get("/sessions/%s" % sid).json["pending_question"]
        assert {"predicate", "attribute", "feature", "text"} <= set(pending)
        # answer everything the session asks until it finishes
        wrapped = service.sessions.get(sid)
        while not wrapped.wait(0.05):
            status = client.get("/sessions/%s" % sid).json
            if status["pending_question"]:
                resp = client.post("/sessions/%s/answer" % sid, {"answer": None})
                assert resp.code == 200
        status = client.get("/sessions/%s" % sid).json
        assert status["state"] == "finished"
        assert status["questions_seen"] >= 1

    def test_results_stream_after_finish(self, client, service):
        sid = start_session(client, answer_timeout=0.01)
        assert client.get("/sessions/%s/results" % sid).code == 409
        service.sessions.get(sid).wait(DEADLINE)
        resp = client.get("/sessions/%s/results" % sid)
        assert resp.code == 200
        lines = resp.ndjson
        assert lines[0]["type"] == "header"
        assert lines[0]["session_id"] == sid
        assert lines[-1]["type"] == "summary"

    def test_cancel_while_waiting(self, client, service):
        sid = start_session(client)
        assert wait_for(
            lambda: client.get("/sessions/%s" % sid).json["pending_question"]
        )
        assert client.delete("/sessions/%s" % sid).code == 200
        assert wait_for(
            lambda: client.get("/sessions/%s" % sid).json["state"] == "cancelled"
        )

    def test_answer_after_finish_409(self, client, service):
        sid = start_session(client, answer_timeout=0.01)
        service.sessions.get(sid).wait(DEADLINE)
        resp = client.post("/sessions/%s/answer" % sid, {"answer": "yes"})
        assert resp.code == 409

    def test_sessions_listed(self, client, service):
        sid = start_session(client, answer_timeout=0.01)
        listed = client.get("/sessions").json["sessions"]
        assert [s["session_id"] for s in listed] == [sid]
        service.sessions.get(sid).wait(DEADLINE)


class TestSnapshotIsolation:
    def test_ingest_during_session_does_not_disturb_it(self, client, service):
        """The session runs over a corpus snapshot: documents ingested
        after creation do not appear in its final result."""
        sid = start_session(client, answer_timeout=0.01)
        ingest_pages(client, [7, 8, 9])
        service.sessions.get(sid).wait(DEADLINE)
        status = client.get("/sessions/%s" % sid).json
        assert status["state"] == "finished"
        assert status["tuples"] == 3  # the snapshot's three documents
