"""Service-test fixtures: an in-process WSGI client (no sockets).

``FakeClient`` drives any WSGI app with a synthetic environ and decodes
responses — JSON bodies to dicts, NDJSON streams to lists of dicts —
so route tests exercise the exact code the real server runs, minus the
socket.
"""

import io
import json

import pytest

from repro.service import ExtractionService, ServiceApp
from repro.text.html_parser import parse_html

#: a tiny numeric-extraction program over one ``pages`` table
PROGRAM_SOURCE = (
    "q(x, <p>) :- pages(x), ie(@x, p).\n"
    "ie(@x, p) :- from(@x, p), numeric(p) = yes.\n"
)


def page_html(i):
    return "<html><body>item %d costs %d usd</body></html>" % (i, 100 + i)


def page_doc(i):
    return parse_html("d%d" % i, page_html(i))


def doc_payload(i):
    return {"doc_id": "d%d" % i, "html": page_html(i)}


class Response:
    def __init__(self, status, headers, body):
        self.code = int(status.split(" ", 1)[0])
        self.headers = dict(headers)
        self.body = body

    @property
    def json(self):
        return json.loads(self.body)

    @property
    def ndjson(self):
        return [json.loads(line) for line in self.body.decode().splitlines()]


class FakeClient:
    """Call a WSGI app directly; returns :class:`Response`."""

    def __init__(self, app):
        self.app = app

    def request(self, method, path, body=None):
        raw = json.dumps(body).encode("utf-8") if body is not None else b""
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "CONTENT_LENGTH": str(len(raw)),
            "wsgi.input": io.BytesIO(raw),
        }
        captured = {}

        def start_response(status, headers, exc_info=None):
            captured["status"] = status
            captured["headers"] = headers

        chunks = b"".join(self.app(environ, start_response))
        return Response(captured["status"], captured["headers"], chunks)

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None):
        return self.request("POST", path, body)

    def delete(self, path):
        return self.request("DELETE", path)


@pytest.fixture
def service():
    return ExtractionService()


@pytest.fixture
def client(service):
    return FakeClient(ServiceApp(service))


def ingest_pages(client, indices, table="pages"):
    return client.post(
        "/documents",
        {"table": table, "documents": [doc_payload(i) for i in indices]},
    )


def submit_program(client, source=PROGRAM_SOURCE, query="q", **extra):
    body = {"source": source, "query": query}
    body.update(extra)
    return client.post("/programs", body)
