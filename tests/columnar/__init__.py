"""Columnar storage tier tests."""
