"""Artifact-bundle persistence: round trips, corruption, staleness.

The content-addressed cache is an accelerator with a hard contract:
whatever is on disk, :func:`load_artifacts` either returns a bundle
whose columns are byte-identical to a fresh build, or ``None`` so the
store rebuilds — never an exception, never wrong columns.
"""

import json
import os

import numpy as np
import pytest

from repro.columnar import (
    ColumnarStore,
    build_artifacts,
    build_doc_columns,
    corpus_digest,
    load_artifacts,
    save_artifacts,
)
from repro.columnar.arrays import DocColumns
from repro.columnar.store import _PROCESS_BUNDLES, attach_process_artifacts
from repro.text import parse_html


@pytest.fixture(autouse=True)
def _clean_process_bundles():
    """The process-wide bundle table is module state; isolate tests."""
    _PROCESS_BUNDLES.clear()
    yield
    _PROCESS_BUNDLES.clear()


@pytest.fixture
def docs():
    return [
        parse_html(
            "d1",
            "<p><b>Widget Alpha</b> Price: <i>$120.00</i> in 1999</p>",
        ),
        parse_html("d2", "<title>Plain</title><p>no markup here 42</p>"),
        parse_html("d3", ""),  # empty document: all columns empty
    ]


def _column_images(bundle_or_store, docs):
    out = {}
    for doc in docs:
        if isinstance(bundle_or_store, ColumnarStore):
            columns = bundle_or_store.columns_for(doc)
        else:
            columns = bundle_or_store.columns_for(doc.doc_id)
        out[doc.doc_id] = [
            (name, array.tolist()) for name, array in columns.columns()
        ]
    return out


class TestRoundTrip:
    def test_save_load_mmap_byte_identical(self, docs, tmp_path):
        built = build_artifacts(docs)
        save_artifacts(built, str(tmp_path))
        loaded = load_artifacts(str(tmp_path), built.digest)
        assert loaded is not None
        assert loaded.mapped  # np.memmap, not an in-memory copy
        assert _column_images(loaded, docs) == _column_images(built, docs)

    def test_doc_columns_named_round_trip(self, docs):
        for doc in docs:
            columns = build_doc_columns(doc)
            named = dict(columns.columns())
            rebuilt = DocColumns.from_columns(doc.doc_id, named)
            assert [(n, a.tolist()) for n, a in rebuilt.columns()] == [
                (n, a.tolist()) for n, a in columns.columns()
            ]

    def test_digest_is_content_addressed(self, docs):
        same = [
            parse_html(
                "d1",
                "<p><b>Widget Alpha</b> Price: <i>$120.00</i> in 1999</p>",
            ),
            parse_html("d2", "<title>Plain</title><p>no markup here 42</p>"),
            parse_html("d3", ""),
        ]
        # reparsing identical content gives the identical digest ...
        assert corpus_digest(docs) == corpus_digest(same)
        # ... and any content change gives a different one
        changed = docs[:-1] + [parse_html("d3", "now nonempty")]
        assert corpus_digest(changed) != corpus_digest(docs)

    def test_missing_bundle_loads_none(self, tmp_path):
        assert load_artifacts(str(tmp_path), "0" * 24) is None


class TestCorruptionAndStaleness:
    def _persist(self, docs, tmp_path):
        built = build_artifacts(docs)
        save_artifacts(built, str(tmp_path))
        return built

    def test_truncated_data_file_rebuilds(self, docs, tmp_path):
        built = self._persist(docs, tmp_path)
        data_path = tmp_path / ("%s.cols.npy" % built.digest)
        data_path.write_bytes(data_path.read_bytes()[:32])
        assert load_artifacts(str(tmp_path), built.digest) is None

    def test_garbage_data_file_rebuilds(self, docs, tmp_path):
        built = self._persist(docs, tmp_path)
        (tmp_path / ("%s.cols.npy" % built.digest)).write_bytes(b"not numpy")
        assert load_artifacts(str(tmp_path), built.digest) is None

    def test_digest_mismatch_is_stale(self, docs, tmp_path):
        built = self._persist(docs, tmp_path)
        meta_path = tmp_path / ("%s.meta.json" % built.digest)
        meta = json.loads(meta_path.read_text())
        meta["digest"] = "f" * 24
        meta_path.write_text(json.dumps(meta))
        assert load_artifacts(str(tmp_path), built.digest) is None

    def test_layout_version_mismatch_is_stale(self, docs, tmp_path):
        built = self._persist(docs, tmp_path)
        meta_path = tmp_path / ("%s.meta.json" % built.digest)
        meta = json.loads(meta_path.read_text())
        meta["layout_version"] = meta["layout_version"] + 1
        meta_path.write_text(json.dumps(meta))
        assert load_artifacts(str(tmp_path), built.digest) is None

    def test_layout_exceeding_buffer_rejected(self, docs, tmp_path):
        built = self._persist(docs, tmp_path)
        meta_path = tmp_path / ("%s.meta.json" % built.digest)
        meta = json.loads(meta_path.read_text())
        name, offset, _ = meta["layout"]["d1"][0]
        meta["layout"]["d1"][0] = [name, offset, meta["total"] + 1]
        meta_path.write_text(json.dumps(meta))
        assert load_artifacts(str(tmp_path), built.digest) is None

    def test_store_rebuilds_over_corrupt_cache(self, docs, tmp_path):
        built = self._persist(docs, tmp_path)
        (tmp_path / ("%s.cols.npy" % built.digest)).write_bytes(b"garbage")
        store = ColumnarStore(cache_dir=str(tmp_path))
        bundle = store.prepare(docs)
        # rebuilt from the documents, re-persisted, served through mmap
        assert store.built == len(docs)
        assert bundle.mapped
        assert _column_images(store, docs) == _column_images(built, docs)
        assert load_artifacts(str(tmp_path), built.digest) is not None


class TestStoreLifecycle:
    def test_cold_build_then_warm_map(self, docs, tmp_path):
        cold = ColumnarStore(cache_dir=str(tmp_path))
        cold_bundle = cold.prepare(docs)
        assert cold.built == len(docs) and cold_bundle.mapped
        warm = ColumnarStore(cache_dir=str(tmp_path))
        warm_bundle = warm.prepare(docs)
        assert warm.built == 0  # nothing rebuilt
        assert warm_bundle.mapped
        assert _column_images(warm, docs) == _column_images(cold, docs)

    def test_cacheless_store_builds_lazily(self, docs):
        store = ColumnarStore()
        assert store.built == 0
        store.columns_for(docs[0])
        assert store.built == 1 and len(store) == 1

    def test_artifact_refs_only_for_persisted_bundles(self, docs, tmp_path):
        in_memory = ColumnarStore()
        in_memory.attach(build_artifacts(docs))
        assert in_memory.artifact_refs() == []
        persisted = ColumnarStore(cache_dir=str(tmp_path))
        bundle = persisted.prepare(docs)
        refs = persisted.artifact_refs()
        assert refs == [(bundle.path, bundle.digest)]
        assert os.path.exists(refs[0][0])

    def test_attach_process_artifacts_serves_fresh_stores(self, docs, tmp_path):
        built = build_artifacts(docs)
        save_artifacts(built, str(tmp_path))
        attached = attach_process_artifacts([(built.path, built.digest)])
        assert len(attached) == 1 and attached[0].mapped
        fresh = ColumnarStore()  # no cache dir, nothing attached locally
        assert _column_images(fresh, docs) == _column_images(built, docs)
        assert fresh.built == 0  # every column came from the mapped bundle

    def test_attach_process_artifacts_skips_bad_refs(self, tmp_path):
        assert attach_process_artifacts(
            [(str(tmp_path / "missing.cols.npy"), "0" * 24)]
        ) == []

    def test_bundle_views_are_views_not_copies(self, docs, tmp_path):
        built = build_artifacts(docs)
        save_artifacts(built, str(tmp_path))
        loaded = load_artifacts(str(tmp_path), built.digest)
        columns = loaded.columns_for("d1")
        assert isinstance(columns.token_starts, np.ndarray)
        assert columns.token_starts.base is not None  # a view into the map
