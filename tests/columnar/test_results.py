"""Result-store persistence: round trips, corruption, pruning.

Mirrors ``tests/columnar/test_store.py``: whatever is on disk,
:func:`load_result` either returns a table repr-identical to the one
saved, or ``None`` so the executor recomputes — never an exception,
never a wrong table.  :func:`prune_cache_dir` keeps shared artifact
directories bounded without ever touching unknown files.
"""

import json
import os

import numpy as np
import pytest

from repro.columnar import (
    ResultStore,
    load_result,
    prune_cache_dir,
    save_result,
)
from repro.ctables import Cell, CompactTable, CompactTuple, Contain, Exact
from repro.text import parse_html
from repro.text.span import Span

KEY = "a" * 24


@pytest.fixture
def docs():
    return {
        d.doc_id: d
        for d in (
            parse_html("d1", "<p><b>Widget Alpha</b> $120.00</p>"),
            parse_html("d2", "<p>plain 42</p>"),
        )
    }


@pytest.fixture
def table(docs):
    d1, d2 = docs["d1"], docs["d2"]
    out = CompactTable(("x", "price"))
    out.add(
        CompactTuple(
            [Cell([Exact(Span(d1, 0, 10))]), Cell([Contain(Span(d1, 3, 9))])]
        )
    )
    out.add(
        CompactTuple(
            [Cell([Exact(Span(d2, 0, 5))]), Cell([Exact(42)])], maybe=True
        )
    )
    return out


def _image(table):
    return (table.attrs, [repr(t) for t in table.tuples])


class TestRoundTrip:
    def test_save_load_identical(self, table, docs, tmp_path):
        save_result(table, str(tmp_path), KEY)
        loaded = load_result(str(tmp_path), KEY, docs)
        assert loaded is not None
        assert _image(loaded) == _image(table)

    def test_missing_entry_loads_none(self, docs, tmp_path):
        assert load_result(str(tmp_path), KEY, docs) is None

    def test_no_tmp_litter_after_save(self, table, tmp_path):
        save_result(table, str(tmp_path), KEY)
        assert not [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")]


class TestCorruptionAndStaleness:
    def _persist(self, table, tmp_path):
        save_result(table, str(tmp_path), KEY)
        return (
            tmp_path / ("%s.res.npy" % KEY),
            tmp_path / ("%s.res.meta.json" % KEY),
        )

    def test_truncated_data_recomputes(self, table, docs, tmp_path):
        data_path, _ = self._persist(table, tmp_path)
        data_path.write_bytes(data_path.read_bytes()[:16])
        assert load_result(str(tmp_path), KEY, docs) is None

    def test_garbage_data_recomputes(self, table, docs, tmp_path):
        data_path, _ = self._persist(table, tmp_path)
        data_path.write_bytes(b"not numpy")
        assert load_result(str(tmp_path), KEY, docs) is None

    def test_key_mismatch_is_stale(self, table, docs, tmp_path):
        _, meta_path = self._persist(table, tmp_path)
        meta = json.loads(meta_path.read_text())
        meta["key"] = "f" * 24
        meta_path.write_text(json.dumps(meta))
        assert load_result(str(tmp_path), KEY, docs) is None

    def test_codec_version_mismatch_is_stale(self, table, docs, tmp_path):
        _, meta_path = self._persist(table, tmp_path)
        meta = json.loads(meta_path.read_text())
        meta["codec_version"] += 1
        meta_path.write_text(json.dumps(meta))
        assert load_result(str(tmp_path), KEY, docs) is None

    def test_total_mismatch_is_stale(self, table, docs, tmp_path):
        _, meta_path = self._persist(table, tmp_path)
        meta = json.loads(meta_path.read_text())
        meta["total"] += 1
        meta_path.write_text(json.dumps(meta))
        assert load_result(str(tmp_path), KEY, docs) is None

    def test_changed_document_recomputes(self, table, tmp_path):
        """Documents the decode target no longer knows yield None."""
        self._persist(table, tmp_path)
        shrunk = {"d1": parse_html("d1", "x"), "d2": parse_html("d2", "y")}
        # spans in the saved table exceed the shrunken documents
        assert load_result(str(tmp_path), KEY, shrunk) is None

    def test_store_overwrites_corrupt_entry(self, table, docs, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save(KEY, table)
        data_path = tmp_path / ("%s.res.npy" % KEY)
        data_path.write_bytes(b"garbage")
        assert store.load(KEY, docs) is None
        assert store.load_failures == 1
        # the failed load marks the key for rewrite: save() replaces the
        # corrupt files instead of skipping because they exist
        store.save(KEY, table)
        loaded = store.load(KEY, docs)
        assert loaded is not None and _image(loaded) == _image(table)


class TestStoreLifecycle:
    def test_save_is_idempotent(self, table, docs, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save(KEY, table)
        store.save(KEY, table)
        assert store.saved == 1 and store.skipped == 1
        assert _image(store.load(KEY, docs)) == _image(table)

    def test_unencodable_table_is_skipped_not_fatal(self, tmp_path):
        bad = CompactTable(("v",))
        bad.add(CompactTuple([Cell([Exact(object())])]))
        store = ResultStore(str(tmp_path))
        store.save(KEY, bad)  # logs and moves on
        assert store.saved == 0
        assert os.listdir(str(tmp_path)) == []

    def test_from_config(self, tmp_path):
        from repro.processor.context import ExecConfig

        assert ResultStore.from_config(None) is None
        assert ResultStore.from_config(ExecConfig()) is None
        disabled = ExecConfig(result_cache=str(tmp_path), incremental=False)
        assert ResultStore.from_config(disabled) is None
        store = ResultStore.from_config(ExecConfig(result_cache=str(tmp_path)))
        assert isinstance(store, ResultStore)
        assert store.cache_dir == str(tmp_path)
        # an existing store instance passes through (session sharing)
        assert ResultStore.from_config(ExecConfig(result_cache=store)) is store


class TestPruning:
    def _fill(self, tmp_path, table, count):
        for i in range(count):
            key = "%024x" % i
            save_result(table, str(tmp_path), key)
            entry = tmp_path / ("%s.res.npy" % key)
            stamp = 1_000_000 + i  # deterministic LRU order
            os.utime(entry, (stamp, stamp))
            os.utime(tmp_path / ("%s.res.meta.json" % key), (stamp, stamp))

    def test_count_cap_evicts_oldest(self, table, docs, tmp_path):
        self._fill(tmp_path, table, 5)
        assert prune_cache_dir(str(tmp_path), max_entries=2) == 3
        survivors = {
            name.split(".")[0]
            for name in os.listdir(str(tmp_path))
        }
        assert survivors == {"%024x" % 3, "%024x" % 4}  # the newest two
        for key in survivors:
            assert load_result(str(tmp_path), key, docs) is not None

    def test_byte_cap_evicts(self, table, tmp_path):
        self._fill(tmp_path, table, 4)
        assert prune_cache_dir(str(tmp_path), max_bytes=1) == 4
        assert os.listdir(str(tmp_path)) == []

    def test_no_caps_is_a_noop(self, table, tmp_path):
        self._fill(tmp_path, table, 3)
        assert prune_cache_dir(str(tmp_path)) == 0
        assert len(os.listdir(str(tmp_path))) == 6

    def test_keep_set_is_never_evicted(self, table, tmp_path):
        self._fill(tmp_path, table, 4)
        oldest = "%024x" % 0
        prune_cache_dir(str(tmp_path), max_entries=1, keep={oldest})
        assert os.path.exists(str(tmp_path / ("%s.res.npy" % oldest)))

    def test_unknown_files_untouched(self, table, tmp_path):
        self._fill(tmp_path, table, 3)
        stray = tmp_path / "notes.txt"
        stray.write_text("keep me")
        partial = tmp_path / "half.json.tmp"
        partial.write_text("{}")
        prune_cache_dir(str(tmp_path), max_entries=0)
        assert stray.exists() and partial.exists()

    def test_columnar_bundles_prune_as_entries(self, tmp_path):
        from repro.columnar import build_artifacts, save_artifacts

        doc = parse_html("c1", "<p>columnar</p>")
        built = build_artifacts([doc])
        save_artifacts(built, str(tmp_path))
        assert prune_cache_dir(str(tmp_path), max_entries=0) == 1
        assert os.listdir(str(tmp_path)) == []

    def test_store_counts_evictions(self, table, docs, tmp_path):
        store = ResultStore(str(tmp_path), max_entries=2)
        # keys the store saved itself are live and protected, so feed it
        # pre-existing strangers to evict
        self._fill(tmp_path, table, 3)
        store.save(KEY, table)
        assert store.evicted >= 2
        assert store.load(KEY, docs) is not None


class TestPruneTieBreak:
    """Eviction determinism when mtimes tie (coarse filesystem stamps)."""

    KEYS = ["cccc", "aaaa", "dddd", "bbbb"]  # creation order != sort order

    def _fill_equal_mtimes(self, tmp_path, table, keys):
        stamp = 1_000_000  # one shared stamp: every entry "equally old"
        for key in keys:
            save_result(table, str(tmp_path), key)
            os.utime(tmp_path / ("%s.res.npy" % key), (stamp, stamp))
            os.utime(tmp_path / ("%s.res.meta.json" % key), (stamp, stamp))

    def _survivors(self, tmp_path):
        return {name.split(".")[0] for name in os.listdir(str(tmp_path))}

    def test_ties_break_by_key_name(self, table, tmp_path):
        self._fill_equal_mtimes(tmp_path, table, self.KEYS)
        assert prune_cache_dir(str(tmp_path), max_entries=2) == 2
        # equal mtimes: the lexicographically smallest keys evict first
        assert self._survivors(tmp_path) == {"cccc", "dddd"}

    def test_tie_break_independent_of_creation_order(self, table, tmp_path):
        for i, order in enumerate(
            (self.KEYS, sorted(self.KEYS), sorted(self.KEYS, reverse=True))
        ):
            subdir = tmp_path / ("run%d" % i)
            subdir.mkdir()
            self._fill_equal_mtimes(subdir, table, order)
            prune_cache_dir(str(subdir), max_entries=2)
            assert self._survivors(subdir) == {"cccc", "dddd"}

    def test_mtime_still_dominates_key_name(self, table, tmp_path):
        self._fill_equal_mtimes(tmp_path, table, ["aaaa", "bbbb"])
        newer = tmp_path / "aaaa.res.npy"
        os.utime(newer, (2_000_000, 2_000_000))  # aaaa now strictly newer
        prune_cache_dir(str(tmp_path), max_entries=1)
        assert self._survivors(tmp_path) == {"aaaa"}


def _hammer(cache_dir, offset):
    """Worker for the concurrency test: save/load/prune in a tight loop.

    Both workers write *identical* content under each key (the store is
    content-addressed, so that is the real-world invariant) while
    pruning aggressively, which races unlinks against reads.
    """
    from repro.columnar.results import ResultStore
    from repro.ctables import Cell, CompactTable, CompactTuple, Exact
    from repro.text import parse_html
    from repro.text.span import Span

    def entry(i):
        doc = parse_html("h%d" % i, "<p>hammer doc %d payload</p>" % i)
        out = CompactTable(("x",))
        out.add(CompactTuple([Cell([Exact(Span(doc, 0, 6))])]))
        return {doc.doc_id: doc}, out

    store = ResultStore(cache_dir, max_entries=4)
    for step in range(60):
        i = (step + offset) % 10
        docs, out = entry(i)
        key = "conc%02d" % i
        store.save(key, out)
        loaded = store.load(key, docs)
        assert loaded is None or _image(loaded) == _image(out)
        store._live.clear()  # let this worker's own keys be evicted too
        store.prune()


class TestConcurrentStores:
    @pytest.mark.timeout(120)
    def test_two_processes_share_one_cache_dir(self, tmp_path):
        """Two processes saving and pruning the same --result-cache dir
        never crash and never load a corrupt entry (loads return None
        and the next save rewrites)."""
        import pathlib
        import subprocess
        import sys

        root = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(root / "src"), str(root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        code = (
            "from tests.columnar.test_results import _hammer; "
            "_hammer(%r, %d)"
        )
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", code % (str(tmp_path), offset)],
                env=env,
                cwd=str(root),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for offset in (0, 5)
        ]
        for proc in workers:
            _, err = proc.communicate(timeout=90)
            assert proc.returncode == 0, err.decode()
        # whatever survived the crossfire must load cleanly or miss
        count = 0
        for i in range(10):
            docs_i = {
                "h%d"
                % i: parse_html("h%d" % i, "<p>hammer doc %d payload</p>" % i)
            }
            loaded = load_result(str(tmp_path), "conc%02d" % i, docs_i)
            if loaded is not None:
                count += 1
                assert [t.maybe for t in loaded.tuples] == [False]
        assert count >= 1  # the directory is not simply empty
