"""Logging integration tests: debug logs narrate executions/sessions."""

import logging

import pytest

from repro.processor.executor import IFlexEngine


class TestProcessorLogging:
    def test_execute_logs_per_predicate(self, figure2_program, figure1_corpus, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.processor"):
            IFlexEngine(figure2_program, figure1_corpus).execute()
        messages = [r.getMessage() for r in caplog.records]
        assert any(m.startswith("houses:") for m in messages)
        assert any(m.startswith("Q:") for m in messages)

    def test_quiet_by_default(self, figure2_program, figure1_corpus, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.processor"):
            IFlexEngine(figure2_program, figure1_corpus).execute()
        assert not caplog.records


class TestSessionLogging:
    def test_session_logs_iterations_and_questions(self, caplog):
        from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
        from repro.assistant.session import RefinementSession
        from repro.assistant.strategies import SequentialStrategy
        from repro.text.corpus import Corpus
        from repro.text.html_parser import parse_html
        from repro.text.span import Span
        from repro.xlog.program import Program

        docs, spans = [], []
        for i in range(4):
            doc = parse_html("lg%d" % i, "<p><b>X%d</b> Price: $%d.00</p>" % (i, 90 + i * 10))
            start = doc.text.index("$") + 1
            spans.append(Span(doc, start, start + 5))
            docs.append(doc)
        corpus = Corpus({"base": docs})
        program = Program.parse(
            """
            rows(x, <t>, <p>) :- base(x), ie(@x, t, p).
            q(t) :- rows(x, t, p), p > 100.
            ie(@x, t, p) :- from(@x, t), from(@x, p), numeric(p) = yes.
            """,
            extensional=["base"],
            query="q",
        )
        session = RefinementSession(
            program, corpus,
            SimulatedDeveloper(GroundTruth({("ie", "p"): spans}), seed=1),
            strategy=SequentialStrategy(), seed=1, max_iterations=3,
        )
        with caplog.at_level(logging.DEBUG, logger="repro.assistant"):
            session.run()
        messages = [r.getMessage() for r in caplog.records]
        assert any(m.startswith("iteration 1:") for m in messages)
        assert any(m.startswith("asked ") for m in messages)
