"""CLI and interactive-developer tests."""

import pytest

from repro.cli import build_parser, load_corpus, main


@pytest.fixture
def pages_dir(tmp_path):
    directory = tmp_path / "pages"
    directory.mkdir()
    (directory / "a.html").write_text(
        "<p><b>Widget Alpha</b> Price: $120.00</p>", encoding="utf-8"
    )
    (directory / "b.html").write_text(
        "<p><b>Widget Beta</b> Price: $80.00</p>", encoding="utf-8"
    )
    (directory / "ignore.txt").write_text("not html", encoding="utf-8")
    return directory


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.alog"
    path.write_text(
        """
        items(x, <t>, <p>) :- pages(x), ie(@x, t, p).
        q(t, p) :- items(x, t, p), p > 100.
        ie(@x, t, p) :- from(@x, t), from(@x, p), numeric(p) = yes,
            preceded_by(p) = "$".
        """,
        encoding="utf-8",
    )
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "p.alog", "--table", "pages=./x", "--query", "q"]
        )
        assert args.command == "run"
        assert args.table == ["pages=./x"]


class TestLoadCorpus:
    def test_directory_of_html(self, pages_dir):
        corpus = load_corpus(["pages=%s" % pages_dir])
        assert corpus.size_of("pages") == 2  # the .txt is skipped

    def test_single_file(self, pages_dir):
        corpus = load_corpus(["one=%s" % (pages_dir / "a.html")])
        assert corpus.size_of("one") == 1

    def test_missing_path(self):
        with pytest.raises(SystemExit):
            load_corpus(["pages=/no/such/dir"])

    def test_bad_spec(self):
        with pytest.raises(SystemExit):
            load_corpus(["just-a-path"])


class TestCommands:
    def test_run(self, capsys, pages_dir, program_file):
        code = main(
            ["run", str(program_file), "--table", "pages=%s" % pages_dir, "--query", "q"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "120.00" in out
        assert "1 tuples" in out

    def test_explain(self, capsys, pages_dir, program_file):
        code = main(
            ["explain", str(program_file), "--table", "pages=%s" % pages_dir, "--query", "q"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Annotate" in out and "From" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "619,000" in out

    def test_tables_static(self, capsys):
        assert main(["tables", "--which", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out


class TestInteractiveDeveloper:
    def make(self, answers):
        from repro.assistant.interactive import InteractiveDeveloper

        answers = iter(answers)
        outputs = []
        dev = InteractiveDeveloper(
            input_fn=lambda prompt: next(answers), output_fn=outputs.append
        )
        return dev, outputs

    def test_boolean_answer(self):
        from repro.assistant.questions import Question
        from repro.features.registry import default_registry

        dev, outputs = self.make(["yes"])
        answer = dev.answer(Question("ie", "p", "bold_font"), default_registry())
        assert answer == "yes"
        assert dev.questions_answered == 1
        assert any("assistant asks" in str(o) for o in outputs)

    def test_empty_is_idk(self):
        from repro.assistant.questions import Question
        from repro.features.registry import default_registry

        dev, _ = self.make([""])
        assert dev.answer(Question("ie", "p", "bold_font"), default_registry()) is None

    def test_numeric_coercion(self):
        from repro.assistant.questions import Question
        from repro.features.registry import default_registry

        dev, _ = self.make(["25000"])
        answer = dev.answer(Question("ie", "p", "max_value"), default_registry())
        assert answer == 25000
        dev2, _ = self.make(["3.5"])
        assert dev2.answer(Question("ie", "p", "max_value"), default_registry()) == 3.5

    def test_interactive_session_end_to_end(self, pages_dir, program_file, capsys, monkeypatch):
        # drive the `session` command with scripted stdin answers
        answers = iter(["", "yes"] + [""] * 50)
        monkeypatch.setattr("builtins.input", lambda prompt="": next(answers))
        code = main(
            [
                "session",
                str(program_file),
                "--table",
                "pages=%s" % pages_dir,
                "--query",
                "q",
                "--max-iterations",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "session finished" in out


class TestArgValidation:
    """Bad numeric arguments fail at parse time with exit code 2."""

    BAD = [
        ["--workers", "0"],
        ["--workers", "-2"],
        ["--max-retries", "-1"],
        ["--partition-timeout", "0"],
        ["--partition-timeout", "-1.5"],
    ]

    @pytest.mark.parametrize("extra", BAD, ids=lambda e: " ".join(e))
    def test_run_rejects(self, extra):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "p.alog"] + extra)
        assert excinfo.value.code == 2

    def test_session_rejects_bad_max_iterations(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["session", "p.alog", "--max-iterations", "0"])
        assert excinfo.value.code == 2

    def test_valid_values_accepted(self):
        args = build_parser().parse_args(
            ["run", "p.alog", "--workers", "3", "--max-retries", "0",
             "--partition-timeout", "0.5"]
        )
        assert args.workers == 3
        assert args.max_retries == 0
        assert args.partition_timeout == 0.5


class TestObservabilityFlags:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys, pages_dir, program_file):
        import json

        trace_path = tmp_path / "run.trace.json"
        metrics_path = tmp_path / "run.metrics.json"
        code = main(
            ["run", str(program_file), "--table", "pages=%s" % pages_dir,
             "--query", "q", "--trace-out", str(trace_path),
             "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        categories = {e["cat"] for e in trace["traceEvents"]}
        assert {"engine", "plan", "operator"} <= categories
        metrics = json.loads(metrics_path.read_text())
        names = {m["name"] for m in metrics["metrics"]}
        assert "repro.exec.verify_calls" in names
        assert "repro.result.executions" in names
        err = capsys.readouterr().err
        assert str(trace_path) in err and str(metrics_path) in err

    def test_parallel_run_traces_partitions(self, tmp_path, pages_dir, program_file):
        import json

        trace_path = tmp_path / "run.trace.json"
        code = main(
            ["run", str(program_file), "--table", "pages=%s" % pages_dir,
             "--query", "q", "--workers", "2", "--backend", "serial",
             "--trace-out", str(trace_path)]
        )
        assert code == 0
        categories = {
            e["cat"] for e in json.loads(trace_path.read_text())["traceEvents"]
        }
        assert {"partition", "scheduler"} <= categories


class TestNumericArgValidation:
    """Previously-unvalidated numeric flags now fail at parse time."""

    CASES = [
        (["run", "p.alog", "--max-rows", "0"],),
        (["run", "p.alog", "--max-rows", "-5"],),
        (["tables", "--scale", "0"],),
        (["tables", "--scale", "-1"],),
        (["tables", "--seed", "-1"],),
        (["generate", "movies", "--out", "o", "--size", "0"],),
        (["generate", "movies", "--out", "o", "--seed", "-2"],),
        (["serve", "--port", "-1"],),
        (["serve", "--partition-docs", "0"],),
        (["serve", "--rate-limit", "0"],),
        (["serve", "--rate-burst", "0"],),
    ]

    @pytest.mark.parametrize("argv", [c[0] for c in CASES], ids=lambda a: " ".join(a))
    def test_bad_values_exit_2(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2

    def test_good_values_accepted(self):
        args = build_parser().parse_args(
            ["tables", "--scale", "0.5", "--seed", "0"]
        )
        assert args.scale == 0.5 and args.seed == 0
        args = build_parser().parse_args(
            ["generate", "movies", "--out", "o", "--size", "3"]
        )
        assert args.size == 3


class TestServeCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8750
        assert args.partition_docs == 1
        assert args.rate_limit is None
        assert not args.no_incremental

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--table", "pages=/tmp/p",
                "--result-cache", "/tmp/rc", "--artifact-cache", "/tmp/ac",
                "--rate-limit", "5", "--rate-burst", "10",
                "--partition-docs", "2", "--workers", "3",
                "--backend", "thread", "--no-index",
            ]
        )
        assert args.port == 0
        assert args.table == ["pages=/tmp/p"]
        assert args.result_cache == "/tmp/rc"
        assert args.rate_limit == 5.0
        assert args.rate_burst == 10
        assert args.no_index

    def test_serve_starts_and_answers(self, pages_dir):
        """`repro serve --port 0` binds, prints its port, serves /health."""
        import json
        import subprocess
        import sys
        import urllib.request

        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--table", "pages=%s" % pages_dir, "--log-level", "warning",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            assert "listening on http://" in line
            port = int(line.rsplit(":", 1)[1])
            with urllib.request.urlopen(
                "http://127.0.0.1:%d/health" % port, timeout=10
            ) as resp:
                payload = json.load(resp)
            assert payload["status"] == "ok"
            assert payload["documents"] == 2
        finally:
            proc.terminate()
            proc.wait(timeout=10)
