"""Shared fixtures: small documents and the paper's running example.

Also home of the ``@pytest.mark.timeout(seconds)`` marker — a
SIGALRM-based, dependency-free implementation so a hung partition fails
the build instead of stalling it (``pytest-timeout`` is deliberately
not required).
"""

import signal

import pytest

from repro.text import Corpus, parse_html


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than the "
        "limit (SIGALRM wall-clock alarm; POSIX main thread only)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = float(marker.args[0]) if marker.args else 60.0

    def on_alarm(signum, frame):
        raise TimeoutError(
            "%s exceeded its %.3gs timeout" % (item.nodeid, seconds)
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def simple_doc():
    """A small page with every markup kind the features consult."""
    return parse_html(
        "doc1",
        "<html><title>Top Movies 2005</title><body>"
        "<p>Price: <b>$351,000</b> and <i>cozy</i>.</p>"
        "<h2>Schools</h2>"
        "<ul><li><a href='#'>Basktall HS</a>, Champaign</li>"
        "<li><u>Hoover</u>, Akron</li></ul>"
        "</body></html>",
    )


@pytest.fixture
def house_pages():
    """The two house pages of the paper's Figure 1."""
    x1 = parse_html(
        "x1",
        "<p>Cozy house on quiet street. 5146 Windsor Ave., Champaign. "
        "Sqft: 2750. Price: <b>$351,000</b>. High school: Vanhise High.</p>",
    )
    x2 = parse_html(
        "x2",
        "<p>Amazing house in great location. 3112 Stonecreek Blvd., Cherry Hills. "
        "Sqft: 4700. Price: <b>$619,000</b>. High school: Basktall HS.</p>",
    )
    return [x1, x2]


@pytest.fixture
def school_pages():
    """The two school pages of the paper's Figure 1."""
    y1 = parse_html(
        "y1",
        "<p>Top High Schools (page 1): <b>Basktall</b>, Cherry Hills; "
        "<b>Franklin</b>, Robeson; <b>Vanhise</b>, Champaign</p>",
    )
    y2 = parse_html(
        "y2",
        "<p>Top High Schools (page 2): <b>Hoover</b>, Akron; "
        "<b>Ossage</b>, Lynneville</p>",
    )
    return [y1, y2]


@pytest.fixture
def figure1_corpus(house_pages, school_pages):
    return Corpus({"housePages": house_pages, "schoolPages": school_pages})


#: The Alog program of Figure 2 (skeleton + description rules +
#: annotations), in this library's concrete syntax.
FIGURE2_SOURCE = """
S1: houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(@x, p, a, h).
S2: schools(s)? :- schoolPages(y), extractSchools(@y, s).
S3: Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
    approxMatch(@h, @s).
S4: extractHouses(@x, p, a, h) :- from(@x, p), from(@x, a), from(@x, h),
    numeric(p) = yes, numeric(a) = yes.
S5: extractSchools(@y, s) :- from(@y, s), bold_font(s) = yes.
"""


@pytest.fixture
def figure2_program():
    from repro.processor import make_similar
    from repro.xlog import PFunction, Program

    return Program.parse(
        FIGURE2_SOURCE,
        extensional=["housePages", "schoolPages"],
        p_functions={"approxMatch": PFunction("approxMatch", make_similar(0.4))},
        query="Q",
    )
