"""Session edge cases: declining developers, exhaustion, caching."""

import pytest

from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
from repro.assistant.session import RefinementSession
from repro.assistant.strategies import SequentialStrategy, SimulationStrategy
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.text.span import Span
from repro.xlog.program import Program


def tiny_task(n=6):
    docs, spans = [], []
    for i in range(n):
        doc = parse_html("s%d" % i, "<p><b>T%d</b> Votes: %d</p>" % (i, 100 * (i + 1)))
        start = doc.text.index("Votes:") + 7
        spans.append(Span(doc, start, len(doc.text.rstrip())))
        docs.append(doc)
    corpus = Corpus({"base": docs})
    program = Program.parse(
        """
        rows(x, <t>, <v>) :- base(x), ie(@x, t, v).
        q(t) :- rows(x, t, v), v > 250.
        ie(@x, t, v) :- from(@x, t), from(@x, v), numeric(v) = yes.
        """,
        extensional=["base"],
        query="q",
    )
    return program, corpus, GroundTruth({("ie", "v"): spans})


class TestDecliningDeveloper:
    def test_all_declines_still_terminates(self):
        program, corpus, truth = tiny_task()
        developer = SimulatedDeveloper(truth, alpha=1.0, seed=1)
        session = RefinementSession(
            program, corpus, developer, strategy=SequentialStrategy(),
            max_iterations=6, seed=1,
        )
        trace = session.run()
        assert trace.questions_asked > 0
        assert developer.questions_answered == 0
        assert trace.final_result is not None

    def test_declines_recorded_in_trace(self):
        program, corpus, truth = tiny_task()
        developer = SimulatedDeveloper(truth, alpha=1.0, seed=1)
        session = RefinementSession(
            program, corpus, developer, strategy=SequentialStrategy(),
            max_iterations=3, seed=1,
        )
        trace = session.run()
        declined = [
            qa for r in trace.records for qa in r.questions if qa[1] is None
        ]
        assert declined


class TestExhaustion:
    def test_question_space_exhaustion_stops_session(self):
        program, corpus, truth = tiny_task()
        developer = SimulatedDeveloper(truth, seed=1)
        session = RefinementSession(
            program, corpus, developer, strategy=SequentialStrategy(),
            max_iterations=200, questions_per_iteration=10, seed=1,
        )
        trace = session.run()
        # far fewer iterations than the cap: either converged or ran out
        assert trace.iterations < 60


class TestSimulationCacheHygiene:
    def test_simulation_does_not_pollute_cache(self):
        program, corpus, truth = tiny_task()
        developer = SimulatedDeveloper(truth, seed=1)
        session = RefinementSession(
            program, corpus, developer,
            strategy=SimulationStrategy(alpha=0.1, pool_size=3), seed=1,
        )
        session._execute_subset()
        entries_before = dict(session._subset_cache._entries)
        session.simulate_refinement("ie", "v", "bold_font", "yes")
        assert session._subset_cache._entries == entries_before

    def test_simulate_invalid_refinement_is_infinite(self):
        program, corpus, truth = tiny_task()
        developer = SimulatedDeveloper(truth, seed=1)
        session = RefinementSession(program, corpus, developer, seed=1)
        session._execute_subset()
        assert session.simulate_refinement("nope", "v", "bold_font", "yes") == float("inf")


class TestSubsetFractionOverride:
    def test_explicit_fraction_respected(self):
        program, corpus, truth = tiny_task(n=6)
        developer = SimulatedDeveloper(truth, seed=1)
        session = RefinementSession(
            program, corpus, developer, subset_fraction=0.5, seed=1
        )
        assert session.subset_corpus.size_of("base") == 3

    def test_full_fraction_uses_original_corpus(self):
        program, corpus, truth = tiny_task()
        developer = SimulatedDeveloper(truth, seed=1)
        session = RefinementSession(
            program, corpus, developer, subset_fraction=1.0, seed=1
        )
        assert session.subset_corpus is corpus
