"""Convergence monitor tests (k-stable counts, section 5.1)."""

import pytest

from repro.assistant.convergence import ConvergenceMonitor


class TestConvergenceMonitor:
    def test_not_converged_before_k(self):
        monitor = ConvergenceMonitor(k=3)
        assert not monitor.observe(10, 100)
        assert not monitor.observe(10, 100)

    def test_converged_after_k_identical(self):
        monitor = ConvergenceMonitor(k=3)
        monitor.observe(10, 100)
        monitor.observe(10, 100)
        assert monitor.observe(10, 100)

    def test_any_component_change_resets(self):
        monitor = ConvergenceMonitor(k=3)
        monitor.observe(10, 100)
        monitor.observe(10, 99)  # assignments changed
        assert not monitor.observe(10, 99)
        assert monitor.observe(10, 99)

    def test_triple_signal(self):
        monitor = ConvergenceMonitor(k=2)
        monitor.observe(5, 50, 500)
        assert monitor.observe(5, 50, 500)
        monitor.reset()
        monitor.observe(5, 50, 500)
        assert not monitor.observe(5, 50, 499)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor(k=1)

    def test_reset(self):
        monitor = ConvergenceMonitor(k=2)
        monitor.observe(1, 1)
        monitor.reset()
        assert monitor.history == []
        assert not monitor.converged
