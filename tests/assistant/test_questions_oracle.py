"""Question space and simulated-developer tests."""

import pytest

from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
from repro.assistant.questions import Question, question_space
from repro.features.registry import default_registry
from repro.text.html_parser import parse_html
from repro.text.span import Span
from repro.xlog.program import Program


@pytest.fixture
def registry():
    return default_registry()


@pytest.fixture
def program():
    return Program.parse(
        """
        q(x, p) :- base(x), ie(@x, p).
        ie(@x, p) :- from(@x, p), numeric(p) = yes.
        """,
        extensional=["base"],
    )


class TestQuestionSpace:
    def test_space_covers_features(self, program, registry):
        questions = question_space(program, registry)
        names = {q.feature_name for q in questions}
        assert "bold_font" in names
        assert "preceded_by" in names

    def test_constrained_feature_excluded(self, program, registry):
        questions = question_space(program, registry)
        assert not any(
            q.feature_name == "numeric" and q.attribute == "p" for q in questions
        )

    def test_asked_questions_excluded(self, program, registry):
        q = Question("ie", "p", "bold_font")
        questions = question_space(program, registry, asked={q.key()})
        assert q not in questions

    def test_question_text(self, registry):
        q = Question("ie", "price", "bold_font")
        assert "bold" in q.text(registry)


class TestSimulatedDeveloper:
    def make_truth(self):
        doc = parse_html("d", "<p>Price: <b>$351,000</b> in 2005</p>")
        price_start = doc.text.index("351")
        price = Span(doc, price_start, price_start + 7)
        return GroundTruth(
            {("ie", "p"): [price]},
            scripted_answers={("ie", "p", "pattern"): r"\d[\d,]*"},
        )

    def test_boolean_yes(self, registry):
        dev = SimulatedDeveloper(self.make_truth())
        answer = dev.answer(Question("ie", "p", "bold_font"), registry)
        assert answer in ("yes", "distinct_yes")

    def test_boolean_no(self, registry):
        dev = SimulatedDeveloper(self.make_truth())
        assert dev.answer(Question("ie", "p", "italic_font"), registry) == "no"

    def test_parameterized_inference(self, registry):
        dev = SimulatedDeveloper(self.make_truth())
        answer = dev.answer(Question("ie", "p", "preceded_by"), registry)
        assert answer.endswith("$")

    def test_scripted_answer_wins(self, registry):
        dev = SimulatedDeveloper(self.make_truth())
        assert dev.answer(Question("ie", "p", "pattern"), registry) == r"\d[\d,]*"

    def test_unknown_attribute_declines(self, registry):
        dev = SimulatedDeveloper(self.make_truth())
        assert dev.answer(Question("ie", "zz", "bold_font"), registry) is None

    def test_alpha_declines(self, registry):
        dev = SimulatedDeveloper(self.make_truth(), alpha=1.0, seed=4)
        assert dev.answer(Question("ie", "p", "bold_font"), registry) is None

    def test_counters(self, registry):
        dev = SimulatedDeveloper(self.make_truth())
        dev.answer(Question("ie", "p", "bold_font"), registry)
        dev.answer(Question("ie", "zz", "bold_font"), registry)
        assert dev.questions_seen == 2
        assert dev.questions_answered == 1

    def test_mixed_evidence_declines(self, registry):
        doc = parse_html("d2", "<p><b>bold one</b> and plain two</p>")
        bold = Span(doc, 0, 8)
        plain_start = doc.text.index("plain")
        plain = Span(doc, plain_start, plain_start + 5)
        truth = GroundTruth({("ie", "p"): [bold, plain]})
        dev = SimulatedDeveloper(truth)
        assert dev.answer(Question("ie", "p", "bold_font"), registry) is None

    def test_restrict_to_docs(self, registry):
        truth = self.make_truth()
        restricted = truth.restrict_to_docs(["other-doc"])
        assert restricted.true_spans("ie", "p") == []
