"""End-to-end refinement session tests."""

import pytest

from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
from repro.assistant.session import RefinementSession, auto_subset_fraction
from repro.assistant.strategies import SequentialStrategy
from repro.text.corpus import Corpus
from repro.text.document import Document
from repro.text.html_parser import parse_html
from repro.text.span import Span
from repro.xlog.program import Program


def make_task(n=12):
    """A tiny books-like task: price > 100, with ISBN distractors."""
    docs, price_spans = [], []
    answers = 0
    for i in range(n):
        price = 40 + i * 20  # half the records exceed 100
        doc = parse_html(
            "b%d" % i,
            "<p><b>Book {i}</b></p><p>Our Price: ${price}.00</p>"
            "<p>ISBN: 99999{i}</p>".format(i=i, price=price),
        )
        start = doc.text.index("$") + 1
        price_spans.append(Span(doc, start, start + len("%d.00" % price)))
        if price > 100:
            answers += 1
        docs.append(doc)
    corpus = Corpus({"Books": docs})
    program = Program.parse(
        """
        books(x, <t>, <p>) :- Books(x), ie(@x, t, p).
        q(t) :- books(x, t, p), p > 100.
        ie(@x, t, p) :- from(@x, t), from(@x, p), numeric(p) = yes.
        """,
        extensional=["Books"],
        query="q",
    )
    truth = GroundTruth({("ie", "p"): price_spans})
    return program, corpus, truth, answers


class TestAutoSubsetFraction:
    def test_small_corpora_run_full(self):
        corpus = Corpus({"A": [Document("a%d" % i, "x") for i in range(10)]})
        assert auto_subset_fraction(corpus) == 1.0

    def test_large_corpora_sampled(self):
        corpus = Corpus({"A": [Document("a%d" % i, "x") for i in range(1500)]})
        assert auto_subset_fraction(corpus) == 0.05


class TestSessionRun:
    def test_converges_to_correct_count(self):
        program, corpus, truth, answers = make_task()
        session = RefinementSession(
            program, corpus, SimulatedDeveloper(truth), strategy=SequentialStrategy(), seed=0
        )
        trace = session.run()
        assert trace.converged
        assert trace.final_result.tuple_count == answers

    def test_trace_structure(self):
        program, corpus, truth, _ = make_task()
        session = RefinementSession(
            program, corpus, SimulatedDeveloper(truth), strategy=SequentialStrategy(), seed=0
        )
        trace = session.run()
        assert trace.records[-1].mode == "reuse"
        assert all(r.mode == "subset" for r in trace.records[:-1])
        assert trace.iterations == len(trace.records) - 1
        assert trace.questions_asked >= trace.records[0].index

    def test_result_shrinks_monotonically_enough(self):
        program, corpus, truth, answers = make_task()
        session = RefinementSession(
            program, corpus, SimulatedDeveloper(truth), strategy=SequentialStrategy(), seed=0
        )
        trace = session.run()
        series = [r.tuples for r in trace.records if r.mode == "subset"]
        assert series[0] >= series[-1]

    def test_program_not_mutated(self):
        program, corpus, truth, _ = make_task()
        session = RefinementSession(
            program, corpus, SimulatedDeveloper(truth), strategy=SequentialStrategy(), seed=0
        )
        session.run()
        # the initial numeric constraint is all the original ever had
        assert program.constraints_on("ie", "p") == [("numeric", "yes")]
        assert len(session.program.constraints_on("ie", "p")) > 1

    def test_max_iterations_bounds_loop(self):
        program, corpus, truth, _ = make_task()
        session = RefinementSession(
            program,
            corpus,
            SimulatedDeveloper(truth),
            strategy=SequentialStrategy(),
            max_iterations=2,
            seed=0,
        )
        trace = session.run()
        assert trace.iterations <= 2

    def test_simulation_hook(self):
        program, corpus, truth, _ = make_task()
        session = RefinementSession(
            program, corpus, SimulatedDeveloper(truth), strategy=SequentialStrategy(), seed=0
        )
        session._execute_subset()
        score = session.simulate_refinement("ie", "p", "preceded_by", "$")
        assert score >= 0

    def test_attribute_profile(self):
        program, corpus, truth, _ = make_task()
        session = RefinementSession(
            program, corpus, SimulatedDeveloper(truth), strategy=SequentialStrategy(), seed=0
        )
        session._execute_subset()
        profile = session.attribute_profile("ie", "p")
        assert profile
