"""Markup-example feedback tests (paper section 5.1.1)."""

import pytest

from repro.assistant.feedback import eliminate_by_examples
from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
from repro.assistant.questions import Question
from repro.assistant.session import RefinementSession
from repro.assistant.strategies import SimulationStrategy
from repro.features.registry import default_registry
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.text.span import Span
from repro.xlog.program import Program

REGISTRY = default_registry()


@pytest.fixture
def doc():
    return parse_html("f", "<p>Price: <b>$42.00</b> plain text</p>")


def bold_span(doc):
    start, end = doc.regions_of("bold")[0]
    return Span(doc, start, end)


class TestEliminateByExamples:
    def test_bold_example_eliminates_no(self, doc):
        # the paper's example verbatim: a bold sample means "no" is out
        feature = REGISTRY.get("bold_font")
        values = eliminate_by_examples(
            feature, ["yes", "no", "distinct_yes"], [bold_span(doc)]
        )
        assert "no" not in values
        assert "yes" in values

    def test_non_bold_example_eliminates_yes(self, doc):
        feature = REGISTRY.get("bold_font")
        plain = Span(doc, 0, 5)
        values = eliminate_by_examples(
            feature, ["yes", "no", "distinct_yes"], [plain]
        )
        assert values == ["no"]

    def test_non_distinct_example_eliminates_distinct(self, doc):
        feature = REGISTRY.get("bold_font")
        b = bold_span(doc)
        inner = b.sub(b.start + 1, b.end)  # bold but not the whole region
        values = eliminate_by_examples(
            feature, ["yes", "no", "distinct_yes"], [inner]
        )
        assert values == ["yes"]

    def test_no_examples_is_identity(self, doc):
        feature = REGISTRY.get("bold_font")
        values = ["yes", "no"]
        assert eliminate_by_examples(feature, values, []) == values

    def test_parameterized_untouched(self, doc):
        feature = REGISTRY.get("preceded_by")
        assert eliminate_by_examples(feature, ["$"], [bold_span(doc)]) == ["$"]

    def test_contradictory_examples_keep_all(self, doc):
        feature = REGISTRY.get("bold_font")
        values = eliminate_by_examples(
            feature, ["yes", "no"], [bold_span(doc), Span(doc, 0, 5)]
        )
        assert values == ["yes", "no"]


class TestSessionIntegration:
    def make_session(self):
        docs, spans = [], []
        for i in range(6):
            page = parse_html(
                "m%d" % i, "<p><b>Item %d</b> Votes: %d</p>" % (i, 500 * (i + 1))
            )
            start = page.text.index("Votes:") + 7
            spans.append(Span(page, start, len(page.text.rstrip())))
            docs.append(page)
        corpus = Corpus({"base": docs})
        program = Program.parse(
            """
            rows(x, <t>, <v>) :- base(x), ie(@x, t, v).
            q(t) :- rows(x, t, v), v > 1200.
            ie(@x, t, v) :- from(@x, t), from(@x, v), numeric(v) = yes.
            """,
            extensional=["base"],
            query="q",
        )
        truth = GroundTruth({("ie", "v"): spans, ("ie", "t"): []})
        developer = SimulatedDeveloper(truth, seed=2)
        return RefinementSession(
            program, corpus, developer, strategy=SimulationStrategy(), seed=2
        )

    def test_collect_examples(self):
        session = self.make_session()
        count = session.collect_examples()
        assert count == 1  # only v has true spans
        assert session.example_spans("ie", "v")

    def test_examples_shrink_simulated_values(self):
        session = self.make_session()
        session._execute_subset()
        session.collect_examples()
        strategy = session.strategy
        weighted = strategy._weighted_values(session, Question("ie", "v", "bold_font"))
        values = {v for v, _ in weighted}
        # the example votes span is not bold: yes/distinct eliminated
        assert values == {"no"}

    def test_session_with_examples_still_converges(self):
        session = self.make_session()
        session.collect_examples()
        trace = session.run()
        assert trace.final_result.tuple_count == 4  # votes > 1200: items 2..5
