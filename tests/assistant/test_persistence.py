"""Session save/resume tests."""

import json

import pytest

from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
from repro.assistant.persistence import (
    resume_session,
    save_session,
    trace_report,
    trace_to_dict,
)
from repro.assistant.session import RefinementSession
from repro.assistant.strategies import SequentialStrategy
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.text.span import Span
from repro.xlog.program import Program


@pytest.fixture
def setup():
    docs, spans = [], []
    for i in range(8):
        doc = parse_html(
            "p%d" % i, "<p><b>Row %d</b> Price: $%d.00</p>" % (i, 50 + 20 * i)
        )
        start = doc.text.index("$") + 1
        spans.append(Span(doc, start, start + len("%d.00" % (50 + 20 * i))))
        docs.append(doc)
    corpus = Corpus({"base": docs})
    program = Program.parse(
        """
        rows(x, <t>, <p>) :- base(x), ie(@x, t, p).
        q(t) :- rows(x, t, p), p > 100.
        ie(@x, t, p) :- from(@x, t), from(@x, p), numeric(p) = yes.
        """,
        extensional=["base"],
        query="q",
    )
    truth = GroundTruth({("ie", "p"): spans})
    return corpus, program, truth


class TestSaveResume:
    def test_round_trip_preserves_state(self, setup, tmp_path):
        corpus, program, truth = setup
        developer = SimulatedDeveloper(truth, seed=3)
        session = RefinementSession(
            program, corpus, developer, strategy=SequentialStrategy(), seed=3,
            max_iterations=2,
        )
        session.collect_examples()
        session.run()  # partial (2 iterations)
        path = save_session(session, tmp_path / "session.json")

        resumed = resume_session(
            path, corpus, SimulatedDeveloper(truth, seed=3),
            strategy=SequentialStrategy(), seed=3,
        )
        assert resumed.asked == session.asked
        assert resumed.program.source() == session.program.source()
        assert resumed.example_spans("ie", "p")

    def test_resumed_session_continues_to_convergence(self, setup, tmp_path):
        corpus, program, truth = setup
        developer = SimulatedDeveloper(truth, seed=3)
        first = RefinementSession(
            program, corpus, developer, strategy=SequentialStrategy(), seed=3,
            max_iterations=2,
        )
        first.run()
        path = save_session(first, tmp_path / "s.json")
        resumed = resume_session(
            path, corpus, SimulatedDeveloper(truth, seed=3),
            strategy=SequentialStrategy(), seed=3,
        )
        trace = resumed.run()
        correct = sum(1 for i in range(8) if 50 + 20 * i > 100)
        assert trace.final_result.tuple_count == correct
        # no question repeats across the two halves
        keys = [q.key() for r in trace.records for q, _ in r.questions]
        assert not (set(keys) & first.asked)

    def test_stale_examples_skipped(self, setup, tmp_path):
        corpus, program, truth = setup
        developer = SimulatedDeveloper(truth, seed=3)
        session = RefinementSession(program, corpus, developer, seed=3)
        session.collect_examples()
        path = save_session(session, tmp_path / "s.json")
        other_corpus = Corpus(
            {"base": [parse_html("zz", "<p>different Price: $5.00</p>")]}
        )
        resumed = resume_session(
            path, other_corpus, SimulatedDeveloper(truth, seed=3), seed=3
        )
        assert resumed.example_spans("ie", "p") == []


class TestTraceSerialisation:
    def test_trace_to_dict_and_report(self, setup, tmp_path):
        corpus, program, truth = setup
        developer = SimulatedDeveloper(truth, seed=3)
        session = RefinementSession(
            program, corpus, developer, strategy=SequentialStrategy(), seed=3
        )
        trace = session.run()
        payload = trace_to_dict(trace)
        json.dumps(payload)
        assert payload["converged"] == trace.converged
        assert len(payload["iterations"]) == len(trace.records)
        report = trace_report(trace)
        assert "questions" in report and "[" in report

    def test_save_with_trace(self, setup, tmp_path):
        corpus, program, truth = setup
        developer = SimulatedDeveloper(truth, seed=3)
        session = RefinementSession(
            program, corpus, developer, strategy=SequentialStrategy(), seed=3
        )
        trace = session.run()
        path = save_session(session, tmp_path / "full.json", trace=trace)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["trace"]["final_tuples"] == trace.final_result.tuple_count


class TestTraceContinuation:
    """save → resume → continue must preserve the iteration trace and
    the asked-question dedup, not just the refined program."""

    def _partial(self, setup, tmp_path):
        corpus, program, truth = setup
        first = RefinementSession(
            program, corpus, SimulatedDeveloper(truth, seed=3),
            strategy=SequentialStrategy(), seed=3, max_iterations=2,
        )
        first_trace = first.run()
        path = save_session(first, tmp_path / "s.json", trace=first_trace)
        return corpus, truth, first, first_trace, path

    def test_resume_restores_prior_records(self, setup, tmp_path):
        corpus, truth, first, first_trace, path = self._partial(setup, tmp_path)
        resumed = resume_session(
            path, corpus, SimulatedDeveloper(truth, seed=3),
            strategy=SequentialStrategy(), seed=3,
        )
        assert [r.index for r in resumed.prior_records] == [
            r.index for r in first_trace.records
        ]
        assert [r.tuples for r in resumed.prior_records] == [
            r.tuples for r in first_trace.records
        ]
        # restored questions carry the attributes dedup and reporting use
        restored_keys = [
            q.key() for r in resumed.prior_records for q, _ in r.questions
        ]
        original_keys = [
            q.key() for r in first_trace.records for q, _ in r.questions
        ]
        assert restored_keys == original_keys

    def test_continued_trace_extends_the_saved_one(self, setup, tmp_path):
        corpus, truth, first, first_trace, path = self._partial(setup, tmp_path)
        resumed = resume_session(
            path, corpus, SimulatedDeveloper(truth, seed=3),
            strategy=SequentialStrategy(), seed=3,
        )
        trace = resumed.run()
        saved = len(first_trace.records)
        assert len(trace.records) > saved
        # the continued trace leads with the saved iterations, verbatim
        assert [(r.index, r.mode, r.tuples) for r in trace.records[:saved]] == [
            (r.index, r.mode, r.tuples) for r in first_trace.records
        ]
        # new iterations number strictly after the saved maximum
        prior_max = max(r.index for r in first_trace.records)
        assert all(r.index > prior_max for r in trace.records[saved:])
        indexes = [r.index for r in trace.records]
        assert indexes == sorted(indexes) and len(set(indexes)) == len(indexes)
        # dedup survived the round trip: nothing asked twice
        keys = [q.key() for r in trace.records for q, _ in r.questions]
        assert len(keys) == len(set(keys))

    def test_continued_trace_round_trips_again(self, setup, tmp_path):
        corpus, truth, first, first_trace, path = self._partial(setup, tmp_path)
        resumed = resume_session(
            path, corpus, SimulatedDeveloper(truth, seed=3),
            strategy=SequentialStrategy(), seed=3,
        )
        trace = resumed.run()
        payload = trace_to_dict(trace)
        json.dumps(payload)  # restored questions serialise like live ones
        assert len(payload["iterations"]) == len(trace.records)
        report = trace_report(trace)
        assert str(first_trace.records[0].tuples) in report

    def test_resume_without_trace_starts_fresh(self, setup, tmp_path):
        corpus, program, truth = setup
        session = RefinementSession(
            program, corpus, SimulatedDeveloper(truth, seed=3), seed=3,
            max_iterations=2,
        )
        session.run()
        path = save_session(session, tmp_path / "no-trace.json")  # trace=None
        resumed = resume_session(
            path, corpus, SimulatedDeveloper(truth, seed=3), seed=3
        )
        assert resumed.prior_records == []
        trace = resumed.run()
        assert trace.records[0].index == 1
