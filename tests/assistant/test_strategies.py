"""Question-selection strategy tests."""

import pytest

from repro.assistant.oracle import GroundTruth, SimulatedDeveloper
from repro.assistant.session import RefinementSession
from repro.assistant.strategies import (
    SequentialStrategy,
    SimulationStrategy,
    attribute_ranking,
)
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.text.span import Span
from repro.xlog.program import PFunction, Program


def make_docs(n=4):
    docs = []
    spans = []
    for i in range(n):
        doc = parse_html(
            "doc%d" % i,
            "<p>rank %d. <b>Title %d</b> Votes: %d</p>" % (i + 1, i, 1000 * (i + 1)),
        )
        start = doc.text.index("Votes:") + 7
        spans.append(Span(doc, start, len(doc.text.rstrip())))
        docs.append(doc)
    return docs, spans


@pytest.fixture
def session():
    docs, votes_spans = make_docs()
    corpus = Corpus({"base": docs})
    program = Program.parse(
        """
        movies(x, <t>, <v>) :- base(x), ie(@x, t, v).
        q(t) :- movies(x, t, v), v < 2500.
        ie(@x, t, v) :- from(@x, t), from(@x, v), numeric(v) = yes.
        """,
        extensional=["base"],
        query="q",
    )
    truth = GroundTruth({("ie", "v"): votes_spans})
    developer = SimulatedDeveloper(truth)
    return RefinementSession(program, corpus, developer, seed=0)


class TestAttributeRanking:
    def test_comparison_attr_ranked_first(self, session):
        ranking = attribute_ranking(session.program)
        assert ranking[0] == ("ie", "v")

    def test_join_attrs_outrank_comparisons(self):
        program = Program.parse(
            """
            l(x, a, p) :- base(x), ie1(@x, a, p).
            q(a) :- l(x, a, p), sim(@a, @a), p > 5.
            ie1(@x, a, p) :- from(@x, a), from(@x, p).
            """,
            extensional=["base"],
            p_functions={"sim": PFunction("sim", lambda u, v: True)},
            query="q",
        )
        ranking = attribute_ranking(program)
        assert ranking[0] == ("ie1", "a")


class TestSequentialStrategy:
    def test_selects_in_order(self, session):
        strategy = SequentialStrategy()
        session._execute_subset()
        first = strategy.select(session)
        assert first.attribute == "v"  # ranked attribute first
        session.asked.add(first.key())
        second = strategy.select(session)
        assert second.key() != first.key()

    def test_exhausts_to_none(self, session):
        strategy = SequentialStrategy()
        session._execute_subset()
        for _ in range(300):
            q = strategy.select(session)
            if q is None:
                break
            session.asked.add(q.key())
        assert strategy.select(session) is None


class TestSimulationStrategy:
    def test_selects_a_question(self, session):
        session._execute_subset()
        strategy = SimulationStrategy(alpha=0.1, pool_size=4)
        question = strategy.select(session)
        assert question is not None

    def test_prior_weights_sum_to_one(self, session):
        session._execute_subset()
        strategy = SimulationStrategy()
        from repro.assistant.questions import Question

        weighted = strategy._weighted_values(session, Question("ie", "v", "bold_font"))
        assert abs(sum(p for _, p in weighted) - 1.0) < 1e-9

    def test_impossible_answers_excluded(self, session):
        session._execute_subset()
        strategy = SimulationStrategy()
        from repro.assistant.questions import Question

        weighted = strategy._weighted_values(session, Question("ie", "v", "italic_font"))
        values = {v for v, _ in weighted}
        assert "yes" not in values  # corpus has no italics at all

    def test_parameterized_candidates(self, session):
        session._execute_subset()
        strategy = SimulationStrategy()
        from repro.assistant.questions import Question

        weighted = strategy._weighted_values(
            session, Question("ie", "v", "preceded_by")
        )
        assert weighted  # profiled candidates exist


class TestApplicability:
    def test_region_feature_pruned_when_absent(self, session):
        from repro.assistant.questions import Question

        assert not session.applicable(Question("ie", "v", "underlined"))
        assert session.applicable(Question("ie", "v", "bold_font"))

    def test_regex_features_need_script(self, session):
        from repro.assistant.questions import Question

        assert not session.applicable(Question("ie", "v", "starts_with"))

    def test_numeric_attr_prunes_word_features(self, session):
        from repro.assistant.questions import Question

        assert not session.applicable(Question("ie", "v", "person_name"))
        assert session.applicable(Question("ie", "t", "person_name"))
