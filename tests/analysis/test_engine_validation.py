"""Pre-execution validation in IFlexEngine and session warning surfacing."""

import pytest

from repro.errors import ProgramLintError, SafetyError
from repro.processor.executor import IFlexEngine
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.xlog.program import Program


@pytest.fixture
def corpus():
    return Corpus(
        {"pages": [parse_html("x1", "<p><b>Widget</b> Price: $120</p>")]}
    )


def _program(source, **kwargs):
    kwargs.setdefault("extensional", ["pages"])
    return Program.parse(source, **kwargs)


class TestEngineValidation:
    def test_unsafe_program_raises_safety_error_at_construction(self, corpus):
        program = _program("q(x, ghost) :- pages(x).")
        with pytest.raises(SafetyError):
            IFlexEngine(program, corpus)

    def test_contradiction_raises_lint_error_with_diagnostics(self, corpus):
        program = _program(
            """
            q(x, p) :- pages(x), price(@x, p), p < 3, p > 5.
            price(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            query="q",
        )
        with pytest.raises(ProgramLintError) as info:
            IFlexEngine(program, corpus)
        assert any(d.code == "ALOG010" for d in info.value.diagnostics)

    def test_validate_false_skips_the_check(self, corpus):
        program = _program(
            """
            q(x, p) :- pages(x), price(@x, p), p < 3, p > 5.
            price(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            query="q",
        )
        engine = IFlexEngine(program, corpus, validate=False)
        assert engine.lint_result is None
        # infeasible constraints simply produce an empty result
        assert engine.execute().tuple_count == 0

    def test_valid_program_keeps_warnings_on_lint_result(self, corpus):
        program = _program(
            """
            q(x, t) :- pages(x), title(@x, t).
            title(@x, t) :- from(@x, t).
            orphan(y) :- pages(y).
            """,
            query="q",
        )
        engine = IFlexEngine(program, corpus)
        assert engine.lint_result is not None
        assert engine.lint_result.ok
        assert "ALOG011" in engine.lint_result.codes()


class TestSessionSurfacing:
    def _session(self, corpus, developer):
        from repro.assistant.session import RefinementSession

        program = _program(
            """
            q(x, t) :- pages(x), title(@x, t).
            title(@x, t) :- from(@x, t).
            orphan(y) :- pages(y).
            """,
            query="q",
        )
        return RefinementSession(
            program, corpus, developer, max_iterations=1, subset_fraction=1.0
        )

    def test_trace_records_initial_lint_warnings(self, corpus):
        class Developer:
            questions_answered = 0

            def answer(self, question, registry):
                return None

        trace = self._session(corpus, Developer()).run()
        assert any(d.code == "ALOG011" for d in trace.lint_warnings)

    def test_notify_diagnostics_hook_is_called(self, corpus):
        seen = []

        class Developer:
            questions_answered = 0

            def answer(self, question, registry):
                return None

            def notify_diagnostics(self, diagnostics):
                seen.extend(diagnostics)

        self._session(corpus, Developer()).run()
        assert any(d.code == "ALOG011" for d in seen)

    def test_interactive_developer_prints_warnings(self, corpus):
        from repro.assistant.interactive import InteractiveDeveloper

        lines = []
        developer = InteractiveDeveloper(
            input_fn=lambda prompt: "", output_fn=lines.append
        )
        self._session(corpus, developer).run()
        joined = "\n".join(lines)
        assert "program warnings:" in joined
        assert "ALOG011" in joined
