"""Self-lint: every program this repository ships must analyze clean.

Zero error-severity diagnostics anywhere; the warnings that do exist
are pinned per source so a regression (new dead rule, new unused
variable) fails loudly instead of rotting silently.
"""

import pathlib
import re

import pytest

from repro.analysis import analyze_program, analyze_source
from repro.experiments.dblife_tasks import build_dblife_tasks
from repro.experiments.tasks import TASK_IDS, build_task

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
EXAMPLES = ROOT / "examples"

#: warnings we accept today, per program; everything else fails
EXPECTED_WARNINGS = {}


class TestTaskPrograms:
    @pytest.mark.parametrize("task_id", TASK_IDS)
    def test_task_program_has_no_errors(self, task_id):
        task = build_task(task_id, size=5, seed=0)
        result = analyze_program(task.program)
        assert not result.errors, result.render(task_id)
        codes = sorted(d.code for d in result.warnings)
        assert codes == EXPECTED_WARNINGS.get(task_id, []), result.render(task_id)

    def test_dblife_task_programs_have_no_errors(self):
        tasks = build_dblife_tasks(
            pages={"conference": 3, "project": 2, "homepage": 2}, seed=0
        )
        for task in tasks:
            result = analyze_program(task.program)
            assert not result.errors, result.render(task.name)
            codes = sorted(d.code for d in result.warnings)
            assert codes == EXPECTED_WARNINGS.get(task.name, []), result.render(
                task.name
            )


def _embedded_programs(path):
    """Triple-quoted Alog blocks inside an example script."""
    text = path.read_text(encoding="utf-8")
    blocks = re.findall(r'"""(.*?)"""', text, flags=re.DOTALL)
    return [b for b in blocks if ":-" in b]


class TestExamplePrograms:
    def test_example_scan_finds_programs(self):
        found = [
            path.name
            for path in sorted(EXAMPLES.glob("*.py"))
            if _embedded_programs(path)
        ]
        # keep this list in sync when examples gain embedded programs
        assert found == ["custom_feature.py", "quickstart.py"]

    @pytest.mark.parametrize(
        "name", ["custom_feature.py", "quickstart.py"]
    )
    def test_embedded_programs_have_no_errors(self, name):
        for source in _embedded_programs(EXAMPLES / name):
            result = analyze_source(
                source,
                p_functions=("similar", "approxMatch"),
                assume_extensional=True,
            )
            assert not result.errors, "%s:\n%s" % (name, result.render(name))
