"""Stratification: SCC-based recursion classification (ALOG016).

The stratify pass classifies cycles stratified-safe (plain relational
recursion — evaluated by the engine's semi-naive fixpoint loop and
reported as an *informational* ALOG016) or genuinely unsafe (through ψ,
IE extraction, or procedures — still an ALOG016 error, and execution
refuses them with the stratum-aware message)."""

import pytest

from repro.analysis import analyze_source
from repro.errors import EvaluationError
from repro.processor.executor import evaluation_order
from repro.xlog.program import Program

STRATIFIED_SAFE = """
q(t) :- docs(d), reach(t).
reach(t) :- base(t).
reach(t) :- reach(s), base(t), s = t.
base(t) :- docs(d), title(@d, t).
title(@d, t) :- from(@d, t), bold_font(t) = yes.
"""

UNSAFE_PSI = """
q(t)? :- docs(d), q(t).
"""

ACYCLIC = """
q(t) :- docs(d), title(@d, t).
title(@d, t) :- from(@d, t), bold_font(t) = yes.
"""


def lint(source, **kwargs):
    kwargs.setdefault("extensional", ["docs"])
    kwargs.setdefault("query", "q")
    return analyze_source(source, **kwargs)


class TestStrataArtifact:
    def test_acyclic_program_gets_dependency_ordered_strata(self):
        result = lint(ACYCLIC)
        info = result.stratification
        assert info is not None
        assert not info.recursive
        assert info.strata == (("title",), ("q",))
        assert info.stratum_of["q"] == 1

    def test_strata_ride_on_the_json_summary(self):
        data = lint(ACYCLIC).to_dict("p.alog")
        assert data["strata"] == {
            "strata": [["title"], ["q"]],
            "cycles": [],
        }


class TestStratifiedSafe:
    def test_safe_cycle_is_classified_as_an_info(self):
        result = lint(STRATIFIED_SAFE)
        info = result.stratification
        cycle = info.cycle_for("reach")
        assert cycle is not None and cycle.safe
        assert cycle.stratum == 2
        assert info.strata[2] == ("reach",)
        # safe recursion executes: ALOG016 is advisory, not blocking
        found = [d for d in result.diagnostics if d.code == "ALOG016"]
        assert len(found) == 1
        assert found[0].severity == "info"
        assert result.ok
        assert "stratified-safe (stratum 2)" in found[0].message
        assert "semi-naive fixpoint" in found[0].message

    def test_evaluation_order_returns_the_recursive_group(self):
        program = Program.parse(
            STRATIFIED_SAFE, extensional=["docs"], query="q"
        )
        order = evaluation_order(program)
        assert ("reach",) in order
        # dependencies first: base before the recursive group, the
        # query last
        assert order.index(("base",)) < order.index(("reach",))
        assert order.index(("reach",)) < order.index(("q",))


class TestUnsafeCycles:
    def test_psi_inside_the_cycle_is_unsafe(self):
        result = lint(UNSAFE_PSI)
        cycle = result.stratification.cycle_for("q")
        assert cycle is not None and not cycle.safe
        assert "ψ annotation" in cycle.reason
        found = [d for d in result.diagnostics if d.code == "ALOG016"]
        assert len(found) == 1
        assert "cannot be stratified" in found[0].message

    def test_procedural_atom_inside_the_cycle_is_unsafe(self):
        result = lint(
            """
            q(t) :- docs(d), q(s), cleanup(@s, t).
            """,
            p_predicates={"cleanup": 2},
        )
        cycle = result.stratification.cycle_for("q")
        assert cycle is not None and not cycle.safe
        assert "procedural predicate 'cleanup'" in cycle.reason

    def test_mutual_recursion_reports_one_cycle_with_the_walk(self):
        result = lint(
            """
            a(t) :- docs(d), b(t).
            b(t) :- docs(d), a(t).
            q(t) :- docs(d), a(t).
            """
        )
        cycles = result.stratification.cycles
        assert len(cycles) == 1
        assert cycles[0].members == ("a", "b")
        assert cycles[0].path[0] == cycles[0].path[-1]
        found = [d for d in result.diagnostics if d.code == "ALOG016"]
        assert len(found) == 1

    def test_unsafe_cycle_raises_stratum_aware_at_evaluation_too(self):
        program = Program.parse(UNSAFE_PSI, extensional=["docs"])
        with pytest.raises(EvaluationError) as err:
            evaluation_order(program)
        assert "cannot be stratified" in str(err.value)


class TestPlanLintAndRecursion:
    def test_safe_recursion_gets_a_plan_report(self):
        result = lint(STRATIFIED_SAFE, plan=True)
        assert result.plan_report is not None

    def test_unsafe_recursion_still_skips_the_plan_lint(self):
        result = lint(UNSAFE_PSI, plan=True)
        assert result.plan_report is None
