"""The ``repro lint`` subcommand and the ``run`` pre-execution gate."""

import json

import pytest

from repro.cli import main

MULTI_DEFECT = """\
R1: result(t, p, zz) :- talks(d), title(@d, t), sp(@d, p), p < 3, p > 5.
D1: title(@d, t) :- from(@d, t), sparkly(t) = yes.
D2: sp(@d, p) :- from(@d, p), numeric(p) = yes, numeric(p) = no.
"""

CLEAN = """\
Q(t) :- talks(d), title(@d, t).
title(@d, t) :- from(@d, t), bold_font(t) = yes.
"""


@pytest.fixture
def defective(tmp_path):
    path = tmp_path / "broken.alog"
    path.write_text(MULTI_DEFECT, encoding="utf-8")
    return path


class TestLintAcceptance:
    """The issue's acceptance scenario: one invocation, all defects."""

    def test_reports_every_defect_with_codes_and_spans(self, defective, capsys):
        exit_code = main(["lint", str(defective), "--extensional", "talks"])
        out = capsys.readouterr().out
        assert exit_code == 1
        # three distinct defects from three different passes
        assert "ALOG001" in out  # unsafe head variable zz
        assert "ALOG009" in out  # numeric yes ∧ no in D2
        assert "ALOG010" in out  # p < 3 ∧ p > 5 in R1
        # every diagnostic line carries path:line:column
        for line in out.splitlines()[:-1]:
            assert line.startswith(str(defective) + ":"), line
            _, row, col = line.split(":")[:3]
            assert row.isdigit() and col.isdigit()

    def test_json_round_trips(self, defective, capsys):
        exit_code = main(
            ["lint", str(defective), "--extensional", "talks", "--json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert data["program"] == str(defective)
        found = {d["code"] for d in data["diagnostics"]}
        assert {"ALOG001", "ALOG009", "ALOG010"} <= found
        assert data["summary"]["errors"] >= 3


class TestLintModes:
    def test_clean_program_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(CLEAN, encoding="utf-8")
        assert main(["lint", str(path), "--extensional", "talks"]) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_permissive_default_vs_strict(self, tmp_path, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(CLEAN, encoding="utf-8")
        # no --extensional: 'talks' is undeclared
        assert main(["lint", str(path)]) == 0
        assert "ALOG013" in capsys.readouterr().out
        assert main(["lint", str(path), "--strict"]) == 1
        assert "ALOG002" in capsys.readouterr().out

    def test_table_declares_name_without_reading_path(self, tmp_path, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(CLEAN, encoding="utf-8")
        code = main(
            ["lint", str(path), "--strict", "--table", "talks=/definitely/missing"]
        )
        assert code == 0

    def test_parse_error_is_alog000(self, tmp_path, capsys):
        path = tmp_path / "bad.alog"
        path.write_text("Q(x :- docs(x).", encoding="utf-8")
        assert main(["lint", str(path)]) == 1
        assert "ALOG000" in capsys.readouterr().out

    def test_missing_file_is_a_clean_systemexit(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lint", str(tmp_path / "nope.alog")])


WARNING_ONLY = """\
Q(t) :- talks(d), title(@d, t).
title(@d, t) :- from(@d, t), bold_font(t) = yes.
orphan(y) :- talks(y).
"""

WIDE_JOIN = """\
pair(x, y) :- talks(d), talks(e), t1(@d, x), t2(@e, y).
t1(@d, x) :- from(@d, x), numeric(x) = yes.
t2(@e, y) :- from(@e, y), numeric(y) = yes.
"""


class TestExitCodeSemantics:
    def test_warnings_alone_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "warned.alog"
        path.write_text(WARNING_ONLY, encoding="utf-8")
        assert main(["lint", str(path), "--extensional", "talks"]) == 0
        assert "ALOG011" in capsys.readouterr().out

    def test_strict_promotes_warnings_to_failure(self, tmp_path, capsys):
        path = tmp_path / "warned.alog"
        path.write_text(WARNING_ONLY, encoding="utf-8")
        code = main(
            ["lint", str(path), "--extensional", "talks", "--strict"]
        )
        assert code == 1
        assert "ALOG011" in capsys.readouterr().out

    def test_strict_does_not_fail_on_infos(self, tmp_path, capsys):
        path = tmp_path / "info.alog"
        path.write_text(
            "person(p) :- talks(d), name(@d, p).\n"
            "name(@d, p) :- from(@d, p), person_name(p) = yes.\n",
            encoding="utf-8",
        )
        code = main(
            ["lint", str(path), "--extensional", "talks", "--strict", "--plan"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ALOG019" in out  # reported, but advisory


class TestPlanFlag:
    def test_plan_prints_the_report_and_flags_cross_products(
        self, tmp_path, capsys
    ):
        path = tmp_path / "wide.alog"
        path.write_text(WIDE_JOIN, encoding="utf-8")
        code = main(["lint", str(path), "--extensional", "talks", "--plan"])
        out = capsys.readouterr().out
        assert code == 0  # ALOG020 is a warning; no --strict
        assert "ALOG020" in out
        assert "plan:" in out
        assert "locality" in out

    def test_without_plan_no_plan_codes_or_table(self, tmp_path, capsys):
        path = tmp_path / "wide.alog"
        path.write_text(WIDE_JOIN, encoding="utf-8")
        assert main(["lint", str(path), "--extensional", "talks"]) == 0
        out = capsys.readouterr().out
        assert "ALOG020" not in out
        assert "plan:" not in out

    def test_json_payload_carries_plan_and_strata(self, tmp_path, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(CLEAN, encoding="utf-8")
        main(["lint", str(path), "--extensional", "talks", "--plan", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["strata"]["strata"] == [["title"], ["Q"]]
        assert data["plan"]["rules"][0]["predicate"] == "Q"


class TestSarifOutput:
    def test_sarif_report_is_written_and_well_formed(self, tmp_path, capsys):
        program = tmp_path / "broken.alog"
        program.write_text(MULTI_DEFECT, encoding="utf-8")
        out_path = tmp_path / "lint.sarif"
        code = main(
            [
                "lint", str(program), "--extensional", "talks",
                "--sarif", str(out_path),
            ]
        )
        assert code == 1
        log = json.loads(out_path.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "ALOG017" in rule_ids  # full registry, not just hits
        results = run["results"]
        assert {r["ruleId"] for r in results} >= {"ALOG001", "ALOG009"}
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("broken.alog")
        assert location["region"]["startLine"] >= 1


class TestDeclarationFlags:
    def test_feature_flag_declares_custom_features(self, tmp_path, capsys):
        path = tmp_path / "custom.alog"
        path.write_text(
            "confs(c) :- talks(d), conf(@d, c).\n"
            "conf(@d, c) :- from(@d, c), all_caps(c) = yes.\n",
            encoding="utf-8",
        )
        base = ["lint", str(path), "--extensional", "talks", "--strict"]
        assert main(base) == 1  # unknown feature is ALOG003
        assert "ALOG003" in capsys.readouterr().out
        assert main(base + ["--feature", "all_caps"]) == 0

    def test_p_predicate_flag_declares_procedures(self, tmp_path, capsys):
        path = tmp_path / "proc.alog"
        path.write_text(
            "q(t) :- talks(d), extractType(@d, t).\n", encoding="utf-8"
        )
        base = ["lint", str(path), "--extensional", "talks", "--strict"]
        assert main(base) == 1  # unknown predicate is ALOG002
        assert "ALOG002" in capsys.readouterr().out
        assert main(base + ["--p-predicate", "extractType"]) == 0


@pytest.fixture
def html_dir(tmp_path):
    directory = tmp_path / "pages"
    directory.mkdir()
    (directory / "a.html").write_text(
        "<p><b>Widget</b> Price: $120</p>", encoding="utf-8"
    )
    return directory


class TestRunGate:
    def test_defective_program_blocked_before_execution(
        self, tmp_path, html_dir, capsys
    ):
        path = tmp_path / "broken.alog"
        path.write_text(
            "q(x, ghost) :- pages(x).\n", encoding="utf-8"
        )
        code = main(["run", str(path), "--table", "pages=%s" % html_dir])
        captured = capsys.readouterr()
        assert code == 1
        assert "ALOG001" in captured.err
        assert captured.out == ""  # nothing executed

    def test_warnings_do_not_block_and_no_lint_silences_them(
        self, tmp_path, html_dir, capsys
    ):
        path = tmp_path / "warned.alog"
        path.write_text(
            "q(x, t) :- pages(x), title(@x, t).\n"
            "title(@x, t) :- from(@x, t).\n"
            "orphan(y) :- pages(y).\n",  # dead rule: ALOG011 warning
            encoding="utf-8",
        )
        args = ["run", str(path), "--table", "pages=%s" % html_dir]
        assert main(args + ["--query", "q"]) == 0
        assert "ALOG011" in capsys.readouterr().err
        assert main(args + ["--query", "q", "--no-lint"]) == 0
        assert "ALOG" not in capsys.readouterr().err

    def test_clean_program_runs(self, tmp_path, html_dir, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(
            "q(x, t) :- pages(x), title(@x, t).\n"
            "title(@x, t) :- from(@x, t), bold_font(t) = yes.\n",
            encoding="utf-8",
        )
        assert main(["run", str(path), "--table", "pages=%s" % html_dir]) == 0
        assert "tuples" in capsys.readouterr().out


class TestCheckCommand:
    """``repro check``: strict lint against a real corpus, plan included."""

    def test_clean_program_checks_out(self, tmp_path, html_dir, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(
            "q(x, t) :- pages(x), title(@x, t).\n"
            "title(@x, t) :- from(@x, t), bold_font(t) = yes.\n",
            encoding="utf-8",
        )
        code = main(["check", str(path), "--table", "pages=%s" % html_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "plan:" in out  # check always includes the plan lint

    def test_resolution_is_strict_against_the_corpus(
        self, tmp_path, html_dir, capsys
    ):
        path = tmp_path / "typo.alog"
        path.write_text("q(x) :- pagez(x).\n", encoding="utf-8")
        code = main(["check", str(path), "--table", "pages=%s" % html_dir])
        assert code == 1
        assert "ALOG002" in capsys.readouterr().out

    def test_strict_promotes_plan_warnings(self, tmp_path, html_dir, capsys):
        path = tmp_path / "wide.alog"
        path.write_text(
            "pair(x, y) :- pages(d), pages(e), t1(@d, x), t2(@e, y).\n"
            "t1(@d, x) :- from(@d, x), numeric(x) = yes.\n"
            "t2(@e, y) :- from(@e, y), numeric(y) = yes.\n",
            encoding="utf-8",
        )
        args = ["check", str(path), "--table", "pages=%s" % html_dir]
        assert main(args) == 0  # ALOG020 warning alone passes
        assert "ALOG020" in capsys.readouterr().out
        assert main(args + ["--strict"]) == 1

    def test_sarif_out_from_check(self, tmp_path, html_dir, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(
            "q(x, t) :- pages(x), title(@x, t).\n"
            "title(@x, t) :- from(@x, t), bold_font(t) = yes.\n",
            encoding="utf-8",
        )
        out_path = tmp_path / "check.sarif"
        args = [
            "check", str(path), "--table", "pages=%s" % html_dir,
            "--sarif", str(out_path),
        ]
        assert main(args) == 0
        log = json.loads(out_path.read_text(encoding="utf-8"))
        assert log["runs"][0]["results"] == []
