"""The ``repro lint`` subcommand and the ``run`` pre-execution gate."""

import json

import pytest

from repro.cli import main

MULTI_DEFECT = """\
R1: result(t, p, zz) :- talks(d), title(@d, t), sp(@d, p), p < 3, p > 5.
D1: title(@d, t) :- from(@d, t), sparkly(t) = yes.
D2: sp(@d, p) :- from(@d, p), numeric(p) = yes, numeric(p) = no.
"""

CLEAN = """\
Q(t) :- talks(d), title(@d, t).
title(@d, t) :- from(@d, t), bold_font(t) = yes.
"""


@pytest.fixture
def defective(tmp_path):
    path = tmp_path / "broken.alog"
    path.write_text(MULTI_DEFECT, encoding="utf-8")
    return path


class TestLintAcceptance:
    """The issue's acceptance scenario: one invocation, all defects."""

    def test_reports_every_defect_with_codes_and_spans(self, defective, capsys):
        exit_code = main(["lint", str(defective), "--extensional", "talks"])
        out = capsys.readouterr().out
        assert exit_code == 1
        # three distinct defects from three different passes
        assert "ALOG001" in out  # unsafe head variable zz
        assert "ALOG009" in out  # numeric yes ∧ no in D2
        assert "ALOG010" in out  # p < 3 ∧ p > 5 in R1
        # every diagnostic line carries path:line:column
        for line in out.splitlines()[:-1]:
            assert line.startswith(str(defective) + ":"), line
            _, row, col = line.split(":")[:3]
            assert row.isdigit() and col.isdigit()

    def test_json_round_trips(self, defective, capsys):
        exit_code = main(
            ["lint", str(defective), "--extensional", "talks", "--json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert data["program"] == str(defective)
        found = {d["code"] for d in data["diagnostics"]}
        assert {"ALOG001", "ALOG009", "ALOG010"} <= found
        assert data["summary"]["errors"] >= 3


class TestLintModes:
    def test_clean_program_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(CLEAN, encoding="utf-8")
        assert main(["lint", str(path), "--extensional", "talks"]) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_permissive_default_vs_strict(self, tmp_path, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(CLEAN, encoding="utf-8")
        # no --extensional: 'talks' is undeclared
        assert main(["lint", str(path)]) == 0
        assert "ALOG013" in capsys.readouterr().out
        assert main(["lint", str(path), "--strict"]) == 1
        assert "ALOG002" in capsys.readouterr().out

    def test_table_declares_name_without_reading_path(self, tmp_path, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(CLEAN, encoding="utf-8")
        code = main(
            ["lint", str(path), "--strict", "--table", "talks=/definitely/missing"]
        )
        assert code == 0

    def test_parse_error_is_alog000(self, tmp_path, capsys):
        path = tmp_path / "bad.alog"
        path.write_text("Q(x :- docs(x).", encoding="utf-8")
        assert main(["lint", str(path)]) == 1
        assert "ALOG000" in capsys.readouterr().out

    def test_missing_file_is_a_clean_systemexit(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lint", str(tmp_path / "nope.alog")])


@pytest.fixture
def html_dir(tmp_path):
    directory = tmp_path / "pages"
    directory.mkdir()
    (directory / "a.html").write_text(
        "<p><b>Widget</b> Price: $120</p>", encoding="utf-8"
    )
    return directory


class TestRunGate:
    def test_defective_program_blocked_before_execution(
        self, tmp_path, html_dir, capsys
    ):
        path = tmp_path / "broken.alog"
        path.write_text(
            "q(x, ghost) :- pages(x).\n", encoding="utf-8"
        )
        code = main(["run", str(path), "--table", "pages=%s" % html_dir])
        captured = capsys.readouterr()
        assert code == 1
        assert "ALOG001" in captured.err
        assert captured.out == ""  # nothing executed

    def test_warnings_do_not_block_and_no_lint_silences_them(
        self, tmp_path, html_dir, capsys
    ):
        path = tmp_path / "warned.alog"
        path.write_text(
            "q(x, t) :- pages(x), title(@x, t).\n"
            "title(@x, t) :- from(@x, t).\n"
            "orphan(y) :- pages(y).\n",  # dead rule: ALOG011 warning
            encoding="utf-8",
        )
        args = ["run", str(path), "--table", "pages=%s" % html_dir]
        assert main(args + ["--query", "q"]) == 0
        assert "ALOG011" in capsys.readouterr().err
        assert main(args + ["--query", "q", "--no-lint"]) == 0
        assert "ALOG" not in capsys.readouterr().err

    def test_clean_program_runs(self, tmp_path, html_dir, capsys):
        path = tmp_path / "ok.alog"
        path.write_text(
            "q(x, t) :- pages(x), title(@x, t).\n"
            "title(@x, t) :- from(@x, t), bold_font(t) = yes.\n",
            encoding="utf-8",
        )
        assert main(["run", str(path), "--table", "pages=%s" % html_dir]) == 0
        assert "tuples" in capsys.readouterr().out
