"""ALOG016: recursive predicates, at lint time and at evaluation time.

The bottom-up evaluator computes each intensional predicate exactly
once, so recursion can never be evaluated; the analyzer's recursion
pass reports it pre-execution and ``evaluation_order`` raises the same
diagnostic (with the offending rule's source span) instead of a bare
error if a recursive program reaches the engine anyway.
"""

import pytest

from repro.analysis import analyze_source
from repro.errors import EvaluationError
from repro.processor.executor import evaluation_order
from repro.xlog.program import Program

SELF_RECURSIVE = """
q(t) :- docs(d), q(t).
"""

MUTUAL = """
a(t) :- docs(d), b(t).
b(t) :- docs(d), a(t).
q(t) :- docs(d), a(t).
"""

ACYCLIC = """
q(t) :- docs(d), title(@d, t).
title(@d, t) :- from(@d, t), bold_font(t) = yes.
"""


def lint(source):
    return analyze_source(source, extensional=["docs"])


class TestAnalyzerPass:
    def test_self_recursion_is_alog016(self):
        result = lint(SELF_RECURSIVE)
        found = [d for d in result.diagnostics if d.code == "ALOG016"]
        assert found and not result.ok
        assert "recursive predicate" in found[0].message
        # anchored at the offending rule, not a bare program-level error
        assert found[0].line is not None
        assert found[0].rule_label

    def test_mutual_recursion_reports_the_cycle(self):
        result = lint(MUTUAL)
        found = [d for d in result.diagnostics if d.code == "ALOG016"]
        assert found
        assert "a" in found[0].message and "b" in found[0].message

    def test_cycle_reported_once_not_once_per_member(self):
        result = lint(MUTUAL)
        assert sum(1 for d in result.diagnostics if d.code == "ALOG016") == 1

    def test_acyclic_program_is_clean(self):
        result = lint(ACYCLIC)
        assert not [d for d in result.diagnostics if d.code == "ALOG016"]


class TestEvaluationOrder:
    def build(self, source):
        return Program.parse(source, extensional=["docs"], query="q")

    def test_self_recursion_raises_diagnostic_error(self):
        with pytest.raises(EvaluationError) as err:
            evaluation_order(self.build(SELF_RECURSIVE))
        diagnostic = err.value.diagnostic
        assert diagnostic.code == "ALOG016"
        assert diagnostic.line is not None
        assert "ALOG016" in str(err.value)

    def test_cycle_raises_diagnostic_error_with_span(self):
        with pytest.raises(EvaluationError) as err:
            evaluation_order(self.build(MUTUAL))
        diagnostic = err.value.diagnostic
        assert diagnostic.code == "ALOG016"
        assert diagnostic.line is not None and diagnostic.column is not None

    def test_acyclic_order_is_bottom_up(self):
        program = self.build(
            """
            q(t) :- docs(d), mid(t).
            mid(t) :- docs(d), from(@d, t).
            """
        )
        order = evaluation_order(program)
        assert order.index("mid") < order.index("q")
