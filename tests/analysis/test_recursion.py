"""ALOG016: recursive predicates, at lint time and at evaluation time.

Stratified-safe recursion (plain relational cycles) now *executes* —
the analyzer reports an informational ALOG016 and ``evaluation_order``
returns the strongly-connected component as one evaluation group for
the engine's semi-naive fixpoint loop.  Unsafe cycles (through ψ, IE
extraction, or procedural predicates) keep the ALOG016 error, and
``evaluation_order`` raises the same diagnostic (with the offending
rule's source span) if such a program reaches the engine anyway.
"""

import pytest

from repro.analysis import analyze_source
from repro.errors import EvaluationError
from repro.processor.executor import evaluation_order
from repro.xlog.program import Program

SELF_RECURSIVE = """
q(t) :- docs(d), q(t).
"""

MUTUAL = """
a(t) :- docs(d), b(t).
b(t) :- docs(d), a(t).
q(t) :- docs(d), a(t).
"""

UNSAFE_PSI = """
q(t)? :- docs(d), q(t).
"""

UNSAFE_MUTUAL = """
a(t)? :- docs(d), b(t).
b(t) :- docs(d), a(t).
q(t) :- docs(d), a(t).
"""

ACYCLIC = """
q(t) :- docs(d), title(@d, t).
title(@d, t) :- from(@d, t), bold_font(t) = yes.
"""


def lint(source):
    return analyze_source(source, extensional=["docs"])


class TestAnalyzerPass:
    def test_safe_self_recursion_is_an_informational_alog016(self):
        result = lint(SELF_RECURSIVE)
        found = [d for d in result.diagnostics if d.code == "ALOG016"]
        assert found and result.ok
        assert found[0].severity == "info"
        assert "stratified-safe" in found[0].message
        # still anchored at the offending rule
        assert found[0].line is not None
        assert found[0].rule_label

    def test_unsafe_self_recursion_is_an_alog016_error(self):
        result = lint(UNSAFE_PSI)
        found = [d for d in result.diagnostics if d.code == "ALOG016"]
        assert found and not result.ok
        assert "cannot be stratified" in found[0].message
        assert found[0].line is not None

    def test_mutual_recursion_reports_the_cycle(self):
        result = lint(MUTUAL)
        found = [d for d in result.diagnostics if d.code == "ALOG016"]
        assert found
        assert "a" in found[0].message and "b" in found[0].message

    def test_cycle_reported_once_not_once_per_member(self):
        result = lint(MUTUAL)
        assert sum(1 for d in result.diagnostics if d.code == "ALOG016") == 1

    def test_acyclic_program_is_clean(self):
        result = lint(ACYCLIC)
        assert not [d for d in result.diagnostics if d.code == "ALOG016"]


class TestEvaluationOrder:
    def build(self, source):
        return Program.parse(source, extensional=["docs"], query="q")

    def test_safe_self_recursion_is_its_own_group(self):
        order = evaluation_order(self.build(SELF_RECURSIVE))
        assert ("q",) in order

    def test_safe_mutual_recursion_groups_the_component(self):
        order = evaluation_order(self.build(MUTUAL))
        assert ("a", "b") in order
        assert order.index(("a", "b")) < order.index(("q",))

    def test_unsafe_recursion_raises_diagnostic_error(self):
        with pytest.raises(EvaluationError) as err:
            evaluation_order(self.build(UNSAFE_PSI))
        diagnostic = err.value.diagnostic
        assert diagnostic.code == "ALOG016"
        assert diagnostic.line is not None
        assert "ALOG016" in str(err.value)

    def test_unsafe_cycle_raises_diagnostic_error_with_span(self):
        with pytest.raises(EvaluationError) as err:
            evaluation_order(self.build(UNSAFE_MUTUAL))
        diagnostic = err.value.diagnostic
        assert diagnostic.code == "ALOG016"
        assert diagnostic.line is not None and diagnostic.column is not None

    def test_acyclic_order_is_bottom_up(self):
        program = self.build(
            """
            q(t) :- docs(d), mid(t).
            mid(t) :- docs(d), from(@d, t).
            """
        )
        order = evaluation_order(program)
        assert order.index(("mid",)) < order.index(("q",))
