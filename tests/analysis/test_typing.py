"""Typed dataflow: per-predicate column types (ALOG017, ALOG018).

Each code has a triggering fixture and a clean sibling; the inferred
:class:`PredicateType` artifacts are pinned through ``result.types``.
"""

from repro.analysis import analyze_program, analyze_source
from repro.analysis.typing import (
    CONFLICT,
    FLOAT,
    INT,
    SPAN,
    STR,
    join_types,
)
from repro.xlog.program import PPredicate, Program


def lint(source, **kwargs):
    kwargs.setdefault("extensional", ["docs"])
    return analyze_source(source, **kwargs)


def codes(result):
    return [d.code for d in result.diagnostics]


class TestLattice:
    def test_join_is_commutative_and_absorbs_unknown(self):
        assert join_types(None, SPAN) == SPAN
        assert join_types(SPAN, None) == SPAN
        assert join_types(SPAN, SPAN) == SPAN

    def test_int_and_float_join_to_float(self):
        assert join_types(INT, FLOAT) == FLOAT
        assert join_types(FLOAT, INT) == FLOAT

    def test_any_other_mismatch_is_a_conflict(self):
        assert join_types(SPAN, INT) == CONFLICT
        assert join_types(STR, FLOAT) == CONFLICT
        assert join_types(CONFLICT, SPAN) == CONFLICT


class TestInference:
    def test_extensional_and_from_columns_are_doc_local_spans(self):
        result = lint(
            """
            q(t) :- docs(d), title(@d, t).
            title(@d, t) :- from(@d, t), bold_font(t) = yes.
            """
        )
        title = result.types["title"]
        assert title.types[1] == SPAN
        assert title.doc_local[1] is True

    def test_p_predicate_output_types_flow_through_rules(self):
        program = Program.parse(
            """
            q(x) :- docs(d), getPrice(@d, x).
            """,
            extensional=["docs"],
            p_predicates={
                "getPrice": PPredicate(
                    "getPrice", lambda d: [], 1, 1, output_types=(INT,)
                )
            },
        )
        result = analyze_program(program)
        assert result.types["q"].types == (INT,)
        assert result.types["q"].doc_local == (False,)

    def test_types_ride_on_the_json_payload(self):
        result = lint("q(t) :- docs(t).")
        assert result.types["q"].render() == "q(t: span@doc)"


class TestAlog017:
    def _conflicted_program(self):
        return Program.parse(
            """
            q(x) :- docs(d), getPrice(@d, x).
            q(x) :- docs(d), title(@d, x).
            title(@d, x) :- from(@d, x), bold_font(x) = yes.
            """,
            extensional=["docs"],
            p_predicates={
                "getPrice": PPredicate(
                    "getPrice", lambda d: [], 1, 1, output_types=(INT,)
                )
            },
        )

    def test_cross_rule_head_conflict_is_alog017(self):
        result = analyze_program(self._conflicted_program())
        found = [d for d in result.diagnostics if d.code == "ALOG017"]
        assert len(found) == 1
        assert not result.ok
        assert "int" in found[0].message and "span" in found[0].message
        assert result.types["q"].types == (CONFLICT,)

    def test_agreeing_rules_are_clean(self):
        result = lint(
            """
            q(x) :- docs(d), a(@d, x).
            q(x) :- docs(d), b(@d, x).
            a(@d, x) :- from(@d, x), bold_font(x) = yes.
            b(@d, x) :- from(@d, x), italic_font(x) = yes.
            """
        )
        assert "ALOG017" not in codes(result)
        assert result.types["q"].types == (SPAN,)

    def test_int_vs_float_heads_merge_without_conflict(self):
        program = Program.parse(
            """
            q(x) :- docs(d), asInt(@d, x).
            q(x) :- docs(d), asFloat(@d, x).
            """,
            extensional=["docs"],
            p_predicates={
                "asInt": PPredicate(
                    "asInt", lambda d: [], 1, 1, output_types=(INT,)
                ),
                "asFloat": PPredicate(
                    "asFloat", lambda d: [], 1, 1, output_types=(FLOAT,)
                ),
            },
        )
        result = analyze_program(program)
        assert "ALOG017" not in codes(result)
        assert result.types["q"].types == (FLOAT,)


class TestAlog018:
    def test_boolean_feature_with_stray_value(self):
        result = lint(
            """
            q(p) :- docs(d), price(@d, p).
            price(@d, p) :- from(@d, p), numeric(p) = maybe.
            """
        )
        found = [d for d in result.diagnostics if d.code == "ALOG018"]
        assert len(found) == 1
        assert "maybe" in found[0].message

    def test_parameterised_feature_with_wrong_scalar_kind(self):
        result = lint(
            """
            q(p) :- docs(d), price(@d, p).
            price(@d, p) :- from(@d, p), numeric(p) = yes,
                max_length(p) = "ten", pattern(p) = 5.
            """
        )
        messages = [
            d.message for d in result.diagnostics if d.code == "ALOG018"
        ]
        assert len(messages) == 2
        assert any("integer parameter" in m for m in messages)
        assert any("text parameter" in m for m in messages)

    def test_ordering_against_text_never_holds(self):
        result = lint(
            """
            q(p) :- docs(d), price(@d, p), p < "cheap".
            price(@d, p) :- from(@d, p), numeric(p) = yes.
            """
        )
        found = [d for d in result.diagnostics if d.code == "ALOG018"]
        assert len(found) == 1
        assert "numeric-only" in found[0].message

    def test_well_typed_constraints_and_comparisons_are_clean(self):
        result = lint(
            """
            q(p) :- docs(d), price(@d, p), p < 500000.
            price(@d, p) :- from(@d, p), numeric(p) = yes,
                max_length(p) = 10, pattern(p) = "[0-9,]+".
            """
        )
        assert "ALOG018" not in codes(result)
        assert result.ok

    def test_opaque_declared_features_are_skipped(self):
        from repro.features.registry import default_registry

        registry = default_registry().declare("all_caps")
        result = analyze_source(
            """
            q(p) :- docs(d), price(@d, p).
            price(@d, p) :- from(@d, p), all_caps(p) = 7.
            """,
            extensional=["docs"],
            registry=registry,
        )
        assert "ALOG018" not in codes(result)
        assert "ALOG003" not in codes(result)
