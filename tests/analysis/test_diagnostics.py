"""Diagnostic / AnalysisResult mechanics: rendering, JSON, ordering."""

import json

from repro.analysis import CODES, ERROR, WARNING, AnalysisResult, Diagnostic


def _diag(**kwargs):
    base = dict(severity=ERROR, code="ALOG001", message="boom")
    base.update(kwargs)
    return Diagnostic(**base)


class TestDiagnostic:
    def test_render_full_location(self):
        d = _diag(line=3, column=7, rule_label="R1")
        assert d.render("prog.alog") == (
            "prog.alog:3:7: error ALOG001: boom [rule R1]"
        )

    def test_render_without_span_or_path(self):
        assert _diag().render() == "error ALOG001: boom"

    def test_render_line_only(self):
        assert _diag(line=4).render() == "4: error ALOG001: boom"

    def test_span_property(self):
        d = _diag(line=2, column=5, end_line=2, end_column=9)
        assert d.span == (2, 5, 2, 9)
        assert _diag().span is None

    def test_title_comes_from_code_registry(self):
        assert _diag(code="ALOG001").title == "unsafe rule"

    def test_to_dict_round_trips_through_json(self):
        d = _diag(line=1, column=2, end_line=1, end_column=8, rule_index=0)
        restored = json.loads(json.dumps(d.to_dict()))
        assert restored["code"] == "ALOG001"
        assert restored["line"] == 1
        assert restored["title"] == "unsafe rule"

    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert code.startswith("ALOG") and len(code) == 7
            assert severity in ("error", "warning", "info")
            assert title


class TestAnalysisResult:
    def test_errors_warnings_split_and_ok(self):
        result = AnalysisResult(
            [
                _diag(),
                _diag(severity=WARNING, code="ALOG011", message="dead"),
            ]
        )
        assert len(result.errors) == 1
        assert len(result.warnings) == 1
        assert not result.ok
        assert AnalysisResult([]).ok

    def test_summary_line_pluralization(self):
        assert AnalysisResult([_diag()]).summary_line() == "1 error, 0 warnings"

    def test_render_ends_with_summary(self):
        text = AnalysisResult([_diag(line=1)]).render("p.alog")
        assert text.splitlines()[-1] == "1 error, 0 warnings"

    def test_to_json_round_trips(self):
        result = AnalysisResult([_diag(line=9, column=1)])
        data = json.loads(result.to_json("p.alog", indent=2))
        assert data["program"] == "p.alog"
        assert data["summary"] == {"errors": 1, "warnings": 0, "infos": 0}
        assert data["diagnostics"][0]["code"] == "ALOG001"

    def test_sort_key_orders_by_position_then_severity(self):
        early = _diag(line=1, column=1)
        late = _diag(line=5, column=1)
        spanless = _diag()
        ordered = sorted([spanless, late, early], key=Diagnostic.sort_key)
        assert ordered == [early, late, spanless]

    def test_merged_stream_orders_by_line_col_code_across_passes(self):
        # codes from different pass families at the same source position
        # come out in code order, and position dominates code — the
        # deterministic merged-stream contract
        a = _diag(line=2, column=4, code="ALOG018")
        b = _diag(line=2, column=4, code="ALOG009")
        c = _diag(line=2, column=1, code="ALOG020", severity="warning")
        d = _diag(line=1, column=9, code="ALOG021", severity="warning")
        ordered = sorted([a, b, c, d], key=Diagnostic.sort_key)
        assert [x.code for x in ordered] == [
            "ALOG021", "ALOG020", "ALOG009", "ALOG018",
        ]

    def test_sorting_is_deterministic_under_input_permutation(self):
        import itertools

        diagnostics = [
            _diag(line=3, column=2, code="ALOG017"),
            _diag(line=3, column=2, code="ALOG016"),
            _diag(line=1, column=5, code="ALOG019", severity="info"),
            _diag(code="ALOG001"),
        ]
        baseline = sorted(diagnostics, key=Diagnostic.sort_key)
        for permutation in itertools.permutations(diagnostics):
            assert sorted(permutation, key=Diagnostic.sort_key) == baseline


class TestSarifExport:
    def test_log_shape_and_rules_table(self):
        result = AnalysisResult(
            [
                _diag(line=3, column=7, end_line=3, end_column=12),
                _diag(
                    severity=WARNING,
                    code="ALOG020",
                    message="fan-out",
                    line=5,
                ),
            ]
        )
        log = json.loads(result.to_sarif_json("prog.alog"))
        assert log["version"] == "2.1.0"
        assert log["$schema"].startswith("https://")
        run = log["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(CODES)  # the full registry, sorted
        assert len(run["results"]) == 2

    def test_severity_maps_to_sarif_levels(self):
        result = AnalysisResult(
            [
                _diag(line=1),
                _diag(severity=WARNING, code="ALOG020", line=2),
                _diag(severity="info", code="ALOG019", line=3),
            ]
        )
        log = json.loads(result.to_sarif_json("p.alog"))
        levels = [r["level"] for r in log["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]

    def test_result_location_carries_uri_and_region(self):
        result = AnalysisResult(
            [_diag(line=3, column=7, end_line=3, end_column=12)]
        )
        log = json.loads(result.to_sarif_json("dir/prog.alog"))
        physical = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]
        assert physical["artifactLocation"]["uri"] == "dir/prog.alog"
        region = physical["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] == 7
        assert region["endColumn"] == 12

    def test_spanless_diagnostic_keeps_the_uri_but_no_region(self):
        log = json.loads(AnalysisResult([_diag()]).to_sarif_json("p.alog"))
        physical = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]
        assert physical["artifactLocation"]["uri"] == "p.alog"
        assert "region" not in physical
