"""Diagnostic / AnalysisResult mechanics: rendering, JSON, ordering."""

import json

from repro.analysis import CODES, ERROR, WARNING, AnalysisResult, Diagnostic


def _diag(**kwargs):
    base = dict(severity=ERROR, code="ALOG001", message="boom")
    base.update(kwargs)
    return Diagnostic(**base)


class TestDiagnostic:
    def test_render_full_location(self):
        d = _diag(line=3, column=7, rule_label="R1")
        assert d.render("prog.alog") == (
            "prog.alog:3:7: error ALOG001: boom [rule R1]"
        )

    def test_render_without_span_or_path(self):
        assert _diag().render() == "error ALOG001: boom"

    def test_render_line_only(self):
        assert _diag(line=4).render() == "4: error ALOG001: boom"

    def test_span_property(self):
        d = _diag(line=2, column=5, end_line=2, end_column=9)
        assert d.span == (2, 5, 2, 9)
        assert _diag().span is None

    def test_title_comes_from_code_registry(self):
        assert _diag(code="ALOG001").title == "unsafe rule"

    def test_to_dict_round_trips_through_json(self):
        d = _diag(line=1, column=2, end_line=1, end_column=8, rule_index=0)
        restored = json.loads(json.dumps(d.to_dict()))
        assert restored["code"] == "ALOG001"
        assert restored["line"] == 1
        assert restored["title"] == "unsafe rule"

    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert code.startswith("ALOG") and len(code) == 7
            assert severity in ("error", "warning", "info")
            assert title


class TestAnalysisResult:
    def test_errors_warnings_split_and_ok(self):
        result = AnalysisResult(
            [
                _diag(),
                _diag(severity=WARNING, code="ALOG011", message="dead"),
            ]
        )
        assert len(result.errors) == 1
        assert len(result.warnings) == 1
        assert not result.ok
        assert AnalysisResult([]).ok

    def test_summary_line_pluralization(self):
        assert AnalysisResult([_diag()]).summary_line() == "1 error, 0 warnings"

    def test_render_ends_with_summary(self):
        text = AnalysisResult([_diag(line=1)]).render("p.alog")
        assert text.splitlines()[-1] == "1 error, 0 warnings"

    def test_to_json_round_trips(self):
        result = AnalysisResult([_diag(line=9, column=1)])
        data = json.loads(result.to_json("p.alog", indent=2))
        assert data["program"] == "p.alog"
        assert data["summary"] == {"errors": 1, "warnings": 0}
        assert data["diagnostics"][0]["code"] == "ALOG001"

    def test_sort_key_orders_by_position_then_severity(self):
        early = _diag(line=1, column=1)
        late = _diag(line=5, column=1)
        spanless = _diag()
        ordered = sorted([spanless, late, early], key=Diagnostic.sort_key)
        assert ordered == [early, late, spanless]
