"""Plan-level performance lint (ALOG019-ALOG021) and the plan report.

The pass compiles the program exactly the way the engine would and
walks the operator trees symbolically; each code has a triggering
fixture and a clean sibling.  The pass is opt-in (``plan=True``).
"""

from repro.analysis import analyze_source

CROSS_PRODUCT = """
pair(x, y) :- docs(d), docs(e), t1(@d, x), t2(@e, y).
t1(@d, x) :- from(@d, x), numeric(x) = yes.
t2(@e, y) :- from(@e, y), numeric(y) = yes.
"""

LINKED_JOIN = """
pair(x, y) :- docs(d), docs(e), t1(@d, x), t2(@e, y), x < y.
t1(@d, x) :- from(@d, x), numeric(x) = yes.
t2(@e, y) :- from(@e, y), numeric(y) = yes.
"""


def lint(source, **kwargs):
    kwargs.setdefault("extensional", ["docs"])
    kwargs.setdefault("plan", True)
    return analyze_source(source, **kwargs)


def codes(result):
    return [d.code for d in result.diagnostics]


class TestOptIn:
    def test_plan_lint_is_off_by_default(self):
        result = analyze_source(CROSS_PRODUCT, extensional=["docs"])
        assert "ALOG020" not in codes(result)
        assert result.plan_report is None

    def test_plan_true_attaches_the_report(self):
        result = lint(LINKED_JOIN)
        assert result.plan_report is not None
        assert result.plan_report.rows


class TestAlog019:
    def test_unindexable_first_narrowing_is_flagged(self):
        result = lint(
            """
            person(p) :- docs(d), name(@d, p).
            name(@d, p) :- from(@d, p), person_name(p) = yes.
            """
        )
        found = [d for d in result.diagnostics if d.code == "ALOG019"]
        assert len(found) == 1
        assert found[0].severity == "info"  # advisory, survives --strict
        assert "person_name" in found[0].message

    def test_indexable_first_narrowing_is_clean(self):
        result = lint(
            """
            person(p) :- docs(d), name(@d, p).
            name(@d, p) :- from(@d, p), capitalized(p) = yes,
                person_name(p) = yes.
            """
        )
        assert "ALOG019" not in codes(result)

    def test_opaque_declared_features_are_not_flagged(self):
        from repro.features.registry import default_registry

        result = analyze_source(
            """
            person(p) :- docs(d), name(@d, p).
            name(@d, p) :- from(@d, p), all_caps(p) = yes.
            """,
            extensional=["docs"],
            registry=default_registry().declare("all_caps"),
            plan=True,
        )
        assert "ALOG019" not in codes(result)


class TestAlog020:
    def test_cross_product_join_is_flagged(self):
        result = lint(CROSS_PRODUCT)
        found = [d for d in result.diagnostics if d.code == "ALOG020"]
        assert len(found) == 1
        assert "Cartesian product" in found[0].message
        assert found[0].severity == "warning"

    def test_linked_join_is_clean(self):
        result = lint(LINKED_JOIN)
        assert "ALOG020" not in codes(result)

    def test_p_predicate_over_unconstrained_expansion_is_flagged(self):
        result = lint(
            """
            q(t) :- docs(d), wide(@d, t).
            wide(@d, t) :- from(@d, s), cleanup(@s, t).
            """,
            p_predicates={"cleanup": 2},
        )
        found = [d for d in result.diagnostics if d.code == "ALOG020"]
        assert len(found) == 1
        assert "enumerate_values" in found[0].message

    def test_p_predicate_over_narrowed_expansion_is_clean(self):
        result = lint(
            """
            q(t) :- docs(d), wide(@d, t).
            wide(@d, t) :- from(@d, s), numeric(s) = yes, cleanup(@s, t).
            """,
            p_predicates={"cleanup": 2},
        )
        assert "ALOG020" not in codes(result)


class TestAlog021:
    def test_wide_attr_gathered_into_global_suffix_is_flagged(self):
        result = lint(
            """
            q(x, y) :- docs(d), docs(e), nums(@d, x), raw(@e, y), x < y.
            nums(@d, x) :- from(@d, x), numeric(x) = yes.
            raw(@e, y) :- from(@e, y).
            """
        )
        found = [d for d in result.diagnostics if d.code == "ALOG021"]
        assert len(found) == 1
        assert "'q'" in found[0].message and "y" in found[0].message

    def test_union_of_rules_with_a_wide_branch_is_flagged(self):
        result = lint(
            """
            q(t) :- docs(d), a(@d, t).
            q(t) :- docs(d), b(@d, t).
            a(@d, t) :- from(@d, t), numeric(t) = yes.
            b(@d, t) :- from(@d, t).
            """
        )
        assert "ALOG021" in codes(result)

    def test_constrained_local_tables_gather_clean(self):
        result = lint(LINKED_JOIN)
        assert "ALOG021" not in codes(result)

    def test_fully_local_single_rule_is_never_flagged(self):
        # wide at the root, but nothing is gathered: the whole plan is
        # document-local, so the fan-out never crosses a boundary
        result = lint(
            """
            q(t) :- docs(d), raw(@d, t).
            raw(@d, t) :- from(@d, t).
            """
        )
        assert "ALOG021" not in codes(result)


class TestPlanReport:
    def test_rows_carry_static_statistics_and_costs(self):
        result = lint(LINKED_JOIN)
        rows = {row.predicate: row for row in result.plan_report.rows}
        pair = rows["pair"]
        assert pair.joins == 1
        assert pair.extractions == 2  # two inlined from() generators
        assert pair.constraints == 2
        assert pair.indexable_constraints == 2  # numeric has an index
        assert pair.locality == "mixed"  # local prefixes, global join
        # cost = attrs*4 + extractions*6 + joins*8 (Xlog coefficients)
        assert pair.cost == pair.attributes * 4.0 + 2 * 6.0 + 1 * 8.0

    def test_fully_local_rule_is_classified_local(self):
        result = lint(
            """
            q(t) :- docs(d), title(@d, t).
            title(@d, t) :- from(@d, t), bold_font(t) = yes.
            """
        )
        (row,) = result.plan_report.rows
        assert row.locality == "local"
        assert row.joins == 0

    def test_render_is_a_table_with_one_line_per_rule(self):
        text = lint(LINKED_JOIN).plan_report.render()
        lines = text.splitlines()
        assert lines[0].startswith("rule")
        assert len(lines) == 3  # header, separator, one rule row

    def test_plan_report_rides_on_the_json_payload(self):
        data = lint(LINKED_JOIN).to_dict("p.alog")
        assert data["plan"]["rules"][0]["predicate"] == "pair"

    def test_uncompilable_programs_skip_quietly(self):
        # unknown predicate: compile would raise, so the plan lint
        # bails and the resolution pass owns the report
        result = analyze_source(
            "q(t) :- docs(d), mystery(@d, t).",
            extensional=["docs"],
            assume_extensional=True,
            plan=True,
        )
        assert "ALOG013" in codes(result)  # assumed p-predicate
        assert "ALOG019" not in codes(result)
        assert "ALOG020" not in codes(result)
