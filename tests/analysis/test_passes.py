"""Per-pass analyzer behaviour, driven through ``analyze_source``."""

from repro.analysis import analyze_program, analyze_rules, analyze_source
from repro.xlog.parser import parse_rules
from repro.xlog.program import Program


def lint(source, **kwargs):
    kwargs.setdefault("extensional", ["docs"])
    return analyze_source(source, **kwargs)


def codes(result):
    return [d.code for d in result.diagnostics]


class TestParseStage:
    def test_parse_error_becomes_alog000(self):
        result = lint("Q(x) :- docs(x")
        assert codes(result) == ["ALOG000"]
        assert result.diagnostics[0].line is not None
        assert not result.ok

    def test_empty_program_is_alog000(self):
        result = analyze_rules([])
        assert codes(result) == ["ALOG000"]


class TestSafety:
    def test_clean_program_has_no_diagnostics(self):
        result = lint(
            """
            Q(t) :- docs(d), title(@d, t).
            title(@d, t) :- from(@d, t), bold_font(t) = yes.
            """
        )
        assert result.ok and not result.diagnostics

    def test_unbound_head_var(self):
        result = lint("Q(x, ghost) :- docs(x).")
        assert codes(result) == ["ALOG001"]
        assert "ghost" in result.diagnostics[0].message

    def test_all_unsafe_vars_reported_not_just_first(self):
        result = lint("Q(x, g1, g2) :- docs(x).")
        assert codes(result) == ["ALOG001", "ALOG001"]

    def test_comparison_binding_is_not_enough(self):
        # g appears in a comparison, but comparisons bind nothing
        result = lint("Q(x, g) :- docs(x), g > 3.")
        assert "ALOG001" in codes(result)

    def test_arith_offset_in_comparison_does_not_bind(self):
        # the Arith shape g + 1 references g without binding it
        result = lint("Q(x, g) :- docs(x), extract(@x, p), p < g + 1.")
        assert "ALOG001" in codes(result)

    def test_from_output_binds(self):
        result = lint("Q(x, y) :- docs(x), from(@x, y).")
        assert result.ok

    def test_p_predicate_output_binds_but_p_function_does_not(self):
        rules = parse_rules("Q(x, y) :- docs(x), proc(@x, y).")
        as_p_predicate = analyze_rules(
            rules, extensional=["docs"], p_predicates={"proc": 2}
        )
        assert as_p_predicate.ok
        as_p_function = analyze_rules(
            rules, extensional=["docs"], p_functions=["proc"]
        )
        assert "ALOG001" in codes(as_p_function)

    def test_description_rule_input_vars_need_no_binding(self):
        result = lint("title(@d, t) :- from(@d, t).", query="title")
        # d is an input: bound by the caller, not the body
        assert "ALOG001" not in codes(result)


class TestSchema:
    def test_unknown_predicate_is_error(self):
        result = lint("Q(x) :- docs(x), nosuch(x).")
        assert "ALOG002" in codes(result)

    def test_permissive_mode_assumes_and_warns(self):
        result = lint("Q(x) :- docs(x), nosuch(x).", assume_extensional=True)
        assert "ALOG002" not in codes(result)
        assert "ALOG013" in codes(result)
        assert result.ok  # warnings only

    def test_assumed_kind_follows_input_flags(self):
        result = lint(
            "Q(x, y) :- docs(x), extractor(@x, y), scorer(@x, @y).",
            assume_extensional=True,
        )
        messages = [d.message for d in result.diagnostics if d.code == "ALOG013"]
        assert any("extractor" in m and "p-predicate" in m for m in messages)
        assert any("scorer" in m and "p-function" in m for m in messages)

    def test_inconsistent_arity(self):
        result = lint("Q(x) :- docs(x), helper(x).\nhelper(a, b) :- docs(a), from(@a, b).")
        assert "ALOG004" in codes(result)

    def test_declared_p_predicate_arity_mismatch(self):
        result = analyze_rules(
            parse_rules("Q(x, y) :- docs(x), proc(@x, y, z)."),
            extensional=["docs"],
            p_predicates={"proc": 2},
        )
        assert "ALOG005" in codes(result)

    def test_from_shape_is_checked(self):
        result = lint("Q(x, y) :- docs(x), from(@x, y, z).")
        assert "ALOG005" in codes(result)

    def test_unknown_feature(self):
        result = lint(
            """
            Q(t) :- docs(d), title(@d, t).
            title(@d, t) :- from(@d, t), sparkly(t) = yes.
            """
        )
        assert "ALOG003" in codes(result)

    def test_unknown_query_predicate(self):
        result = lint("Q(x) :- docs(x).", query="nothere")
        assert "ALOG014" in codes(result)

    def test_duplicate_rule_label(self):
        result = lint("R1: Q(x) :- docs(x).\nR1: P(y) :- docs(y).", query="Q")
        assert "ALOG015" in codes(result)


class TestAnnotations:
    def test_annotation_on_unbound_var(self):
        result = lint("Q(x, <g>) :- docs(x).")
        assert "ALOG006" in codes(result)

    def test_duplicate_annotation(self):
        result = lint("Q(x, <y>, <y>) :- docs(x), from(@x, y).")
        assert "ALOG008" in codes(result)

    def test_existence_annotation_on_extensional_head(self):
        result = lint("docs(x)? :- other(x).", extensional=["docs", "other"])
        assert "ALOG007" in codes(result)


class TestDomains:
    def test_boolean_feature_contradiction(self):
        result = lint(
            """
            Q(t) :- docs(d), title(@d, t).
            title(@d, t) :- from(@d, t), numeric(t) = yes, numeric(t) = no.
            """
        )
        assert "ALOG009" in codes(result)

    def test_empty_value_window(self):
        result = lint(
            """
            Q(t) :- docs(d), price(@d, t).
            price(@d, t) :- from(@d, t), min_value(t) = 100, max_value(t) = 5.
            """
        )
        assert "ALOG009" in codes(result)

    def test_contradictory_comparisons(self):
        result = lint("Q(x, p) :- docs(x), from(@x, p), p < 3, p > 5.")
        assert "ALOG010" in codes(result)

    def test_feasible_comparisons_are_fine(self):
        result = lint(
            "Q(x, p) :- docs(x), from(@x, p), p >= 1950, p < 1970."
        )
        assert "ALOG010" not in codes(result)

    def test_strict_cycle_through_equality(self):
        result = lint("Q(x, p, q) :- docs(x), from(@x, p), from(@x, q), p = q, p < q.")
        assert "ALOG010" in codes(result)

    def test_arith_offsets_participate(self):
        # p < q - 2 and q < p + 1 force p < p - 1
        result = lint(
            "Q(x, p, q) :- docs(x), from(@x, p), from(@x, q), p < q - 2, q < p + 1."
        )
        assert "ALOG010" in codes(result)

    def test_cross_rule_conflict_found_via_unfolding(self):
        # min_value lives in the description rule, the contradicting
        # comparison in the skeleton rule: only the unfolded rule shows it
        result = lint(
            """
            Q(t, p) :- docs(d), price(@d, t, p), p < 50.
            price(@d, t, p) :- from(@d, t), from(@d, p), min_value(p) = 100.
            """
        )
        assert "ALOG010" in codes(result)

    def test_conflicting_string_equalities(self):
        result = lint(
            'Q(x, t) :- docs(x), from(@x, t), t = "alpha", t = "beta".'
        )
        assert "ALOG010" in codes(result)

    def test_self_inequality(self):
        result = lint("Q(x, p) :- docs(x), from(@x, p), p != p.")
        assert "ALOG010" in codes(result)


class TestLiveness:
    def test_dead_skeleton_rule(self):
        result = lint(
            "Q(x) :- docs(x).\nOrphan(y) :- docs(y).", query="Q"
        )
        dead = [d for d in result.diagnostics if d.code == "ALOG011"]
        assert len(dead) == 1 and "Orphan" in dead[0].message

    def test_dead_description_rule(self):
        result = lint(
            """
            Q(x) :- docs(x).
            ghost(@d, t) :- from(@d, t).
            """,
            query="Q",
        )
        assert "ALOG011" in codes(result)

    def test_unused_extracted_variable(self):
        result = lint("Q(x, y) :- docs(x), from(@x, y), from(@x, z).")
        unused = [d for d in result.diagnostics if d.code == "ALOG012"]
        assert len(unused) == 1 and "'z'" in unused[0].message

    def test_underscore_prefix_silences(self):
        result = lint("Q(x, y) :- docs(x), from(@x, y), from(@x, _z).")
        assert "ALOG012" not in codes(result)

    def test_extensional_singleton_columns_do_not_warn(self):
        result = lint(
            "Q(a) :- wide(a, b, c).", extensional=["wide"]
        )
        assert "ALOG012" not in codes(result)


class TestAnalyzeProgram:
    def test_resolved_program_analyzes_clean(self):
        program = Program.parse(
            """
            Q(t) :- docs(d), title(@d, t).
            title(@d, t) :- from(@d, t), bold_font(t) = yes.
            """,
            extensional=["docs"],
        )
        assert analyze_program(program).ok

    def test_diagnostics_carry_rule_index_and_label(self):
        result = lint("R9: Q(x, ghost) :- docs(x).")
        d = result.diagnostics[0]
        assert d.rule_index == 0
        assert d.rule_label == "R9"
