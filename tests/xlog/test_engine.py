"""Precise engine tests, including the paper's Example 2.2."""

import pytest

from repro.ctables.assignments import value_text
from repro.errors import EvaluationError
from repro.text import Corpus, Document, Span, doc_span
from repro.xlog.engine import XlogEngine
from repro.xlog.program import PFunction, PPredicate, Program


def doc_table(*texts):
    return [Document("t%d" % i, t) for i, t in enumerate(texts)]


class TestBasicEvaluation:
    def test_extensional_scan(self):
        corpus = Corpus({"base": doc_table("one", "two")})
        program = Program.parse("q(x) :- base(x).", extensional=["base"])
        rows = XlogEngine(program, corpus).query_result()
        assert len(rows) == 2

    def test_comparison_filter(self):
        corpus = Corpus({"base": doc_table("7", "99")})
        program = Program.parse(
            """
            vals(x, v) :- base(x), extractNum(@x, v).
            q(v) :- vals(x, v), v > 50.
            """,
            extensional=["base"],
            p_predicates={
                "extractNum": PPredicate(
                    "extractNum", lambda x: [(doc_span(x.doc),)], 1, 1
                )
            },
            query="q",
        )
        rows = XlogEngine(program, corpus).query_result()
        assert [value_text(r[0]) for r in rows] == ["99"]

    def test_p_function_filter(self):
        corpus = Corpus({"base": doc_table("abc", "xyz")})
        program = Program.parse(
            "q(x) :- base(x), startsA(@x).",
            extensional=["base"],
            p_functions={
                "startsA": PFunction("startsA", lambda x: x.text.startswith("a"))
            },
        )
        rows = XlogEngine(program, corpus).query_result()
        assert len(rows) == 1

    def test_from_and_constraint(self):
        corpus = Corpus({"base": doc_table("rank 3 votes 25,000")})
        program = Program.parse(
            """
            q(x, v) :- base(x), nums(@x, v).
            nums(@x, v) :- from(@x, v), numeric(v) = yes.
            """,
            extensional=["base"],
        )
        rows = XlogEngine(program, corpus).query_result()
        assert {value_text(r[1]) for r in rows} == {"3", "25,000"}

    def test_dedup(self):
        corpus = Corpus({"base": doc_table("x")})
        program = Program.parse(
            "q(v) :- base(x), dup(@x, v).",
            extensional=["base"],
            p_predicates={
                "dup": PPredicate("dup", lambda x: [(1,), (1,), (2,)], 1, 1)
            },
        )
        rows = XlogEngine(program, corpus).query_result()
        assert sorted(r[0] for r in rows) == [1, 2]

    def test_arithmetic_comparison(self):
        corpus = Corpus({"base": doc_table("pp. 10-12", "pp. 10-30")})
        program = Program.parse(
            """
            pages(x, fp, lp) :- base(x), extractPages(@x, fp, lp).
            q(x) :- pages(x, fp, lp), lp < fp + 5.
            """,
            extensional=["base"],
            p_predicates={
                "extractPages": PPredicate(
                    "extractPages",
                    lambda x: [
                        tuple(
                            Span(x.doc, t.start, t.end)
                            for t in x.doc.tokens
                            if t.kind == "number"
                        )
                    ],
                    1,
                    2,
                )
            },
            query="q",
        )
        rows = XlogEngine(program, corpus).query_result()
        assert len(rows) == 1

    def test_recursion_rejected(self):
        corpus = Corpus({"base": doc_table("x")})
        program = Program.parse(
            """
            a(x) :- b(x).
            b(x) :- a(x).
            """,
            extensional=["base"],
            query="a",
        )
        with pytest.raises(EvaluationError):
            XlogEngine(program, corpus).evaluate()


class TestPaperExample22:
    """Example 2.2: the precise houses/schools program."""

    def program(self):
        import re

        def extract_houses(x):
            text = x.doc.text

            def group_span(pattern):
                match = re.search(pattern, text)
                return Span(x.doc, match.start(1), match.end(1))

            return [
                (
                    group_span(r"Price: \$?([\d,]+)"),
                    group_span(r"Sqft: ([\d,]+)"),
                    group_span(r"High school: ([A-Z][\w ]+?)\."),
                )
            ]

        def extract_schools(y):
            return [
                (Span(y.doc, s, e),) for s, e in y.doc.regions_of("bold")
            ]

        def approx_match(h, s):
            return s.text.lower() in h.text.lower()

        return Program.parse(
            """
            R1: houses(x, p, a, h) :- housePages(x), extractHouses(@x, p, a, h).
            R2: schools(s) :- schoolPages(y), extractSchools(@y, s).
            R3: Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000,
                a > 4500, approxMatch(@h, @s).
            """,
            extensional=["housePages", "schoolPages"],
            p_predicates={
                "extractHouses": PPredicate("extractHouses", extract_houses, 1, 3),
                "extractSchools": PPredicate("extractSchools", extract_schools, 1, 1),
            },
            p_functions={"approxMatch": PFunction("approxMatch", approx_match)},
            query="Q",
        )

    def test_produces_x2_tuple(self, figure1_corpus):
        rows = XlogEngine(self.program(), figure1_corpus).query_result()
        assert len(rows) == 1
        x, p, a, h = rows[0]
        assert value_text(p) == "619,000"
        assert value_text(a) == "4700"
        assert value_text(h) == "Basktall HS"

    def test_intermediate_relations(self, figure1_corpus):
        relations = XlogEngine(self.program(), figure1_corpus).evaluate()
        assert len(relations["houses"]) == 2
        assert len(relations["schools"]) == 5
