"""Program resolution, classification, safety, and refinement tests."""

import pytest

from repro.errors import SafetyError, UnknownPredicateError
from repro.xlog.program import PFunction, PPredicate, Program


def make_program(source, **kwargs):
    kwargs.setdefault("extensional", ["base"])
    return Program.parse(source, **kwargs)


class TestClassification:
    def test_description_rules_detected(self):
        program = make_program(
            """
            q(x, p) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """
        )
        assert program.ie_predicates == {"ie"}
        assert program.intensional == {"q"}
        assert len(program.description_rules) == 1

    def test_atom_kinds(self):
        program = make_program(
            """
            q(x, p) :- base(x), ie(@x, p), sim(@p, @p), cleanup(@p, r).
            ie(@x, p) :- from(@x, p).
            """,
            p_functions={"sim": PFunction("sim", lambda a, b: True)},
            p_predicates={"cleanup": PPredicate("cleanup", lambda p: [], 1, 1)},
        )
        rule = program.skeleton_rules[0]
        kinds = [program.atom_kind(a) for a in rule.body]
        assert kinds == ["extensional", "ie", "p_function", "p_predicate"]

    def test_unknown_predicate_rejected(self):
        with pytest.raises(UnknownPredicateError):
            make_program("q(x) :- mystery(x).")

    def test_unknown_query_rejected(self):
        with pytest.raises(UnknownPredicateError):
            make_program("q(x) :- base(x).", query="other")

    def test_query_defaults_to_first_head(self):
        program = make_program("q(x) :- base(x).")
        assert program.query == "q"


class TestSafety:
    def test_safe_program_passes(self):
        program = make_program(
            """
            q(x, p) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """
        )
        program.check_safety()

    def test_paper_unsafe_rule(self):
        # the paper's example: numeric(p) alone does not bind p
        program = make_program(
            """
            q(x, p) :- base(x), ie(@x, p).
            ie(@x, p) :- numeric(p) = yes.
            """
        )
        with pytest.raises(SafetyError):
            program.check_safety()

    def test_head_var_missing_from_body(self):
        program = make_program("q(x, y) :- base(x).")
        with pytest.raises(SafetyError):
            program.check_safety()

    def test_p_function_does_not_bind(self):
        program = make_program(
            "q(x, y) :- base(x), sim(@x, y).",
            p_functions={"sim": PFunction("sim", lambda a, b: True)},
        )
        with pytest.raises(SafetyError):
            program.check_safety()


class TestRefinement:
    def make(self):
        return make_program(
            """
            q(x, p) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p).
            """
        )

    def test_add_constraint_returns_new_program(self):
        program = self.make()
        refined = program.add_constraint("ie", "p", "numeric", "yes")
        assert refined is not program
        assert program.constraints_on("ie", "p") == []
        assert refined.constraints_on("ie", "p") == [("numeric", "yes")]

    def test_add_constraint_unknown_predicate(self):
        with pytest.raises(UnknownPredicateError):
            self.make().add_constraint("nope", "p", "numeric", "yes")

    def test_add_constraint_unknown_attribute(self):
        with pytest.raises(UnknownPredicateError):
            self.make().add_constraint("ie", "zzz", "numeric", "yes")

    def test_constraints_accumulate(self):
        refined = (
            self.make()
            .add_constraint("ie", "p", "numeric", "yes")
            .add_constraint("ie", "p", "preceded_by", "$")
        )
        assert refined.constraints_on("ie", "p") == [
            ("numeric", "yes"),
            ("preceded_by", "$"),
        ]

    def test_ie_attributes(self):
        assert self.make().ie_attributes() == [("ie", "p")]

    def test_source_reparses(self):
        program = self.make().add_constraint("ie", "p", "preceded_by", "Price: $")
        reparsed = Program.parse(program.source(), extensional=["base"])
        assert reparsed.constraints_on("ie", "p") == [("preceded_by", "Price: $")]
