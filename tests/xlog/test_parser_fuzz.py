"""Fuzz tests: the lexer/parser never crash un-gracefully, and reprs

round-trip for generated rules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.xlog.parser import parse_rule, parse_rules

_identifier = st.from_regex(r"[a-z][a-zA-Z0-9_]{0,6}", fullmatch=True)
_value = st.one_of(
    st.sampled_from(["yes", "no", "distinct_yes"]),
    st.integers(0, 10**6),
    st.text(alphabet="abc $.:", max_size=8),
)


@st.composite
def generated_rules(draw):
    head = draw(_identifier)
    head_vars = draw(st.lists(_identifier, min_size=1, max_size=3, unique=True))
    annotated = draw(st.booleans())
    existence = draw(st.booleans())
    args = []
    for i, var in enumerate(head_vars):
        if annotated and i == len(head_vars) - 1:
            args.append("<%s>" % var)
        else:
            args.append(var)
    base = draw(_identifier)
    body = ["%s(%s)" % (base, head_vars[0])]
    feature = draw(_identifier)
    value = draw(_value)
    if isinstance(value, str) and value not in ("yes", "no", "distinct_yes"):
        rendered = '"%s"' % value.replace("\\", "").replace('"', "")
    else:
        rendered = str(value)
    body.append("%s(%s) = %s" % (feature, head_vars[0], rendered))
    comparison_const = draw(st.integers(0, 1000))
    body.append("%s > %d" % (head_vars[0], comparison_const))
    return "%s(%s)%s :- %s." % (
        head,
        ", ".join(args),
        "?" if existence else "",
        ", ".join(body),
    )


@settings(max_examples=80, deadline=None)
@given(generated_rules())
def test_generated_rules_parse_and_round_trip(source):
    rule = parse_rule(source)
    reparsed = parse_rule(repr(rule) + ".")
    assert repr(reparsed) == repr(rule)


@settings(max_examples=120, deadline=None)
@given(st.text(max_size=40))
def test_arbitrary_text_parse_error_or_rules(text):
    """Garbage either parses (rarely) or raises ParseError — never

    anything else."""
    try:
        parse_rules(text)
    except ParseError:
        pass


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="():-<>@?=,.% \nabz019\"", max_size=60))
def test_syntax_soup(text):
    try:
        parse_rules(text)
    except ParseError:
        pass
