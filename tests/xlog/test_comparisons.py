"""Comparison semantics tests (numeric coercion, null, ordering)."""

import pytest
from hypothesis import given, strategies as st

from repro.text.document import Document
from repro.text.span import doc_span
from repro.xlog.comparisons import comparison_holds


def span_of(text):
    return doc_span(Document("c-%d" % abs(hash(text)), text))


class TestNumericCoercion:
    def test_span_vs_number(self):
        assert comparison_holds(span_of("25,000"), "<", 30000)
        assert not comparison_holds(span_of("25,000"), ">", 30000)

    def test_span_vs_span(self):
        assert comparison_holds(span_of("4700"), ">", span_of("4500"))

    def test_equality_coerces(self):
        assert comparison_holds(span_of("92"), "=", 92)
        assert comparison_holds("35.99", "=", span_of("$35.99"))


class TestTextFallback:
    def test_string_equality(self):
        assert comparison_holds(span_of("abc"), "=", "abc")
        assert comparison_holds(span_of("abc"), "!=", "abd")

    def test_ordering_on_text_is_false(self):
        # ordering is numeric-only by design (see conditions.py)
        assert not comparison_holds(span_of("abc"), "<", span_of("abd"))
        assert not comparison_holds("zebra", ">", 5)


class TestNull:
    def test_null_equality(self):
        assert comparison_holds(None, "=", None)
        assert not comparison_holds(None, "=", 5)

    def test_null_inequality(self):
        assert comparison_holds(5, "!=", None)
        assert not comparison_holds(None, "!=", None)

    def test_ordering_against_null_never_holds(self):
        for op in ("<", "<=", ">", ">="):
            assert not comparison_holds(None, op, 5)
            assert not comparison_holds(5, op, None)


class TestOperators:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_total_order_consistency(self, a, b):
        assert comparison_holds(a, "<", b) == (a < b)
        assert comparison_holds(a, "<=", b) == (a <= b)
        assert comparison_holds(a, "=", b) == (a == b)
        assert comparison_holds(a, "!=", b) == (a != b)

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            comparison_holds(1, "~", 2)
