"""Source spans on the AST, and ParseError location formatting."""

import pytest

from repro.errors import ParseError
from repro.xlog.ast import Rule, SourceSpan
from repro.xlog.parser import parse_rules


class TestParseErrorFormatting:
    def test_line_and_column(self):
        exc = ParseError("unexpected token", line=3, column=7)
        assert str(exc) == "line 3, column 7: unexpected token"
        assert exc.span == (3, 7)

    def test_column_none_is_not_rendered_as_zero(self):
        exc = ParseError("unexpected end of input", line=3)
        assert str(exc) == "line 3: unexpected end of input"
        assert "column" not in str(exc)
        assert exc.span == (3, None)

    def test_no_location_at_all(self):
        exc = ParseError("boom")
        assert str(exc) == "boom"

    def test_attributes_survive(self):
        exc = ParseError("msg", line=2, column=4)
        assert (exc.line, exc.column) == (2, 4)
        assert exc.raw_message == "msg"


class TestRuleSpans:
    def test_rule_span_covers_the_rule(self):
        (rule,) = parse_rules("Q(x) :- docs(x).")
        assert rule.span == SourceSpan(1, 1, 1, 16)

    def test_multi_rule_lines(self):
        rules = parse_rules("Q(x) :- docs(x).\nP(y) :- docs(y).")
        assert rules[0].span.line == 1
        assert rules[1].span.line == 2
        assert rules[1].span.column == 1

    def test_label_included_in_rule_span(self):
        (rule,) = parse_rules("R1: Q(x) :- docs(x).")
        assert rule.span.column == 1
        assert rule.head.span.column == 5

    def test_head_arg_spans(self):
        (rule,) = parse_rules("Q(x, <price>) :- docs(x), from(@x, price).")
        x_arg, price_arg = rule.head.args
        assert x_arg.span == SourceSpan(1, 3, 1, 4)
        # the annotated arg span covers the angle brackets
        assert price_arg.span == SourceSpan(1, 6, 1, 13)

    def test_body_atom_spans(self):
        (rule,) = parse_rules("Q(x, p) :- docs(x), from(@x, p), p > 5.")
        docs, frm, cmp_atom = rule.body
        assert docs.span == SourceSpan(1, 12, 1, 19)
        assert frm.span == SourceSpan(1, 21, 1, 32)
        assert cmp_atom.span == SourceSpan(1, 34, 1, 39)

    def test_constraint_atom_span(self):
        (rule,) = parse_rules(
            "title(@d, t) :- from(@d, t), bold_font(t) = yes."
        )
        constraint = rule.body[1]
        assert constraint.span == SourceSpan(1, 30, 1, 48)

    def test_spans_do_not_affect_equality_or_hash(self):
        (with_span,) = parse_rules("Q(x) :- docs(x).")
        bare = Rule(with_span.head, with_span.body)
        assert bare.span is None
        assert bare == with_span
        assert hash(bare) == hash(with_span)

    def test_spans_are_one_based_end_exclusive(self):
        (rule,) = parse_rules("Q(x) :- docs(x).")
        span = rule.head.span
        source = "Q(x) :- docs(x)."
        assert source[span.column - 1 : span.end_column - 1] == "Q(x)"


class TestParseErrorLocations:
    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_rules("Q(x) :- docs(x).\nP(y) :- docs(y), , .")
        assert info.value.line == 2
