"""Lexer tests for the Xlog/Alog concrete syntax."""

import pytest

from repro.errors import ParseError
from repro.xlog.lexer import tokenize_program


def kinds(source):
    return [(t.kind, t.value) for t in tokenize_program(source)[:-1]]


class TestTokens:
    def test_simple_rule(self):
        tokens = kinds("q(x) :- p(x).")
        assert tokens == [
            ("ident", "q"),
            ("symbol", "("),
            ("ident", "x"),
            ("symbol", ")"),
            ("symbol", ":-"),
            ("ident", "p"),
            ("symbol", "("),
            ("ident", "x"),
            ("symbol", ")"),
            ("symbol", "."),
        ]

    def test_annotations_and_input_markers(self):
        tokens = kinds("h(@x, <p>)?")
        values = [v for _, v in tokens]
        assert values == ["h", "(", "@", "x", ",", "<", "p", ">", ")", "?"]

    def test_comparison_operators(self):
        tokens = kinds("a <= b >= c != d < e > f = g")
        symbols = [v for k, v in tokens if k == "symbol"]
        assert symbols == ["<=", ">=", "!=", "<", ">", "="]

    def test_numbers(self):
        tokens = kinds("x > 500000, y < 35.99")
        numbers = [v for k, v in tokens if k == "number"]
        assert numbers == ["500000", "35.99"]

    def test_strings_with_escapes(self):
        tokens = tokenize_program('f(a) = "say \\"hi\\"\\n"')
        strings = [t.value for t in tokens if t.kind == "string"]
        assert strings == ['say "hi"\n']

    def test_comments_skipped(self):
        tokens = kinds("p(x). % this is a comment\nq(y).")
        values = [v for _, v in tokens]
        assert "comment" not in values
        assert "q" in values

    def test_line_numbers(self):
        tokens = tokenize_program("p(x).\nq(y).")
        q = next(t for t in tokens if t.value == "q")
        assert q.line == 2

    def test_arith_symbols(self):
        tokens = kinds("lp < fp + 5")
        assert ("symbol", "+") in tokens

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize_program("p(x) & q(y)")

    def test_rule_label_colon(self):
        tokens = kinds("R1: p(x).")
        assert tokens[0] == ("ident", "R1")
        assert tokens[1] == ("symbol", ":")
