"""Precise-engine edge cases: description-rule invocation, caps, errors."""

import pytest

from repro.ctables.assignments import value_text
from repro.errors import EnumerationLimitError, EvaluationError
from repro.text import Corpus, Document, doc_span
from repro.xlog.engine import XlogEngine
from repro.xlog.program import PFunction, PPredicate, Program


def doc_table(*texts):
    return [Document("ee%d" % i, t) for i, t in enumerate(texts)]


class TestDescriptionRuleInvocation:
    """The precise engine can evaluate description rules directly

    (it is the reference path for unfolded semantics)."""

    def test_ie_atom_evaluates_description_rule(self):
        corpus = Corpus({"base": doc_table("a 5 b 7")})
        program = Program.parse(
            """
            q(x, v) :- base(x), nums(@x, v).
            nums(@x, v) :- from(@x, v), numeric(v) = yes.
            """,
            extensional=["base"],
        )
        rows = XlogEngine(program, corpus).query_result()
        assert {value_text(r[1]) for r in rows} == {"5", "7"}

    def test_ie_without_rules_or_procedure_errors(self):
        corpus = Corpus({"base": doc_table("x")})
        program = Program.parse(
            "q(x, v) :- base(x), mystery(@x, v).",
            extensional=["base"],
            p_predicates={"mystery": PPredicate("mystery", lambda x: [], 1, 1)},
        )
        # works with the registered procedure
        assert XlogEngine(program, corpus).query_result() == []


class TestBindingsAndConstants:
    def test_constant_in_atom_filters(self):
        corpus = Corpus({"base": doc_table("x")})
        program = Program.parse(
            'q(v) :- base(x), pairs(@x, v, "keep").',
            extensional=["base"],
            p_predicates={
                "pairs": PPredicate(
                    "pairs", lambda x: [(1, "keep"), (2, "drop")], 1, 2
                )
            },
        )
        rows = XlogEngine(program, corpus).query_result()
        assert [r[0] for r in rows] == [1]

    def test_shared_variable_joins(self):
        corpus = Corpus({"base": doc_table("x")})
        program = Program.parse(
            "q(v) :- base(x), left(@x, v), right(@x, v).",
            extensional=["base"],
            p_predicates={
                "left": PPredicate("left", lambda x: [(1,), (2,)], 1, 1),
                "right": PPredicate("right", lambda x: [(2,), (3,)], 1, 1),
            },
        )
        rows = XlogEngine(program, corpus).query_result()
        assert [r[0] for r in rows] == [2]

    def test_unbound_p_function_input_errors(self):
        corpus = Corpus({"base": doc_table("x")})
        program = Program.parse(
            "q(x) :- base(x), check(@y).",
            extensional=["base"],
            p_functions={"check": PFunction("check", lambda y: True)},
        )
        with pytest.raises(EvaluationError):
            XlogEngine(program, corpus).query_result()


class TestFromLimits:
    def test_from_cap(self):
        big = " ".join(str(i) for i in range(300))
        corpus = Corpus({"base": doc_table(big)})
        program = Program.parse(
            """
            q(x, v) :- base(x), sub(@x, v).
            sub(@x, v) :- from(@x, v).
            """,
            extensional=["base"],
        )
        engine = XlogEngine(program, corpus, from_limit=100)
        with pytest.raises(EnumerationLimitError):
            engine.query_result()

    def test_from_on_non_span_errors(self):
        corpus = Corpus({"base": doc_table("x")})
        program = Program.parse(
            """
            q(x, v) :- base(x), scalars(@x, s), sub(@s, v).
            sub(@s, v) :- from(@s, v).
            """,
            extensional=["base"],
            p_predicates={"scalars": PPredicate("scalars", lambda x: [(42,)], 1, 1)},
        )
        with pytest.raises(EvaluationError):
            XlogEngine(program, corpus).query_result()


class TestMultiRulePredicates:
    def test_union_of_rules(self):
        corpus = Corpus({"a": doc_table("one"), "b": [Document("bb", "two")]})
        program = Program.parse(
            """
            q(x) :- a(x).
            q(y) :- b(y).
            """,
            extensional=["a", "b"],
        )
        rows = XlogEngine(program, corpus).query_result()
        assert len(rows) == 2
