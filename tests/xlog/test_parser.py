"""Parser tests for Xlog/Alog rules."""

import pytest

from repro.errors import ParseError
from repro.xlog.ast import (
    Arith,
    ComparisonAtom,
    ConstraintAtom,
    Const,
    NULL,
    PredicateAtom,
    Var,
)
from repro.xlog.parser import parse_rule, parse_rules


class TestHeads:
    def test_plain_head(self):
        rule = parse_rule("q(x, y) :- p(x, y).")
        assert rule.head.name == "q"
        assert [a.var.name for a in rule.head.args] == ["x", "y"]
        assert not rule.head.existence

    def test_existence_annotation(self):
        rule = parse_rule("schools(s)? :- p(s).")
        assert rule.head.existence

    def test_attribute_annotation(self):
        rule = parse_rule("houses(x, <p>, <a>) :- p(x, p, a).")
        assert [v.name for v in rule.head.annotated_vars] == ["p", "a"]

    def test_input_marker_in_head(self):
        rule = parse_rule("extractHouses(@x, p) :- from(@x, p).")
        assert [v.name for v in rule.head.input_vars] == ["x"]
        assert [v.name for v in rule.head.output_vars] == ["p"]

    def test_rule_label(self):
        rule = parse_rule("S4: q(x) :- p(x).")
        assert rule.label == "S4"

    def test_annotations_property(self):
        rule = parse_rule("q(x, <p>)? :- p(x, p).")
        assert rule.annotations == (True, ("p",))


class TestBodyAtoms:
    def test_predicate_atom(self):
        rule = parse_rule("q(x) :- housePages(x).")
        atom = rule.body[0]
        assert isinstance(atom, PredicateAtom)
        assert atom.name == "housePages"

    def test_input_flags(self):
        rule = parse_rule("q(x, p) :- p0(x), ie(@x, p).")
        ie = rule.body[1]
        assert ie.input_flags == (True, False)
        assert ie.input_args == [Var("x")]
        assert ie.output_args == [Var("p")]

    def test_constraint_atom(self):
        rule = parse_rule("q(p) :- p0(p), numeric(p) = yes.")
        constraint = rule.body[1]
        assert isinstance(constraint, ConstraintAtom)
        assert constraint.feature == "numeric"
        assert constraint.value == "yes"

    def test_constraint_with_string_value(self):
        rule = parse_rule('q(p) :- p0(p), preceded_by(p) = "Price: $".')
        assert rule.body[1].value == "Price: $"

    def test_constraint_with_numeric_value(self):
        rule = parse_rule("q(p) :- p0(p), max_length(p) = 18.")
        assert rule.body[1].value == 18

    def test_constraint_requires_single_var(self):
        with pytest.raises(ParseError):
            parse_rule("q(p) :- f(p, r) = yes.")

    def test_comparison_atoms(self):
        rule = parse_rule("q(p) :- p0(p), p > 500000, p != null.")
        gt, ne = rule.body[1], rule.body[2]
        assert isinstance(gt, ComparisonAtom) and gt.op == ">"
        assert gt.right == Const(500000)
        assert ne.right is NULL

    def test_var_to_var_comparison(self):
        rule = parse_rule("q(a, b) :- p0(a, b), a = b.")
        cmp = rule.body[1]
        assert cmp.left == Var("a") and cmp.right == Var("b")

    def test_arith_term(self):
        rule = parse_rule("q(t) :- p0(t, fp, lp), lp < fp + 5.")
        cmp = rule.body[1]
        assert isinstance(cmp.right, Arith)
        assert cmp.right.offset == 5
        assert Var("fp") in cmp.variables

    def test_arith_minus(self):
        rule = parse_rule("q(t) :- p0(t, fp), fp > fp - 3.")
        assert rule.body[1].right.offset == -3

    def test_constant_in_predicate(self):
        rule = parse_rule('q(x) :- rel(x, "flag", 3).')
        atom = rule.body[0]
        assert atom.args[1] == Const("flag")
        assert atom.args[2] == Const(3)


class TestPrograms:
    def test_multiple_rules(self):
        rules = parse_rules(
            """
            R1: a(x) :- base(x).
            R2: b(x) :- a(x), x > 5.
            """
        )
        assert [r.label for r in rules] == ["R1", "R2"]

    def test_final_period_optional(self):
        rules = parse_rules("a(x) :- base(x)")
        assert len(rules) == 1

    def test_fact_rule_without_body(self):
        rules = parse_rules("a(x).")
        assert rules[0].body == ()

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as exc:
            parse_rules("a(x) :- ,")
        assert "line" in str(exc.value)

    def test_parse_rule_rejects_multiple(self):
        with pytest.raises(ParseError):
            parse_rule("a(x) :- b(x). c(y) :- d(y).")

    def test_round_trip_via_repr(self):
        source = "S1: houses(x, <p>)? :- housePages(x), extractHouses(@x, p)."
        rule = parse_rule(source)
        reparsed = parse_rule(repr(rule) + ".")
        assert repr(reparsed) == repr(rule)
