"""Noise-injection tests: offsets preserved, sessions stay robust."""

import pytest

from repro.datagen.books import generate_books
from repro.datagen.noise import noisy_record, noisy_tables


@pytest.fixture(scope="module")
def barnes():
    return generate_books({"Amazon": 0, "Barnes": 20}, seed=6)["Barnes"]


class TestNoisyRecord:
    def test_length_preserved(self, barnes):
        for record in barnes[:5]:
            noisy = noisy_record(record, rate=0.2, seed=1)
            assert len(noisy.doc.text) == len(record.doc.text)

    def test_truth_spans_untouched(self, barnes):
        for record in barnes[:5]:
            noisy = noisy_record(record, rate=0.3, seed=1)
            for attr, span in record.spans.items():
                if span is None:
                    continue
                assert noisy.spans[attr].text == span.text

    def test_markup_regions_untouched(self, barnes):
        record = barnes[0]
        noisy = noisy_record(record, rate=0.3, seed=1)
        for kind in ("bold", "hyperlink"):
            for (s, e), (s2, e2) in zip(
                record.doc.regions_of(kind), noisy.doc.regions_of(kind)
            ):
                assert (s, e) == (s2, e2)
                assert noisy.doc.text[s:e] == record.doc.text[s:e]

    def test_noise_actually_changes_text(self, barnes):
        changed = sum(
            1
            for record in barnes
            if noisy_record(record, rate=0.3, seed=1).doc.text != record.doc.text
        )
        assert changed >= len(barnes) // 2

    def test_deterministic(self, barnes):
        a = noisy_record(barnes[0], rate=0.2, seed=4).doc.text
        b = noisy_record(barnes[0], rate=0.2, seed=4).doc.text
        assert a == b

    def test_zero_rate_is_identity(self, barnes):
        assert noisy_record(barnes[0], rate=0.0, seed=1).doc.text == barnes[0].doc.text


class TestRobustSession:
    def test_session_converges_on_noisy_corpus(self, barnes):
        from repro.assistant import (
            GroundTruth,
            RefinementSession,
            SequentialStrategy,
            SimulatedDeveloper,
        )
        from repro.text.corpus import Corpus
        from repro.xlog.program import Program

        noisy = noisy_tables({"Barnes": barnes}, rate=0.05, seed=2)["Barnes"]
        corpus = Corpus({"Barnes": [r.doc for r in noisy]})
        program = Program.parse(
            """
            books(x, <t>, <p>) :- Barnes(x), ie(@x, t, p).
            q(t) :- books(x, t, p), p > 100.
            ie(@x, t, p) :- from(@x, t), from(@x, p), numeric(p) = yes.
            """,
            extensional=["Barnes"],
            query="q",
        )
        truth = GroundTruth({("ie", "p"): [r.spans["price"] for r in noisy]})
        session = RefinementSession(
            program, corpus, SimulatedDeveloper(truth, seed=2),
            strategy=SequentialStrategy(), seed=2,
        )
        trace = session.run()
        correct = sum(1 for r in noisy if r.values["price"] > 100)
        assert trace.final_result.tuple_count == correct
