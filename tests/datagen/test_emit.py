"""Corpus emission round-trip tests."""

import json

import pytest

from repro.datagen.books import generate_books
from repro.datagen.emit import emit_tables, load_ground_truth
from repro.text.html_parser import parse_html


@pytest.fixture
def emitted(tmp_path):
    tables = generate_books({"Amazon": 5, "Barnes": 5}, seed=3)
    written = emit_tables(tables, tmp_path)
    return tables, tmp_path, written


class TestEmit:
    def test_layout(self, emitted):
        tables, root, written = emitted
        assert (root / "Barnes" / "ground_truth.json").exists()
        html_files = list((root / "Barnes").glob("*.html"))
        assert len(html_files) == 5

    def test_html_round_trips_to_same_text(self, emitted):
        tables, root, _ = emitted
        for record in tables["Barnes"]:
            path = root / "Barnes" / ("%s.html" % record.doc.doc_id)
            reparsed = parse_html(record.doc.doc_id, path.read_text(encoding="utf-8"))
            assert reparsed.text == record.doc.text
            assert reparsed.regions == record.doc.regions

    def test_ground_truth_spans_match(self, emitted):
        tables, root, _ = emitted
        truth = load_ground_truth(root / "Barnes")
        for record in tables["Barnes"]:
            entry = truth[record.doc.doc_id]
            span = record.spans["price"]
            assert entry["spans"]["price"] == {
                "start": span.start,
                "end": span.end,
                "text": span.text,
            }
            assert entry["values"]["price"] == record.values["price"]

    def test_cli_can_consume_emitted_corpus(self, emitted, capsys):
        from repro.cli import main

        _, root, _ = emitted
        program = root / "prog.alog"
        program.write_text(
            """
            books(x, <t>, <p>) :- Barnes(x), ie(@x, t, p).
            q(t, p) :- books(x, t, p), p > 0.
            ie(@x, t, p) :- from(@x, t), from(@x, p), numeric(p) = yes,
                preceded_by(p) = "Price: $".
            """,
            encoding="utf-8",
        )
        code = main(
            ["run", str(program), "--table", "Barnes=%s" % (root / "Barnes"),
             "--query", "q", "--csv"]
        )
        out = capsys.readouterr().out
        assert code == 0
        import csv
        import io

        rows = list(csv.reader(io.StringIO(out)))
        assert len(rows) == 6  # header + 5 records
