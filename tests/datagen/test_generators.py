"""Data generator tests: determinism, ground-truth integrity, markup."""

import pytest

from repro.datagen.base import Record, build_record, find_span
from repro.datagen.books import generate_books
from repro.datagen.dblife import generate_dblife
from repro.datagen.dblp import generate_dblp
from repro.datagen.movies import generate_movies
from repro.text.html_parser import parse_html


SMALL_MOVIES = {"IMDB": 15, "Ebert": 15, "Prasanna": 20}
SMALL_DBLP = {"GarciaMolina": 15, "VLDB": 15, "SIGMOD": 15, "ICDE": 15}
SMALL_BOOKS = {"Amazon": 15, "Barnes": 15}


class TestBase:
    def test_find_span_anchored(self):
        doc = parse_html("d", "<p>rank 5 and year 5</p>")
        span = find_span(doc, "5", after="year")
        assert span.start > doc.text.index("rank")

    def test_find_span_missing_raises(self):
        doc = parse_html("d", "<p>nothing</p>")
        with pytest.raises(ValueError):
            find_span(doc, "absent")

    def test_build_record_resolves_truth(self):
        record = build_record(
            "r", "<p>Price: $42.00</p>", {"price": (42.0, "42.00", "$")}
        )
        assert record.value("price") == 42.0
        assert record.span("price").text == "42.00"

    def test_build_record_none_truth(self):
        record = build_record("r", "<p>x</p>", {"jy": None})
        assert record.value("jy") is None
        assert record.span("jy") is None


class TestDeterminism:
    def test_movies_deterministic(self):
        a = generate_movies(SMALL_MOVIES, seed=5)
        b = generate_movies(SMALL_MOVIES, seed=5)
        assert [r.doc.text for r in a["IMDB"]] == [r.doc.text for r in b["IMDB"]]

    def test_movies_seed_sensitivity(self):
        a = generate_movies(SMALL_MOVIES, seed=5)
        b = generate_movies(SMALL_MOVIES, seed=6)
        assert [r.doc.text for r in a["IMDB"]] != [r.doc.text for r in b["IMDB"]]

    def test_books_deterministic(self):
        a = generate_books(SMALL_BOOKS, seed=5)
        b = generate_books(SMALL_BOOKS, seed=5)
        assert [r.doc.text for r in a["Barnes"]] == [r.doc.text for r in b["Barnes"]]


class TestMovies:
    def test_sizes(self):
        tables = generate_movies(SMALL_MOVIES, seed=1)
        assert {k: len(v) for k, v in tables.items()} == SMALL_MOVIES

    def test_imdb_truth_spans(self):
        tables = generate_movies(SMALL_MOVIES, seed=1)
        for record in tables["IMDB"]:
            assert record.span("title").text == record.value("title")
            assert record.span("votes").numeric_value == record.value("votes")
            # title is bold and hyperlinked
            doc = record.doc
            assert doc.interval_covered_by("bold", record.span("title").start, record.span("title").end)

    def test_overlap_planted(self):
        tables = generate_movies(SMALL_MOVIES, seed=1, overlap=5)
        from repro.processor.library import make_similar

        similar = make_similar(0.55)
        imdb_titles = [r.value("title") for r in tables["IMDB"]]
        ebert_titles = [r.value("title") for r in tables["Ebert"]]
        matches = sum(
            1 for t in imdb_titles if any(similar(t, e) for e in ebert_titles)
        )
        assert matches >= 4


class TestDBLP:
    def test_journal_year_only_for_journals(self):
        tables = generate_dblp(SMALL_DBLP, seed=1)
        for record in tables["GarciaMolina"]:
            if record.doc.meta["journal"]:
                assert record.span("journalYear") is not None
            else:
                assert record.span("journalYear") is None

    def test_vldb_page_arithmetic(self):
        tables = generate_dblp(SMALL_DBLP, seed=1)
        for record in tables["VLDB"]:
            assert record.value("lastPage") > record.value("firstPage")

    def test_shared_teams_one_to_one(self):
        tables = generate_dblp(SMALL_DBLP, seed=1, shared_author_teams=5)
        sigmod_shared = [
            r.values["authors"] for r in tables["SIGMOD"] if r.doc.meta["shared_team"]
        ]
        icde_shared = [
            r.values["authors"] for r in tables["ICDE"] if r.doc.meta["shared_team"]
        ]
        assert sorted(sigmod_shared) == sorted(icde_shared)
        assert len(set(sigmod_shared)) == len(sigmod_shared)


class TestBooks:
    def test_barnes_price_bold(self):
        tables = generate_books(SMALL_BOOKS, seed=1)
        for record in tables["Barnes"]:
            span = record.span("price")
            assert span.doc.interval_covered_by("bold", span.start, span.end)

    def test_amazon_three_prices(self):
        tables = generate_books(SMALL_BOOKS, seed=1)
        for record in tables["Amazon"]:
            assert record.span("listPrice").numeric_value == record.value("listPrice")
            assert record.span("newPrice").numeric_value == record.value("newPrice")
            assert record.span("usedPrice").numeric_value == record.value("usedPrice")

    def test_t8_condition_planted(self):
        tables = generate_books({"Amazon": 80, "Barnes": 10}, seed=1)
        hits = [
            r
            for r in tables["Amazon"]
            if r.value("listPrice") == r.value("newPrice")
            and r.value("usedPrice") < r.value("newPrice")
        ]
        assert hits

    def test_overlap_prices_correlated(self):
        tables = generate_books(SMALL_BOOKS, seed=1, overlap=5)
        barnes_by_title = {r.value("title"): r for r in tables["Barnes"]}
        shared = [
            r for r in tables["Amazon"] if r.value("title") in barnes_by_title
        ]
        assert len(shared) >= 5


class TestDBLife:
    def test_truth_rows_cover_kinds(self):
        records, truth = generate_dblife(
            {"conference": 5, "project": 4, "homepage": 2}, seed=1
        )
        assert truth["panel"] or truth["chair"]
        assert truth["project"]
        kinds = {r.doc.meta["kind"] for r in records}
        assert kinds == {"conference", "project", "homepage"}

    def test_panelist_spans_resolve(self):
        records, truth = generate_dblife({"conference": 5, "project": 1, "homepage": 1}, seed=1)
        for record in records:
            if record.doc.meta["kind"] != "conference":
                continue
            for span, name in zip(record.spans["panelists"], record.values["panelists"]):
                assert span.text == name

    def test_chair_types_valid(self):
        _, truth = generate_dblife({"conference": 10, "project": 1, "homepage": 1}, seed=1)
        for _, chair_type, _ in truth["chair"]:
            assert chair_type in ("PC", "General", "Demo", "Industrial")
