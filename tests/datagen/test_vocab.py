"""Vocabulary generator tests."""

import random

import pytest

from repro.datagen.vocab import (
    book_title,
    movie_title,
    paper_title,
    person_name,
    unique_choices,
)


class TestGenerators:
    def test_person_name_shape(self):
        rng = random.Random(1)
        for _ in range(50):
            name = person_name(rng, with_middle=True)
            parts = name.split()
            assert 2 <= len(parts) <= 3
            assert parts[0][0].isupper()

    @pytest.mark.parametrize("factory", [movie_title, book_title, paper_title])
    def test_titles_nonempty_and_capitalised(self, factory):
        rng = random.Random(2)
        for _ in range(30):
            title = factory(rng)
            assert title
            assert title[0].isupper()

    def test_deterministic(self):
        assert movie_title(random.Random(7)) == movie_title(random.Random(7))


class TestUniqueChoices:
    def test_all_unique(self):
        rng = random.Random(3)
        values = unique_choices(rng, movie_title, 500)
        assert len(values) == len(set(values)) == 500

    def test_exceeding_pool_stays_linear(self):
        rng = random.Random(3)
        # far more values than the underlying pool can produce
        values = unique_choices(rng, lambda r: r.choice(["a", "b", "c"]), 200)
        assert len(set(values)) == 200

    def test_zero(self):
        assert unique_choices(random.Random(0), movie_title, 0) == []
