"""End-to-end integration tests: the paper's running examples as flows.

Example 1.1 (the introduction's house-hunting story), Example 2.3
(annotated evaluation), and full refinement sessions driven through
the public API only.
"""

import pytest

from repro import (
    Corpus,
    GroundTruth,
    IFlexEngine,
    PFunction,
    Program,
    RefinementSession,
    SequentialStrategy,
    SimulatedDeveloper,
    Span,
    make_similar,
    parse_html,
)


class TestIntroductionExample:
    """Example 1.1: price > 500000 and the word "Lincoln"."""

    def make_corpus(self, n_matching=9, n_other=30):
        docs = []
        for i in range(n_matching):
            docs.append(
                parse_html(
                    "match%d" % i,
                    "<p>Grand estate. Price: <b>$%d,000</b>. "
                    "High school: Lincoln.</p>" % (510 + i),
                )
            )
        for i in range(n_other):
            docs.append(
                parse_html(
                    "other%d" % i,
                    "<p>Modest home. Price: <b>$%d,000</b>. "
                    "High school: Jefferson.</p>" % (100 + i),
                )
            )
        return Corpus({"housePages": docs})

    def test_initial_approximate_program_returns_superset(self):
        corpus = self.make_corpus()
        program = Program.parse(
            """
            houses(x, <p>) :- housePages(x), extractHouses(@x, p).
            Q(x) :- houses(x, p), p > 500000, hasLincoln(@x).
            extractHouses(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            extensional=["housePages"],
            p_functions={
                "hasLincoln": PFunction(
                    "hasLincoln", lambda x: "Lincoln" in x.text
                )
            },
            query="Q",
        )
        result = IFlexEngine(program, corpus).execute()
        # exactly the nine Lincoln pages with a number above 500000
        assert result.tuple_count == 9


class TestFigure2EndToEnd:
    def test_query_result_matches_example(self, figure2_program, figure1_corpus):
        result = IFlexEngine(figure2_program, figure1_corpus).execute()
        assert result.tuple_count == 1

    def test_reference_semantics_agree_on_houses(self):
        from repro.alog.semantics import program_possible_relations
        from repro.ctables.worlds import compact_worlds
        from repro.xlog.program import Program

        # a miniature house page keeps the exact world set enumerable
        corpus = Corpus(
            {"housePages": [parse_html("m1", "<p>Sqft 2750 price 619,000 nice</p>")]}
        )
        sub = Program.parse(
            """
            houses(x, <p>, <a>) :- housePages(x), extractHouses(@x, p, a).
            extractHouses(@x, p, a) :- from(@x, p), from(@x, a),
                numeric(p) = yes, numeric(a) = yes.
            """,
            extensional=["housePages"],
            query="houses",
        )
        exact = program_possible_relations(sub, corpus, max_worlds=500_000)
        approx = compact_worlds(
            IFlexEngine(sub, corpus).execute().query_table,
            max_worlds=500_000,
        )
        assert exact <= approx


class TestFullSessionThroughPublicAPI:
    def test_refinement_session_converges(self):
        docs, price_spans = [], []
        for i in range(20):
            price = 60 + i * 10
            doc = parse_html(
                "b%d" % i,
                "<p><b>Tome %d</b></p><p>Our Price: <b>$%d.00</b>. "
                "ISBN: 12345678%02d.</p>" % (i, price, i),
            )
            start = doc.text.index("$") + 1
            price_spans.append(Span(doc, start, start + len("%d.00" % price)))
            docs.append(doc)
        corpus = Corpus({"Books": docs})
        program = Program.parse(
            """
            books(x, <t>, <p>) :- Books(x), ie(@x, t, p).
            q(t) :- books(x, t, p), p > 100.
            ie(@x, t, p) :- from(@x, t), from(@x, p), numeric(p) = yes.
            """,
            extensional=["Books"],
            query="q",
        )
        developer = SimulatedDeveloper(GroundTruth({("ie", "p"): price_spans}))
        session = RefinementSession(
            program, corpus, developer, strategy=SequentialStrategy(), seed=0
        )
        trace = session.run()
        correct = sum(1 for i in range(20) if 60 + i * 10 > 100)
        assert trace.converged
        assert trace.final_result.tuple_count == correct

    def test_similarity_join_through_api(self):
        left = [parse_html("l0", "<p><b>Silent River</b></p>")]
        right = [
            parse_html("r0", "<p><b>Silent River</b></p>"),
            parse_html("r1", "<p><b>Crimson Empire</b></p>"),
        ]
        corpus = Corpus({"L": left, "R": right})
        program = Program.parse(
            """
            lt(x, <a>) :- L(x), ie1(@x, a).
            rt(y, <b>) :- R(y), ie2(@y, b).
            q(a, b) :- lt(x, a), rt(y, b), similar(@a, @b).
            ie1(@x, a) :- from(@x, a), bold_font(a) = distinct_yes.
            ie2(@y, b) :- from(@y, b), bold_font(b) = distinct_yes.
            """,
            extensional=["L", "R"],
            p_functions={"similar": PFunction("similar", make_similar(0.6))},
            query="q",
        )
        result = IFlexEngine(program, corpus).execute()
        assert result.tuple_count == 1
