"""Public-API surface tests: everything advertised imports and works."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.text",
            "repro.features",
            "repro.xlog",
            "repro.ctables",
            "repro.alog",
            "repro.processor",
            "repro.assistant",
            "repro.datagen",
            "repro.baselines",
            "repro.experiments",
            "repro.analysis",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), "%s.%s" % (module, name)


class TestReadmeQuickstart:
    """The README's quickstart, executed verbatim-ish."""

    def test_quickstart_flow(self):
        from repro import Corpus, IFlexEngine, Program, parse_html

        corpus = Corpus({"housePages": [
            parse_html("x1", "<p>Sqft: 2750. Price: <b>$351,000</b>.</p>"),
            parse_html("x2", "<p>Sqft: 4700. Price: <b>$619,000</b>.</p>"),
        ]})
        program = Program.parse("""
            houses(x, <p>, <a>) :- housePages(x), extractHouses(@x, p, a).
            Q(x, p) :- houses(x, p, a), p > 500000.
            extractHouses(@x, p, a) :- from(@x, p), from(@x, a),
                numeric(p) = yes, numeric(a) = yes.
        """, extensional=["housePages"], query="Q")

        result = IFlexEngine(program, corpus).execute()
        assert result.tuple_count == 1

        refined = program.add_constraint("extractHouses", "p", "bold_font", "yes")
        refined_result = IFlexEngine(refined, corpus).execute()
        assert refined_result.tuple_count == 1
        (t,) = refined_result.query_table.tuples
        values = {a.value.text for a in t.cells[1].assignments}
        assert values == {"619,000"}


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro.errors import (
            EnumerationLimitError,
            EvaluationError,
            ParseError,
            ReproError,
            SafetyError,
            UnknownFeatureError,
            UnknownPredicateError,
        )

        for exc in (
            EnumerationLimitError,
            EvaluationError,
            ParseError,
            SafetyError,
            UnknownFeatureError,
            UnknownPredicateError,
        ):
            assert issubclass(exc, ReproError)

    def test_parse_error_position(self):
        from repro.errors import ParseError

        error = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7
