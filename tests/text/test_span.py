"""Span tests, including the token-aligned enumeration invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.text.document import Document
from repro.text.span import Span, doc_span


def make_doc(text):
    return Document("d", text)


class TestSpanBasics:
    def test_text(self):
        doc = make_doc("hello world")
        assert Span(doc, 6, 11).text == "world"

    def test_out_of_bounds_rejected(self):
        doc = make_doc("abc")
        with pytest.raises(ValueError):
            Span(doc, 0, 4)
        with pytest.raises(ValueError):
            Span(doc, -1, 2)
        with pytest.raises(ValueError):
            Span(doc, 2, 1)

    def test_equality_and_hash(self):
        doc = make_doc("abc def")
        assert Span(doc, 0, 3) == Span(doc, 0, 3)
        assert hash(Span(doc, 0, 3)) == hash(Span(doc, 0, 3))
        assert Span(doc, 0, 3) != Span(doc, 4, 7)

    def test_cross_doc_spans_differ(self):
        a = Span(make_doc("abc"), 0, 3)
        b = Span(Document("e", "abc"), 0, 3)
        assert a != b

    def test_ordering(self):
        doc = make_doc("abc def")
        assert Span(doc, 0, 3) < Span(doc, 4, 7)

    def test_numeric_value(self):
        doc = make_doc("Price: $351,000")
        assert Span(doc, 8, 15).numeric_value == 351000
        assert Span(doc, 0, 5).numeric_value is None

    def test_doc_span_covers_all(self):
        doc = make_doc("abc def")
        span = doc_span(doc)
        assert (span.start, span.end) == (0, 7)


class TestSpanRelations:
    def test_contains(self):
        doc = make_doc("one two three")
        outer = Span(doc, 0, 13)
        inner = Span(doc, 4, 7)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_overlaps(self):
        doc = make_doc("one two three")
        assert Span(doc, 0, 5).overlaps(Span(doc, 4, 8))
        assert not Span(doc, 0, 4).overlaps(Span(doc, 4, 8))

    def test_sub(self):
        doc = make_doc("one two three")
        outer = Span(doc, 0, 13)
        assert outer.sub(4, 7).text == "two"
        with pytest.raises(ValueError):
            outer.sub(4, 20)

    def test_context_helpers(self):
        doc = make_doc("Price: $35.99 now")
        span = Span(doc, 8, 13)
        assert span.text_before(8) == "Price: $"
        assert span.text_after(4) == " now"


class TestEnumeration:
    def test_token_spans(self):
        doc = make_doc("one two three")
        spans = doc_span(doc).token_spans()
        assert [s.text for s in spans] == ["one", "two", "three"]

    def test_subspan_count_formula(self):
        doc = make_doc("one two three")
        span = doc_span(doc)
        assert span.count_token_aligned_subspans() == 6
        assert len(span.token_aligned_subspans()) == 6

    def test_subspans_are_token_aligned(self):
        doc = make_doc("alpha beta gamma delta")
        subs = doc_span(doc).token_aligned_subspans()
        texts = {s.text for s in subs}
        assert "alpha beta" in texts
        assert "beta gamma delta" in texts
        assert "lpha" not in texts

    def test_max_count_truncates(self):
        doc = make_doc("a b c d e f g h")
        subs = doc_span(doc).token_aligned_subspans(max_count=3)
        assert len(subs) == 3

    def test_max_tokens_limits_width(self):
        doc = make_doc("a b c d")
        subs = doc_span(doc).token_aligned_subspans(max_tokens=2)
        assert max(len(s.tokens) for s in subs) == 2

    @given(st.text(alphabet="ab 1", min_size=0, max_size=30))
    def test_count_matches_enumeration(self, text):
        doc = Document("h", text)
        span = doc_span(doc)
        assert span.count_token_aligned_subspans() == len(span.token_aligned_subspans())

    @given(st.text(alphabet="xy z2", min_size=1, max_size=25))
    def test_every_subspan_inside(self, text):
        doc = Document("h", text)
        span = doc_span(doc)
        for sub in span.token_aligned_subspans():
            assert span.contains(sub)
            assert len(sub) > 0
