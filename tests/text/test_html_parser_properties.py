"""Property tests: the HTML parser never crashes and keeps offsets sane."""

from hypothesis import given, settings, strategies as st

from repro.text.html_parser import parse_html

_TAGS = ["b", "i", "u", "a", "p", "li", "ul", "h2", "title", "div", "em", "strong"]


@st.composite
def html_soup(draw):
    """Random well-formed-ish nested markup."""
    pieces = []
    open_stack = []
    for _ in range(draw(st.integers(1, 12))):
        action = draw(st.integers(0, 2))
        if action == 0:
            tag = draw(st.sampled_from(_TAGS))
            pieces.append("<%s>" % tag)
            open_stack.append(tag)
        elif action == 1 and open_stack:
            pieces.append("</%s>" % open_stack.pop())
        else:
            pieces.append(draw(st.text(alphabet="ab 12&<.", max_size=10)))
    while open_stack:
        pieces.append("</%s>" % open_stack.pop())
    return "".join(pieces)


@settings(max_examples=100, deadline=None)
@given(html_soup())
def test_parser_never_crashes(html):
    doc = parse_html("fz", html)
    assert isinstance(doc.text, str)


@settings(max_examples=100, deadline=None)
@given(html_soup())
def test_regions_within_bounds_and_sorted(html):
    doc = parse_html("fz", html)
    for kind, intervals in doc.regions.items():
        for start, end in intervals:
            assert 0 <= start < end <= len(doc.text)
        assert intervals == sorted(intervals)
    for label in doc.labels:
        assert 0 <= label.start < label.end <= len(doc.text)
        assert doc.text[label.start : label.end].strip() == label.text


@settings(max_examples=60, deadline=None)
@given(st.text(max_size=80))
def test_arbitrary_text_as_html(text):
    doc = parse_html("fz", text)
    for kind, intervals in doc.regions.items():
        for start, end in intervals:
            assert 0 <= start < end <= len(doc.text)
