"""Document model tests."""

import pytest

from repro.text.document import Document, Label


def make_doc(text="Price: $351,000 here", **kwargs):
    return Document("d", text, **kwargs)


class TestDocumentBasics:
    def test_identity_by_doc_id(self):
        a = Document("same", "text one")
        b = Document("same", "text two")
        assert a == b
        assert hash(a) == hash(b)

    def test_different_ids_differ(self):
        assert Document("a", "t") != Document("b", "t")

    def test_len_is_text_length(self):
        assert len(make_doc("abcd")) == 4

    def test_unknown_region_kind_rejected(self):
        with pytest.raises(ValueError):
            Document("d", "text", regions={"blink": [(0, 2)]})

    def test_regions_sorted(self):
        doc = make_doc(regions={"bold": [(10, 12), (2, 5)]})
        assert doc.regions_of("bold") == [(2, 5), (10, 12)]

    def test_regions_of_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_doc().regions_of("nope")

    def test_tokens_cached(self):
        doc = make_doc()
        assert doc.tokens is doc.tokens


class TestRegionQueries:
    def test_interval_covered_by(self):
        doc = make_doc(regions={"bold": [(7, 15)]})
        assert doc.interval_covered_by("bold", 8, 12)
        assert doc.interval_covered_by("bold", 7, 15)
        assert not doc.interval_covered_by("bold", 6, 12)
        assert not doc.interval_covered_by("bold", 8, 16)

    def test_regions_overlapping(self):
        doc = make_doc(regions={"bold": [(0, 3), (7, 15), (18, 20)]})
        assert doc.regions_overlapping("bold", 2, 8) == [(0, 3), (7, 15)]
        assert doc.regions_overlapping("bold", 3, 7) == []

    def test_tokens_in(self):
        doc = make_doc("one two three")
        tokens = doc.tokens_in(4, 13)
        assert [t.text for t in tokens] == ["two", "three"]

    def test_tokens_in_partial_token_excluded(self):
        doc = make_doc("one two three")
        tokens = doc.tokens_in(4, 6)  # cuts "two" short
        assert tokens == []


class TestLabels:
    def test_preceding_label(self):
        labels = [Label("Intro", 0, 5), Label("Schools", 20, 27)]
        doc = make_doc("x" * 40, labels=labels)
        assert doc.preceding_label(10).text == "Intro"
        assert doc.preceding_label(30).text == "Schools"
        assert doc.preceding_label(0) is None

    def test_preceding_label_at_boundary(self):
        doc = make_doc("x" * 40, labels=[Label("A", 0, 5)])
        assert doc.preceding_label(5).text == "A"
        assert doc.preceding_label(4) is None
