"""HTML → Document conversion tests."""

from repro.text.html_parser import parse_html


class TestTextFlattening:
    def test_plain_paragraphs(self):
        doc = parse_html("d", "<p>one</p><p>two</p>")
        assert doc.text == "one\ntwo\n"

    def test_whitespace_collapsed(self):
        doc = parse_html("d", "<p>a   b\n\n  c</p>")
        assert doc.text == "a b c\n"

    def test_entities_decoded(self):
        doc = parse_html("d", "<p>a &amp; b &lt;ok&gt;</p>")
        assert "a & b <ok>" in doc.text

    def test_br_breaks_line(self):
        doc = parse_html("d", "<p>a<br>b</p>")
        assert doc.text == "a\nb\n"


class TestRegions:
    def test_bold_region_offsets(self):
        doc = parse_html("d", "<p>Price: <b>$351,000</b> now</p>")
        (start, end), = doc.regions_of("bold")
        assert doc.text[start:end] == "$351,000"

    def test_strong_and_em_aliases(self):
        doc = parse_html("d", "<p><strong>B</strong> and <em>I</em></p>")
        assert len(doc.regions_of("bold")) == 1
        assert len(doc.regions_of("italic")) == 1

    def test_hyperlink_region(self):
        doc = parse_html("d", "<p><a href='#'>Basktall HS</a></p>")
        (start, end), = doc.regions_of("hyperlink")
        assert doc.text[start:end] == "Basktall HS"

    def test_title_regions(self):
        doc = parse_html("d", "<html><title>Top Movies</title><body><p>x</p></body></html>")
        (start, end), = doc.regions_of("title")
        assert doc.text[start:end] == "Top Movies"

    def test_list_items(self):
        doc = parse_html("d", "<ul><li>one item</li><li>two item</li></ul>")
        regions = doc.regions_of("list_item")
        assert len(regions) == 2
        assert doc.text[regions[0][0] : regions[0][1]] == "one item"

    def test_region_trimmed_of_whitespace(self):
        doc = parse_html("d", "<p><b>  padded  </b></p>")
        (start, end), = doc.regions_of("bold")
        assert doc.text[start:end] == "padded"

    def test_nested_formatting(self):
        doc = parse_html("d", "<p><a href='#'><b>Linked Bold</b></a></p>")
        (bs, be), = doc.regions_of("bold")
        (hs, he), = doc.regions_of("hyperlink")
        assert doc.text[bs:be] == "Linked Bold"
        assert doc.text[hs:he] == "Linked Bold"

    def test_stray_end_tag_tolerated(self):
        doc = parse_html("d", "<p>hello</b> world</p>")
        assert "hello" in doc.text


class TestLabels:
    def test_h2_becomes_label(self):
        doc = parse_html("d", "<h2>Schools</h2><p>after</p>")
        assert len(doc.labels) == 1
        assert doc.labels[0].text == "Schools"
        assert doc.text[doc.labels[0].start : doc.labels[0].end] == "Schools"

    def test_labels_in_document_order(self):
        doc = parse_html("d", "<h2>A</h2><p>x</p><h3>B</h3><p>y</p>")
        assert [l.text for l in doc.labels] == ["A", "B"]

    def test_preceding_label_resolution(self):
        doc = parse_html("d", "<h2>Panels</h2><ul><li>Jane Doe</li></ul>")
        offset = doc.text.index("Jane")
        assert doc.preceding_label(offset).text == "Panels"
