"""Corpus tests: tables, sampling, restriction, signatures."""

import pytest

from repro.text.corpus import Corpus
from repro.text.document import Document


def docs(prefix, n):
    return [Document("%s-%d" % (prefix, i), "text %d" % i) for i in range(n)]


class TestTables:
    def test_add_and_get(self):
        corpus = Corpus({"A": docs("a", 3)})
        assert corpus.size_of("A") == 3
        assert "A" in corpus
        assert corpus.table_names() == ["A"]

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            Corpus().table("nope")

    def test_duplicate_doc_ids_rejected(self):
        d = Document("dup", "x")
        with pytest.raises(ValueError):
            Corpus({"A": [d, d]})

    def test_len_counts_tables(self):
        corpus = Corpus({"A": docs("a", 1), "B": docs("b", 2)})
        assert len(corpus) == 2


class TestSampling:
    def test_sample_fraction(self):
        corpus = Corpus({"A": docs("a", 100)})
        sampled = corpus.sample(0.1, seed=3)
        assert sampled.size_of("A") == 10

    def test_sample_deterministic(self):
        corpus = Corpus({"A": docs("a", 50)})
        ids1 = [d.doc_id for d in corpus.sample(0.2, seed=7).table("A")]
        ids2 = [d.doc_id for d in corpus.sample(0.2, seed=7).table("A")]
        assert ids1 == ids2

    def test_sample_different_seeds_differ(self):
        corpus = Corpus({"A": docs("a", 100)})
        ids1 = {d.doc_id for d in corpus.sample(0.1, seed=1).table("A")}
        ids2 = {d.doc_id for d in corpus.sample(0.1, seed=2).table("A")}
        assert ids1 != ids2

    def test_sample_keeps_at_least_one(self):
        corpus = Corpus({"A": docs("a", 3)})
        assert corpus.sample(0.01, seed=0).size_of("A") == 1

    def test_sample_bad_fraction(self):
        corpus = Corpus({"A": docs("a", 3)})
        with pytest.raises(ValueError):
            corpus.sample(0.0)
        with pytest.raises(ValueError):
            corpus.sample(1.5)

    def test_sample_of_empty_table(self):
        corpus = Corpus({"A": []})
        assert corpus.sample(0.5).size_of("A") == 0


class TestRestriction:
    def test_restrict_one_table(self):
        corpus = Corpus({"A": docs("a", 10), "B": docs("b", 10)})
        cut = corpus.restrict("A", 4, seed=0)
        assert cut.size_of("A") == 4
        assert cut.size_of("B") == 10

    def test_restrict_larger_than_table_is_noop(self):
        corpus = Corpus({"A": docs("a", 5)})
        assert corpus.restrict("A", 50).size_of("A") == 5

    def test_restrict_all(self):
        corpus = Corpus({"A": docs("a", 10), "B": docs("b", 3)})
        cut = corpus.restrict_all(5, seed=0)
        assert cut.size_of("A") == 5
        assert cut.size_of("B") == 3


class TestSignature:
    def test_signature_stable(self):
        corpus = Corpus({"A": docs("a", 3)})
        assert corpus.signature == corpus.signature

    def test_signature_changes_with_content(self):
        a = Corpus({"A": docs("a", 3)})
        b = Corpus({"A": docs("a", 4)})
        assert a.signature != b.signature
