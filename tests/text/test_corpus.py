"""Corpus tests: tables, sampling, restriction, signatures."""

import pytest

from repro.text.corpus import Corpus
from repro.text.document import Document


def docs(prefix, n):
    return [Document("%s-%d" % (prefix, i), "text %d" % i) for i in range(n)]


class TestTables:
    def test_add_and_get(self):
        corpus = Corpus({"A": docs("a", 3)})
        assert corpus.size_of("A") == 3
        assert "A" in corpus
        assert corpus.table_names() == ["A"]

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            Corpus().table("nope")

    def test_duplicate_doc_ids_rejected(self):
        d = Document("dup", "x")
        with pytest.raises(ValueError):
            Corpus({"A": [d, d]})

    def test_len_counts_tables(self):
        corpus = Corpus({"A": docs("a", 1), "B": docs("b", 2)})
        assert len(corpus) == 2


class TestSampling:
    def test_sample_fraction(self):
        corpus = Corpus({"A": docs("a", 100)})
        sampled = corpus.sample(0.1, seed=3)
        assert sampled.size_of("A") == 10

    def test_sample_deterministic(self):
        corpus = Corpus({"A": docs("a", 50)})
        ids1 = [d.doc_id for d in corpus.sample(0.2, seed=7).table("A")]
        ids2 = [d.doc_id for d in corpus.sample(0.2, seed=7).table("A")]
        assert ids1 == ids2

    def test_sample_different_seeds_differ(self):
        corpus = Corpus({"A": docs("a", 100)})
        ids1 = {d.doc_id for d in corpus.sample(0.1, seed=1).table("A")}
        ids2 = {d.doc_id for d in corpus.sample(0.1, seed=2).table("A")}
        assert ids1 != ids2

    def test_sample_keeps_at_least_one(self):
        corpus = Corpus({"A": docs("a", 3)})
        assert corpus.sample(0.01, seed=0).size_of("A") == 1

    def test_sample_bad_fraction(self):
        corpus = Corpus({"A": docs("a", 3)})
        with pytest.raises(ValueError):
            corpus.sample(0.0)
        with pytest.raises(ValueError):
            corpus.sample(1.5)

    def test_sample_of_empty_table(self):
        corpus = Corpus({"A": []})
        assert corpus.sample(0.5).size_of("A") == 0


class TestRestriction:
    def test_restrict_one_table(self):
        corpus = Corpus({"A": docs("a", 10), "B": docs("b", 10)})
        cut = corpus.restrict("A", 4, seed=0)
        assert cut.size_of("A") == 4
        assert cut.size_of("B") == 10

    def test_restrict_larger_than_table_is_noop(self):
        corpus = Corpus({"A": docs("a", 5)})
        assert corpus.restrict("A", 50).size_of("A") == 5

    def test_restrict_all(self):
        corpus = Corpus({"A": docs("a", 10), "B": docs("b", 3)})
        cut = corpus.restrict_all(5, seed=0)
        assert cut.size_of("A") == 5
        assert cut.size_of("B") == 3


class TestSignature:
    def test_signature_stable(self):
        corpus = Corpus({"A": docs("a", 3)})
        assert corpus.signature == corpus.signature

    def test_signature_changes_with_content(self):
        a = Corpus({"A": docs("a", 3)})
        b = Corpus({"A": docs("a", 4)})
        assert a.signature != b.signature


class TestMutation:
    """The service's in-place mutation surfaces (add/remove/upsert)."""

    def test_add_documents_appends(self):
        corpus = Corpus({"A": docs("a", 2)})
        replaced = corpus.add_documents("A", docs("b", 2))
        assert replaced == []
        assert corpus.size_of("A") == 4

    def test_add_documents_creates_table(self):
        corpus = Corpus()
        corpus.add_documents("A", docs("a", 1))
        assert corpus.table_names() == ["A"]

    def test_add_documents_duplicate_rejected_without_replace(self):
        corpus = Corpus({"A": docs("a", 2)})
        with pytest.raises(ValueError):
            corpus.add_documents("A", [Document("a-1", "new")])

    def test_add_documents_duplicate_in_batch_rejected(self):
        corpus = Corpus()
        d = Document("dup", "x")
        with pytest.raises(ValueError):
            corpus.add_documents("A", [d, d], replace=True)

    def test_replace_keeps_position(self):
        corpus = Corpus({"A": docs("a", 3)})
        replaced = corpus.add_documents(
            "A", [Document("a-1", "edited")], replace=True
        )
        assert replaced == ["a-1"]
        assert [d.doc_id for d in corpus.table("A")] == ["a-0", "a-1", "a-2"]
        assert corpus.table("A")[1].text == "edited"

    def test_remove_documents_across_tables(self):
        corpus = Corpus({"A": docs("a", 2), "B": docs("b", 2)})
        removed = corpus.remove_documents(["a-1", "b-0", "nope"])
        assert sorted(removed) == ["a-1", "b-0"]
        assert corpus.size_of("A") == 1
        assert corpus.size_of("B") == 1

    def test_remove_missing_returns_empty(self):
        corpus = Corpus({"A": docs("a", 1)})
        assert corpus.remove_documents(["zzz"]) == []


class TestContentDigestInvalidation:
    """Every mutation surface must reset the cached content digest —
    the persistent result cache keys partition fingerprints on it, so a
    stale digest silently serves pre-mutation results."""

    def test_add_table_resets(self):
        corpus = Corpus({"A": docs("a", 1)})
        before = corpus.content_digest
        corpus.add_table("B", docs("b", 1))
        assert corpus.content_digest != before

    def test_add_documents_resets(self):
        corpus = Corpus({"A": docs("a", 1)})
        before = corpus.content_digest
        corpus.add_documents("A", docs("b", 1))
        assert corpus.content_digest != before

    def test_replace_resets(self):
        corpus = Corpus({"A": docs("a", 2)})
        before = corpus.content_digest
        corpus.add_documents("A", [Document("a-0", "edited text")], replace=True)
        assert corpus.content_digest != before

    def test_remove_resets(self):
        corpus = Corpus({"A": docs("a", 2)})
        before = corpus.content_digest
        corpus.remove_documents(["a-0"])
        assert corpus.content_digest != before

    def test_noop_remove_keeps_digest(self):
        corpus = Corpus({"A": docs("a", 2)})
        before = corpus.content_digest
        corpus.remove_documents(["zzz"])
        assert corpus.content_digest == before

    def test_any_mutation_sequence_changes_digest(self):
        """Property: whatever mutation fires, the digest moves (and the
        executor's partition fingerprints with it)."""
        from hypothesis import given, strategies as st

        @given(
            st.lists(
                st.sampled_from(["append", "replace", "remove", "table"]),
                min_size=1,
                max_size=6,
            )
        )
        def check(ops):
            corpus = Corpus({"A": docs("a", 3)})
            counter = [0]
            for op in ops:
                before = corpus.content_digest
                counter[0] += 1
                fresh = "new-%d" % counter[0]
                if op == "append":
                    corpus.add_documents("A", [Document(fresh, fresh)])
                elif op == "replace":
                    target = corpus.table("A")[0].doc_id
                    corpus.add_documents(
                        "A", [Document(target, fresh)], replace=True
                    )
                elif op == "remove" and corpus.size_of("A") > 1:
                    corpus.remove_documents([corpus.table("A")[-1].doc_id])
                elif op == "remove":
                    continue  # keep one document so replace stays legal
                else:
                    corpus.add_table(fresh, [Document(fresh, fresh)])
                assert corpus.content_digest != before

        check()


class TestChunk:
    def test_chunks_are_contiguous_slices(self):
        corpus = Corpus({"A": docs("a", 5)})
        parts = corpus.chunk(2)
        assert [p.size_of("A") for p in parts] == [2, 2, 1]
        flat = [d.doc_id for p in parts for d in p.table("A")]
        assert flat == [d.doc_id for d in corpus.table("A")]

    def test_chunk_boundaries_stable_under_append(self):
        """The property :meth:`Corpus.partition` lacks: growing the
        corpus leaves every existing full chunk byte-identical, so the
        delta path re-executes only the tail."""
        corpus = Corpus({"A": docs("a", 5)})
        before = [p.signature for p in corpus.chunk(2)]
        corpus.add_documents("A", docs("z", 3))
        after = [p.signature for p in corpus.chunk(2)]
        assert after[:2] == before[:2]           # full chunks untouched
        assert len(after) == 4

    def test_partition_boundaries_shift_under_append(self):
        # the contrast that motivates chunk(): partition(n) re-slices
        corpus = Corpus({"A": docs("a", 5)})
        before = [p.signature for p in corpus.partition(2)]
        corpus.add_documents("A", docs("z", 3))
        after = [p.signature for p in corpus.partition(2)]
        assert after[0] != before[0]

    def test_chunk_covers_every_table(self):
        corpus = Corpus({"A": docs("a", 3), "B": docs("b", 1)})
        parts = corpus.chunk(1)
        assert len(parts) == 3
        assert parts[0].size_of("B") == 1
        assert parts[1].size_of("B") == 0

    def test_empty_corpus_chunks_to_self(self):
        corpus = Corpus()
        assert corpus.chunk(4) == [corpus]

    def test_chunk_size_floored_to_one(self):
        corpus = Corpus({"A": docs("a", 2)})
        assert len(corpus.chunk(0)) == 2
