"""Tokeniser tests."""

import pytest

from repro.text.tokenize import NUMBER, PUNCT, WORD, Token, parse_number, tokenize


class TestTokenize:
    def test_words_and_numbers(self):
        tokens = tokenize("Price: 351,000 dollars")
        kinds = [(t.text, t.kind) for t in tokens]
        assert ("Price", WORD) in kinds
        assert ("351,000", NUMBER) in kinds
        assert ("dollars", WORD) in kinds
        assert (":", PUNCT) in kinds

    def test_offsets_cover_text(self):
        text = "Votes: 23,456 (2005)"
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_decimal_number_is_one_token(self):
        tokens = tokenize("only 35.99 left")
        numbers = [t for t in tokens if t.kind == NUMBER]
        assert [t.text for t in numbers] == ["35.99"]

    def test_hyphenated_and_apostrophe_words(self):
        tokens = tokenize("Garcia-Molina reads O'Brien")
        words = [t.text for t in tokens if t.kind == WORD]
        assert "Garcia-Molina" in words
        assert "O'Brien" in words

    def test_empty_text(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize(" \n\t ") == []

    def test_token_length(self):
        token = Token("abc", 5, 8, WORD)
        assert len(token) == 3

    def test_page_range_splits_into_three_tokens(self):
        tokens = tokenize("pp. 123-134.")
        texts = [t.text for t in tokens]
        assert "123" in texts and "134" in texts and "-" in texts


class TestParseNumber:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("92", 92),
            ("351,000", 351000),
            ("35.99", 35.99),
            ("$116.00", 116.0),
            (" 42 ", 42),
            ("$1,234,567", 1234567),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_number(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "12abc", "$", "1 2", "--3"])
    def test_rejects(self, text):
        assert parse_number(text) is None

    def test_integer_stays_int(self):
        assert isinstance(parse_number("92"), int)

    def test_decimal_is_float(self):
        assert isinstance(parse_number("92.0"), float)
