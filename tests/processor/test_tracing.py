"""EXPLAIN ANALYZE / tracing tests."""

import pytest

from repro.processor.executor import IFlexEngine
from repro.processor.plan import compile_predicate
from repro.processor.tracing import trace_plan


class TestTracedPlan:
    def test_traced_execution_matches_plain(self, figure2_program, figure1_corpus):
        engine = IFlexEngine(figure2_program, figure1_corpus)
        plain = engine.execute()
        traced_result, report = engine.explain_analyze()
        assert traced_result.tuple_count == plain.tuple_count
        assert traced_result.assignment_count == plain.assignment_count

    def test_report_contains_all_operators(self, figure2_program, figure1_corpus):
        engine = IFlexEngine(figure2_program, figure1_corpus)
        _, report = engine.explain_analyze()
        for fragment in ("Annotate", "From", "Join", "Scan", "Select"):
            assert fragment in report
        assert "ms" in report

    def test_traces_record_cardinalities(self, figure2_program, figure1_corpus):
        from repro.alog.unfold import unfold_program
        from repro.processor.context import ExecutionContext

        unfolded = unfold_program(figure2_program)
        context = ExecutionContext(unfolded, figure1_corpus)
        traced = trace_plan(compile_predicate("houses", unfolded))
        table = traced.execute(context)
        traces = traced.collect()
        root = traces[0]
        assert root.out_tuples == len(table)
        scan = [t for t in traces if t.describe.startswith("Scan")][0]
        assert scan.out_tuples == 2

    def test_self_time_excludes_children(self, figure2_program, figure1_corpus):
        from repro.alog.unfold import unfold_program
        from repro.processor.context import ExecutionContext

        unfolded = unfold_program(figure2_program)
        context = ExecutionContext(unfolded, figure1_corpus)
        traced = trace_plan(compile_predicate("houses", unfolded))
        traced.execute(context)
        total_self = sum(t.elapsed for t in traced.collect())
        assert total_self >= 0
        # every operator reported something
        assert all(t.out_tuples >= 0 for t in traced.collect())


class TestRenderEdgeCases:
    def test_empty_trace_list_renders_placeholder(self):
        from repro.processor.tracing import render_traces

        assert render_traces([]) == "(no traced operators)"

    def test_cache_summary_with_zero_lookups(self):
        from repro.processor.context import ExecutionStats
        from repro.processor.tracing import render_cache_summary

        text = render_cache_summary(ExecutionStats())
        assert "n/a" in text
        assert "%" not in text.split("n/a")[0].rsplit("\n", 1)[-1]

    def test_cache_summary_with_lookups_reports_rate(self):
        from repro.processor.context import ExecutionStats
        from repro.processor.tracing import render_cache_summary

        stats = ExecutionStats(verify_cache_hits=3, verify_cache_misses=1)
        assert "75.0%" in render_cache_summary(stats)
