"""Execution context / config / stats tests."""

from repro.processor.context import ExecConfig, ExecutionContext, ExecutionStats
from repro.text.corpus import Corpus
from repro.xlog.program import PFunction, PPredicate, Program


class TestExecConfig:
    def test_defaults(self):
        config = ExecConfig()
        assert config.enum_cap > 0
        assert config.pair_cap > 0
        assert config.ppredicate_cap > 0
        assert config.blocking_joins

    def test_custom(self):
        config = ExecConfig(enum_cap=5, pair_cap=7, blocking_joins=False)
        assert (config.enum_cap, config.pair_cap) == (5, 7)


class TestExecutionStats:
    def test_merge(self):
        a = ExecutionStats(verify_calls=2, refine_calls=1)
        b = ExecutionStats(verify_calls=3, cap_hits=4)
        a.merge(b)
        assert a.verify_calls == 5
        assert a.refine_calls == 1
        assert a.cap_hits == 4


class TestExecutionContext:
    def test_lookups(self):
        program = Program.parse(
            "q(x) :- base(x), f(@x), p(@x, y).",
            extensional=["base"],
            p_functions={"f": PFunction("f", lambda x: True)},
            p_predicates={"p": PPredicate("p", lambda x: [], 1, 1)},
        )
        context = ExecutionContext(program, Corpus({"base": []}))
        assert context.feature("numeric").name == "numeric"
        assert context.p_function("f").name == "f"
        assert context.p_predicate("p").name == "p"
        assert context.relations == {}
