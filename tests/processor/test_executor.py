"""Executor tests: stitching, figure 2/3 behaviour, reuse cache."""

import pytest

from repro.ctables.assignments import Contain, Exact, value_text
from repro.processor.executor import IFlexEngine, RuleCache, evaluation_order
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.xlog.program import Program


class TestEvaluationOrder:
    def test_topological(self):
        program = Program.parse(
            """
            c(x) :- b(x).
            b(x) :- a(x).
            a(x) :- base(x).
            """,
            extensional=["base"],
            query="c",
        )
        order = evaluation_order(program)
        assert order.index(("a",)) < order.index(("b",)) < order.index(("c",))


class TestPaperPipeline:
    """The Figure 2 program end to end (compact tables of Figure 3)."""

    def test_houses_compact_table(self, figure2_program, figure1_corpus):
        result = IFlexEngine(figure2_program, figure1_corpus).execute()
        houses = result.tables["houses"]
        assert len(houses) == 2  # one tuple per house page (the <x> key)
        for t in houses:
            p_values = {value_text(a.value) for a in t.cells[1].assignments}
            assert len(p_values) == 3  # the three numbers of each page
            h_cell = t.cells[3]
            assert all(isinstance(a, Contain) for a in h_cell.assignments)

    def test_schools_is_maybe_expansion(self, figure2_program, figure1_corpus):
        result = IFlexEngine(figure2_program, figure1_corpus).execute()
        schools = result.tables["schools"]
        assert all(t.maybe for t in schools)
        assert all(t.cells[0].is_expansion for t in schools)

    def test_query_keeps_only_x2(self, figure2_program, figure1_corpus):
        result = IFlexEngine(figure2_program, figure1_corpus).execute()
        q = result.query_table
        assert len(q) == 1
        (t,) = q.tuples
        assert "Amazing house" in value_text(t.cells[0].assignments[0].value)
        assert {value_text(a.value) for a in t.cells[1].assignments} == {"619,000"}

    def test_summary_counts(self, figure2_program, figure1_corpus):
        result = IFlexEngine(figure2_program, figure1_corpus).execute()
        summary = result.summary()
        assert summary["tuples"] == 1
        assert summary["elapsed_s"] > 0


class TestReuseCache:
    def make_engine(self, program, corpus):
        return IFlexEngine(program, corpus)

    @pytest.fixture
    def setup(self):
        doc = parse_html("d1", "<p>Sqft: 2750. Price: <b>$351,000</b></p>")
        corpus = Corpus({"base": [doc]})
        program = Program.parse(
            """
            vals(x, <p>) :- base(x), ie(@x, p).
            q(x, p) :- vals(x, p), p > 1000.
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            extensional=["base"],
            query="q",
        )
        return program, corpus

    def test_full_hit_on_repeat(self, setup):
        program, corpus = setup
        cache = RuleCache()
        IFlexEngine(program, corpus).execute(cache=cache)
        result = IFlexEngine(program, corpus).execute(cache=cache)
        assert result.reuse_summary == {"vals": "full", "q": "full"}
        assert cache.full_hits == 2

    def test_incremental_on_added_constraint(self, setup):
        program, corpus = setup
        cache = RuleCache()
        IFlexEngine(program, corpus).execute(cache=cache)
        refined = program.add_constraint("ie", "p", "preceded_by", "$")
        result = IFlexEngine(refined, corpus).execute(cache=cache)
        assert result.reuse_summary["vals"] == "incremental"
        # downstream rule recomputes against the updated table
        assert result.reuse_summary["q"] == "computed"

    def test_incremental_result_matches_fresh(self, setup):
        program, corpus = setup
        cache = RuleCache()
        IFlexEngine(program, corpus).execute(cache=cache)
        refined = program.add_constraint("ie", "p", "preceded_by", "$")
        cached_result = IFlexEngine(refined, corpus).execute(cache=cache)
        fresh_result = IFlexEngine(refined, corpus).execute()
        cached_values = {
            value_text(a.value)
            for t in cached_result.query_table
            for a in t.cells[1].assignments
        }
        fresh_values = {
            value_text(a.value)
            for t in fresh_result.query_table
            for a in t.cells[1].assignments
        }
        assert cached_values == fresh_values == {"351,000"}

    def test_no_reuse_across_corpora(self, setup):
        program, corpus = setup
        other = Corpus(
            {"base": [parse_html("d2", "<p>Price: <b>$9,000</b></p>")]}
        )
        cache = RuleCache()
        IFlexEngine(program, corpus).execute(cache=cache)
        result = IFlexEngine(program, other).execute(cache=cache)
        assert result.reuse_summary["vals"] == "computed"

    def test_removed_constraint_recomputes(self, setup):
        program, corpus = setup
        refined = program.add_constraint("ie", "p", "preceded_by", "$")
        cache = RuleCache()
        IFlexEngine(refined, corpus).execute(cache=cache)
        result = IFlexEngine(program, corpus).execute(cache=cache)
        assert result.reuse_summary["vals"] == "computed"
