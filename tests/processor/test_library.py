"""Built-in p-function library tests."""

import threading

import repro.processor.library as library
from repro.processor.library import jaccard, make_similar, token_set
from repro.text.document import Document
from repro.text.span import doc_span


def span_of(text):
    return doc_span(Document("lib-%d" % abs(hash(text)), text))


class TestTokenSet:
    def test_basic(self):
        assert token_set("Silent River") == {"silent", "river"}

    def test_case_folding(self):
        assert token_set("SILENT river") == token_set("silent RIVER")

    def test_stopwords_dropped(self):
        assert token_set("The Silent River") == {"silent", "river"}

    def test_all_stopwords_kept_as_fallback(self):
        assert token_set("the and of") == {"the", "and", "of"}

    def test_works_on_spans(self):
        assert token_set(span_of("Crimson Empire")) == {"crimson", "empire"}

    def test_memoised(self):
        span = span_of("memo target")
        assert token_set(span) is token_set(span)


class TestTokenCacheBounds:
    def run_with_cap(self, cap, body):
        saved_cache = dict(library._TOKEN_CACHE)
        saved_max = library._TOKEN_CACHE_MAX
        library._TOKEN_CACHE.clear()
        library._TOKEN_CACHE_MAX = cap
        try:
            return body()
        finally:
            library._TOKEN_CACHE_MAX = saved_max
            library._TOKEN_CACHE.clear()
            library._TOKEN_CACHE.update(saved_cache)

    def test_cache_never_exceeds_the_cap(self):
        def body():
            for i in range(25):
                token_set("value %d" % i)
            assert len(library._TOKEN_CACHE) <= 8

        self.run_with_cap(8, body)

    def test_eviction_drops_the_oldest_half_not_everything(self):
        def body():
            for i in range(8):
                token_set("value %d" % i)
            token_set("overflow value")  # trips eviction to cap // 2
            assert 0 < len(library._TOKEN_CACHE) <= 5
            # the newest entry survives the sweep
            keys = list(library._TOKEN_CACHE)
            assert any("overflow" in repr(k) for k in keys)

        self.run_with_cap(8, body)

    def test_concurrent_lookups_are_race_safe(self):
        def body():
            errors = []

            def worker(seed):
                try:
                    for i in range(200):
                        tokens = token_set("value %d" % ((seed * 7 + i) % 40))
                        assert tokens
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(seed,))
                for seed in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(library._TOKEN_CACHE) <= 16

        self.run_with_cap(16, body)


class TestJaccard:
    def test_identical(self):
        assert jaccard("Silent River", "Silent River") == 1.0

    def test_disjoint(self):
        assert jaccard("alpha beta", "gamma delta") == 0.0

    def test_partial(self):
        assert abs(jaccard("a b c x", "a b c y") - 0.5) < 1e-9

    def test_empty(self):
        assert jaccard("", "anything") == 0.0


class TestMakeSimilar:
    def test_threshold(self):
        loose = make_similar(0.3)
        strict = make_similar(0.9)
        assert loose("Silent River", "Silent River Remastered")
        assert not strict("Silent River", "Silent River Remastered")

    def test_blockable_flag(self):
        assert make_similar(0.5).blockable

    def test_accepting_pairs_share_a_token(self):
        similar = make_similar(0.4)
        # blocking exactness precondition: any accepted pair overlaps
        pairs = [
            ("Silent River", "River Song"),
            ("Crimson Empire", "Empire Crimson"),
        ]
        for a, b in pairs:
            if similar(a, b):
                assert token_set(a) & token_set(b)
