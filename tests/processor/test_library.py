"""Built-in p-function library tests."""

from repro.processor.library import jaccard, make_similar, token_set
from repro.text.document import Document
from repro.text.span import doc_span


def span_of(text):
    return doc_span(Document("lib-%d" % abs(hash(text)), text))


class TestTokenSet:
    def test_basic(self):
        assert token_set("Silent River") == {"silent", "river"}

    def test_case_folding(self):
        assert token_set("SILENT river") == token_set("silent RIVER")

    def test_stopwords_dropped(self):
        assert token_set("The Silent River") == {"silent", "river"}

    def test_all_stopwords_kept_as_fallback(self):
        assert token_set("the and of") == {"the", "and", "of"}

    def test_works_on_spans(self):
        assert token_set(span_of("Crimson Empire")) == {"crimson", "empire"}

    def test_memoised(self):
        span = span_of("memo target")
        assert token_set(span) is token_set(span)


class TestJaccard:
    def test_identical(self):
        assert jaccard("Silent River", "Silent River") == 1.0

    def test_disjoint(self):
        assert jaccard("alpha beta", "gamma delta") == 0.0

    def test_partial(self):
        assert abs(jaccard("a b c x", "a b c y") - 0.5) < 1e-9

    def test_empty(self):
        assert jaccard("", "anything") == 0.0


class TestMakeSimilar:
    def test_threshold(self):
        loose = make_similar(0.3)
        strict = make_similar(0.9)
        assert loose("Silent River", "Silent River Remastered")
        assert not strict("Silent River", "Silent River Remastered")

    def test_blockable_flag(self):
        assert make_similar(0.5).blockable

    def test_accepting_pairs_share_a_token(self):
        similar = make_similar(0.4)
        # blocking exactness precondition: any accepted pair overlaps
        pairs = [
            ("Silent River", "River Song"),
            ("Crimson Empire", "Empire Crimson"),
        ]
        for a, b in pairs:
            if similar(a, b):
                assert token_set(a) & token_set(b)
