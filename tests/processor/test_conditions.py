"""Three-valued condition evaluation tests (section 4.1)."""

import pytest

from repro.ctables.assignments import Contain, Exact, value_key
from repro.ctables.ctable import Cell
from repro.processor.conditions import (
    ComparisonCondition,
    PFunctionCondition,
    make_side,
)
from repro.processor.context import ExecConfig, ExecutionContext
from repro.processor.library import make_similar
from repro.text.corpus import Corpus
from repro.text.document import Document
from repro.text.span import Span, doc_span
from repro.xlog.program import Program


@pytest.fixture
def context():
    program = Program.parse("q(x) :- base(x).", extensional=["base"])
    return ExecutionContext(program, Corpus({"base": []}))


def exact_cell(*values):
    return Cell(tuple(Exact(v) for v in values))


def span_of(text):
    return doc_span(Document("cd-%d" % abs(hash(text)), text))


class TestComparisonAgainstConstant:
    def test_all_satisfy(self, context):
        cond = ComparisonCondition(make_side(attr="p"), ">", make_side(const=100))
        result = cond.evaluate({"p": exact_cell(200, 300)}, context)
        assert result.some and result.all

    def test_some_satisfy_filters(self, context):
        cond = ComparisonCondition(make_side(attr="p"), ">", make_side(const=100))
        result = cond.evaluate({"p": exact_cell(50, 200)}, context)
        assert result.some and not result.all
        filtered = result.filtered["p"]
        assert [a.value for a in filtered.assignments] == [200]

    def test_none_satisfy(self, context):
        cond = ComparisonCondition(make_side(attr="p"), ">", make_side(const=100))
        result = cond.evaluate({"p": exact_cell(1, 2)}, context)
        assert not result.some

    def test_contain_ordering_uses_numeric_candidates(self, context):
        cell = Cell((Contain(span_of("price 619,000 beats 4500")),))
        cond = ComparisonCondition(make_side(attr="p"), ">", make_side(const=500000))
        result = cond.evaluate({"p": cell}, context)
        assert result.some
        assert not result.all  # non-numeric sub-spans cannot satisfy

    def test_contain_ordering_drop(self, context):
        cell = Cell((Contain(span_of("only 42 here")),))
        cond = ComparisonCondition(make_side(attr="p"), ">", make_side(const=100))
        result = cond.evaluate({"p": cell}, context)
        assert not result.some

    def test_equality_against_string_const(self, context):
        cell = Cell((Contain(span_of("find Basktall HS here")),))
        cond = ComparisonCondition(make_side(attr="s"), "=", make_side(const="Basktall HS"))
        result = cond.evaluate({"s": cell}, context)
        assert result.some

    def test_null_comparison(self, context):
        cond = ComparisonCondition(make_side(attr="j"), "!=", make_side(const=None))
        result = cond.evaluate({"j": exact_cell(1999)}, context)
        assert result.some and result.all


class TestAttrToAttr:
    def test_equality_between_cells(self, context):
        cond = ComparisonCondition(make_side(attr="a"), "=", make_side(attr="b"))
        result = cond.evaluate(
            {"a": exact_cell(1, 2), "b": exact_cell(2, 3)}, context
        )
        assert result.some and not result.all
        assert [a.value for a in result.filtered["a"].assignments] == [2]
        assert [a.value for a in result.filtered["b"].assignments] == [2]

    def test_arith_offset(self, context):
        # lp < fp + 5
        cond = ComparisonCondition(
            make_side(attr="lp"), "<", make_side(attr="fp", offset=5)
        )
        short = cond.evaluate({"lp": exact_cell(12), "fp": exact_cell(10)}, context)
        assert short.some
        long = cond.evaluate({"lp": exact_cell(30), "fp": exact_cell(10)}, context)
        assert not long.some


class TestCaps:
    def test_pair_cap_degrades_conservatively(self):
        program = Program.parse("q(x) :- base(x).", extensional=["base"])
        context = ExecutionContext(
            program, Corpus({"base": []}), config=ExecConfig(pair_cap=4)
        )
        cond = ComparisonCondition(make_side(attr="a"), "=", make_side(attr="b"))
        result = cond.evaluate(
            {"a": exact_cell(1, 2, 3), "b": exact_cell(1, 2, 3)}, context
        )
        assert result.capped and result.some and not result.all
        assert result.filtered == {}

    def test_cap_hit_counted(self):
        program = Program.parse("q(x) :- base(x).", extensional=["base"])
        context = ExecutionContext(
            program, Corpus({"base": []}), config=ExecConfig(pair_cap=1)
        )
        cond = ComparisonCondition(make_side(attr="a"), "=", make_side(attr="b"))
        cond.evaluate({"a": exact_cell(1, 2), "b": exact_cell(1)}, context)
        assert context.stats.cap_hits >= 1


class TestPFunctionCondition:
    def make(self, threshold=0.5):
        func = make_similar(threshold)
        return PFunctionCondition(
            "similar", func, [make_side(attr="a"), make_side(attr="b")]
        )

    def test_exact_pair_evaluation(self, context):
        cond = self.make()
        result = cond.evaluate(
            {
                "a": exact_cell(span_of("Silent River")),
                "b": exact_cell(span_of("Silent River Remastered")),
            },
            context,
        )
        assert result.some

    def test_filters_non_matching_values(self, context):
        cond = self.make()
        match = span_of("Crimson Empire")
        miss = span_of("Totally Different")
        result = cond.evaluate(
            {
                "a": Cell((Exact(match), Exact(miss))),
                "b": exact_cell(span_of("Crimson Empire Story")),
            },
            context,
        )
        keys = {value_key(a.value) for a in result.filtered["a"].assignments}
        assert keys == {value_key(match)}

    def test_contain_side_is_conservative(self, context):
        cond = self.make()
        result = cond.evaluate(
            {
                "a": Cell((Contain(span_of("Silent River something")),)),
                "b": exact_cell(span_of("Silent River")),
            },
            context,
        )
        assert result.capped and result.some

    def test_token_overlap_refutation(self, context):
        # blockable + zero shared tokens: exact refutation even with contain
        cond = self.make()
        result = cond.evaluate(
            {
                "a": Cell((Contain(span_of("alpha beta gamma")),)),
                "b": exact_cell(span_of("delta epsilon")),
            },
            context,
        )
        assert not result.some
