"""Fixed-size document chunking (``ExecConfig.partition_docs``).

The resident service partitions by document count instead of worker
count so partition boundaries stay put as the corpus grows.  The
contract: chunked execution is byte-identical to serial execution, and
within one engine the delta path re-executes only the chunks an
append or edit dirtied.
"""

import pytest

from repro.processor.context import ExecConfig
from repro.processor.executor import IFlexEngine, RuleCache
from tests.processor.test_incremental import build_corpus, build_program, page
from tests.processor.test_parallel import result_image


def execute(corpus, cache=None, **config_kwargs):
    engine = IFlexEngine(
        build_program(), corpus, config=ExecConfig(**config_kwargs)
    )
    return engine, engine.execute(cache=cache)


class TestEquivalence:
    @pytest.mark.parametrize("partition_docs", [1, 2, 3, 8, 50])
    def test_chunked_matches_serial(self, partition_docs):
        corpus = build_corpus(8)
        _, serial = execute(corpus)
        _, chunked = execute(corpus, partition_docs=partition_docs)
        assert result_image(chunked) == result_image(serial)

    def test_chunking_composes_with_workers(self):
        corpus = build_corpus(8)
        _, serial = execute(corpus)
        _, chunked = execute(
            corpus, partition_docs=2, workers=3, backend="thread"
        )
        assert result_image(chunked) == result_image(serial)


class TestResidentDelta:
    def test_append_recomputes_only_new_chunks(self):
        corpus = build_corpus(4)
        engine = IFlexEngine(
            build_program(), corpus, config=ExecConfig(partition_docs=1)
        )
        cache = RuleCache()
        cold = engine.execute(cache=cache)
        assert cold.stats.partitions_recomputed == 4

        corpus.add_documents("pages", [page(4), page(5)])
        engine.rebind_corpus()
        delta = engine.execute(cache=cache)
        assert delta.stats.partitions_recomputed == 2
        assert delta.stats.partitions_reused == 4
        assert result_image(delta) == result_image(
            execute(build_corpus(6))[1]
        )

    def test_edit_recomputes_only_its_chunk(self):
        corpus = build_corpus(6)
        engine = IFlexEngine(
            build_program(), corpus, config=ExecConfig(partition_docs=2)
        )
        cache = RuleCache()
        engine.execute(cache=cache)

        edited = page(3, salt=" EDITED")
        corpus.add_documents("pages", [edited], replace=True)
        engine.rebind_corpus(edited_docs=["d3"])
        delta = engine.execute(cache=cache)
        assert delta.stats.partitions_recomputed == 1  # d3's chunk only
        assert delta.stats.partitions_reused == 2
        assert result_image(delta) == result_image(
            execute(build_corpus(6, salts={3: " EDITED"}))[1]
        )

    def test_rebind_to_new_corpus_object(self):
        engine = IFlexEngine(
            build_program(), build_corpus(2), config=ExecConfig(partition_docs=1)
        )
        first = engine.execute()
        assert first.tuple_count == 2
        engine.rebind_corpus(build_corpus(5))
        second = engine.execute()
        assert second.tuple_count == 5

    def test_rebind_preserves_quarantine(self):
        corpus = build_corpus(4)
        engine = IFlexEngine(
            build_program(), corpus, config=ExecConfig(partition_docs=1)
        )
        engine._exclude_document("d1")
        engine.rebind_corpus()
        assert engine.execute().tuple_count == 3
