"""Property: superset semantics survives arbitrarily tight caps.

Every enumeration cap (enum_cap, pair_cap) is allowed to degrade
precision — never soundness.  Executing with pathologically small caps
must still represent every exact world.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alog.semantics import program_possible_relations
from repro.ctables.worlds import compact_worlds
from repro.processor.context import ExecConfig
from repro.processor.executor import IFlexEngine
from repro.text.corpus import Corpus
from repro.text.document import Document
from repro.xlog.program import Program

PROGRAM = """
vals(x, <p>) :- base(x), ie(@x, p).
q(p) :- vals(x, p), p > 5.
ie(@x, p) :- from(@x, p), numeric(p) = yes.
"""


@settings(max_examples=30, deadline=None)
@given(
    st.text(alphabet="ab 147", min_size=1, max_size=10),
    st.integers(min_value=1, max_value=5),
)
def test_superset_with_tiny_caps(text, cap):
    corpus = Corpus({"base": [Document("cp", text)]})
    program = Program.parse(PROGRAM, extensional=["base"], query="q")
    exact = program_possible_relations(program, corpus)
    config = ExecConfig(enum_cap=max(cap, 2), pair_cap=cap)
    result = IFlexEngine(program, corpus, config=config).execute()
    approx = compact_worlds(result.query_table)
    assert exact <= approx


def test_tiny_caps_join_still_superset():
    corpus = Corpus(
        {"l": [Document("l0", "3 9")], "r": [Document("r0", "7")]}
    )
    program = Program.parse(
        """
        lv(x, <a>) :- l(x), ie1(@x, a).
        rv(y, <b>) :- r(y), ie2(@y, b).
        q(a, b) :- lv(x, a), rv(y, b), a > b.
        ie1(@x, a) :- from(@x, a), numeric(a) = yes.
        ie2(@y, b) :- from(@y, b), numeric(b) = yes.
        """,
        extensional=["l", "r"],
        query="q",
    )
    exact = program_possible_relations(program, corpus)
    for pair_cap in (1, 2, 3):
        config = ExecConfig(enum_cap=2, pair_cap=pair_cap)
        result = IFlexEngine(program, corpus, config=config).execute()
        assert exact <= compact_worlds(result.query_table)


def test_caps_only_loosen_never_tighten():
    """The tight-cap result's world set contains the default-cap one."""
    corpus = Corpus({"base": [Document("cc", "2 7 9")]})
    program = Program.parse(PROGRAM, extensional=["base"], query="q")
    loose = IFlexEngine(program, corpus).execute()
    tight = IFlexEngine(
        program, corpus, config=ExecConfig(enum_cap=2, pair_cap=1)
    ).execute()
    assert compact_worlds(loose.query_table) <= compact_worlds(tight.query_table)
