"""Semi-naive fixpoint execution over stratified-safe recursive groups.

Transitive closure as edge documents: each ``<p>AAA BBB</p>`` page is
one edge (fixed-width numbers so ``first_half`` splits source from
target), ``path`` is the recursive closure.  The suite pins byte
identity across backends, a differential check against a hand-unrolled
program, the unsafe-cycle refusal, the ``max_fixpoint_iterations``
guard, and the warm result-cache interaction.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ctables import table_key
from repro.ctables.assignments import value_text
from repro.errors import EvaluationError, ExecutionFailure
from repro.processor.context import ExecConfig
from repro.processor.executor import IFlexEngine, RuleCache
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.xlog.program import Program

TC_SOURCE = """
edge(x, y) :- docs(d), pair(@d, x, y).
pair(@d, x, y) :- from(@d, x), numeric(x) = yes, first_half(x) = yes, from(@d, y), numeric(y) = yes, first_half(y) = no.
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y2, z), y = y2.
"""

UNSAFE_SOURCE = """
q(t)? :- docs(d), q(t).
"""


def edge_corpus(edges):
    docs = [
        parse_html("e%03d" % i, "<p>%03d %03d</p>" % (a, b))
        for i, (a, b) in enumerate(sorted(set(edges)))
    ]
    return Corpus({"docs": docs})


def tc_program(query="path"):
    return Program.parse(TC_SOURCE, extensional=["docs"], query=query)


def chain(n):
    """``n`` edges 1 -> 2 -> ... -> n+1."""
    return [(i, i + 1) for i in range(1, n + 1)]


def closure(edges):
    """Reference transitive closure, as a set of int pairs."""
    paths = set(edges)
    while True:
        new = {(x, z) for (x, y) in paths for (w, z) in edges if y == w}
        if new <= paths:
            return paths
        paths |= new


def result_pairs(result):
    """The query table as a set of int pairs (expanding assignments)."""
    pairs = set()
    for t in result.query_table:
        for left in t.cells[0].assignments:
            for right in t.cells[1].assignments:
                pairs.add(
                    (int(value_text(left.value)), int(value_text(right.value)))
                )
    return pairs


class TestFixpoint:
    def test_transitive_closure_of_a_chain(self):
        result = IFlexEngine(tc_program(), edge_corpus(chain(4))).execute()
        assert result_pairs(result) == closure(chain(4))
        # n productive iterations plus the final empty proof-of-fixpoint
        assert result.stats.fixpoint_iterations == 5

    def test_cyclic_graph_converges(self):
        edges = [(1, 2), (2, 3), (3, 1)]
        result = IFlexEngine(tc_program(), edge_corpus(edges)).execute()
        assert result_pairs(result) == closure(edges)

    def test_iteration_count_rides_on_stats_merge(self):
        result = IFlexEngine(tc_program(), edge_corpus(chain(2))).execute()
        assert result.stats.fixpoint_iterations == 3
        assert vars(result.stats)["fixpoint_iterations"] == 3


class TestBackendByteIdentity:
    @pytest.mark.parametrize(
        "config",
        [
            ExecConfig(backend="serial"),
            ExecConfig(backend="thread", workers=2),
            ExecConfig(backend="process", workers=2),
        ],
        ids=["serial", "thread", "process"],
    )
    def test_each_backend_matches_the_serial_image(self, config):
        corpus = edge_corpus(chain(4))
        baseline = IFlexEngine(tc_program(), corpus).execute()
        result = IFlexEngine(tc_program(), corpus, config=config).execute()
        assert table_key(result.query_table) == table_key(baseline.query_table)
        assert (
            result.stats.fixpoint_iterations
            == baseline.stats.fixpoint_iterations
        )


class TestDifferentialUnrolled:
    """Recursive ``path`` vs a hand-unrolled bounded union.

    The unrolled program derives ``path`` as union of length-1..K join
    chains; on graphs whose longest simple path is under K hops, the
    value sets must agree (compared as sets — the fixpoint deduplicates,
    the unrolled union re-derives).
    """

    UNROLLED = """
edge(x, y) :- docs(d), pair(@d, x, y).
pair(@d, x, y) :- from(@d, x), numeric(x) = yes, first_half(x) = yes, from(@d, y), numeric(y) = yes, first_half(y) = no.
path1(x, y) :- edge(x, y).
path2(x, z) :- path1(x, y), edge(y2, z), y = y2.
path3(x, z) :- path2(x, y), edge(y2, z), y = y2.
path4(x, z) :- path3(x, y), edge(y2, z), y = y2.
path(x, y) :- path1(x, y).
path(x, y) :- path2(x, y).
path(x, y) :- path3(x, y).
path(x, y) :- path4(x, y).
"""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_recursive_matches_hand_unrolled(self, edges):
        corpus = edge_corpus(edges)
        recursive = IFlexEngine(tc_program(), corpus).execute()
        unrolled_program = Program.parse(
            self.UNROLLED, extensional=["docs"], query="path"
        )
        unrolled = IFlexEngine(unrolled_program, corpus).execute()
        expected = closure(sorted(set(edges)))
        # 4 distinct edges -> longest simple path has at most 4 hops,
        # so the K=4 unrolling is exhaustive
        assert result_pairs(recursive) == expected
        assert result_pairs(unrolled) == expected


class TestUnsafeRefusal:
    def test_psi_in_cycle_still_fails_alog016(self):
        program = Program.parse(
            UNSAFE_SOURCE, extensional=["docs"], query="q"
        )
        corpus = edge_corpus(chain(1))
        with pytest.raises(EvaluationError) as err:
            IFlexEngine(program, corpus, validate=False).execute()
        assert "ALOG016" in str(err.value)
        assert "cannot be stratified" in str(err.value)


class TestFixpointGuard:
    def test_exceeding_the_cap_is_an_enriched_failure(self):
        config = ExecConfig(max_fixpoint_iterations=2)
        with pytest.raises(ExecutionFailure) as err:
            IFlexEngine(
                tc_program(), edge_corpus(chain(4)), config=config
            ).execute()
        failure = err.value
        assert failure.operator == "Fixpoint"
        assert failure.predicate == "path"
        assert "max_fixpoint_iterations" in str(failure)

    def test_guard_surfaces_under_the_skip_policy_too(self):
        # not attributable to one document (doc_id is None), so the
        # skip policy cannot quarantine its way past it
        config = ExecConfig(max_fixpoint_iterations=2, on_error="skip")
        with pytest.raises(ExecutionFailure):
            IFlexEngine(
                tc_program(), edge_corpus(chain(4)), config=config
            ).execute()

    def test_generous_cap_is_untouched(self):
        config = ExecConfig(max_fixpoint_iterations=50)
        result = IFlexEngine(
            tc_program(), edge_corpus(chain(4)), config=config
        ).execute()
        assert result_pairs(result) == closure(chain(4))


class TestWarmResultCache:
    def test_second_run_reuses_the_recursive_group(self):
        corpus = edge_corpus(chain(4))
        cache = RuleCache()
        cold = IFlexEngine(tc_program(), corpus).execute(cache=cache)
        assert cold.reuse_summary["path"] == "computed"
        warm = IFlexEngine(tc_program(), corpus).execute(cache=cache)
        assert warm.reuse_summary["path"] == "full"
        assert warm.reuse_summary["edge"] == "full"
        assert table_key(warm.query_table) == table_key(cold.query_table)

    def test_corpus_change_invalidates_the_group(self):
        cache = RuleCache()
        IFlexEngine(tc_program(), edge_corpus(chain(4))).execute(cache=cache)
        grown = IFlexEngine(
            tc_program(), edge_corpus(chain(5))
        ).execute(cache=cache)
        assert grown.reuse_summary["path"] == "computed"
        assert result_pairs(grown) == closure(chain(5))
