"""Differential tests: indexed execution is byte-identical to naive.

The indexing + memoization layer (feature indexes, ``EvalCache``) is an
accelerator with a superset-semantics guarantee: for any document, span,
feature and value, the indexed/cached path must produce exactly what the
naive span-by-span path produces — same booleans, same refine hints in
the same order, same compact tables including maybe flags and assignment
multisets.  These tests enforce that on hypothesis-generated documents
and constraint chains, and at engine level on a Table 2 task.

The vectorized batch kernels carry the same contract one step further:
the batched path must match the scalar-indexed path not just byte for
byte in its answers but on *every* statistics counter except the two
batch-attribution fields (``verify_batch`` / ``refine_batch``), across
all three scheduler backends.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctables.assignments import Contain
from repro.ctables.ctable import Cell
from repro.processor.constraints import (
    apply_constraint_to_cell,
    apply_constraint_to_cells,
)
from repro.processor.context import ExecConfig, ExecutionContext
from repro.processor.executor import IFlexEngine
from repro.text.corpus import Corpus
from repro.text.document import Document
from repro.text.span import Span, doc_span
from repro.xlog.program import Program

#: the only statistics fields the scalar and batch paths may disagree on
BATCH_ONLY_FIELDS = frozenset(("verify_batch", "refine_batch"))


def assert_stats_equal_modulo_batch(scalar_stats, batch_stats):
    scalar_fields = vars(scalar_stats)
    batch_fields = vars(batch_stats)
    drift = {
        name: (scalar_fields[name], batch_fields[name])
        for name in scalar_fields
        if name not in BATCH_ONLY_FIELDS
        and scalar_fields[name] != batch_fields[name]
    }
    assert not drift, drift


def fresh_contexts():
    """One context per (index, cache) switch combination.

    The first is the fully naive reference; every other combination must
    match it exactly.
    """
    program = Program.parse("q(x) :- base(x).", extensional=["base"])
    corpus = Corpus({"base": []})
    configs = [
        ExecConfig(use_index=False, use_eval_cache=False),
        ExecConfig(use_index=True, use_eval_cache=False),
        ExecConfig(use_index=False, use_eval_cache=True),
        ExecConfig(use_index=True, use_eval_cache=True),
    ]
    return [ExecutionContext(program, corpus, config=c) for c in configs]


# ----------------------------------------------------------------------
# document / span / chain generators
# ----------------------------------------------------------------------

_PIECES = (
    "Alice", "bob", "Carol", "dave", "X", "De-Vries", "THE",
    "42", "3,500", "$99", "1999", "007",
    ",", ".", ";", "$", "%", "  ", "\n",
)


@st.composite
def documents(draw):
    parts = draw(st.lists(st.sampled_from(_PIECES), min_size=1, max_size=30))
    text = " ".join(parts)
    n = len(text)

    def interval():
        start = draw(st.integers(0, n))
        end = draw(st.integers(start, n))
        return (start, end)

    # possibly-overlapping regions: the document model sorts but does
    # not merge them, and the index must match the naive path anyway
    regions = {
        kind: [interval() for _ in range(draw(st.integers(0, 3)))]
        for kind in ("bold", "italic", "hyperlink")
    }
    return Document("h%d" % draw(st.integers(0, 10**9)), text, regions=regions)


@st.composite
def spans_of(draw, doc):
    n = len(doc.text)
    start = draw(st.integers(0, n))
    end = draw(st.integers(start, n))
    return Span(doc, start, end)


#: (feature, value) pool for chains — indexed and unindexed features mixed
_CONSTRAINTS = (
    ("numeric", "yes"),
    ("numeric", "no"),
    ("numeric", "distinct_yes"),
    ("capitalized", "yes"),
    ("capitalized", "no"),
    ("bold_font", "yes"),
    ("bold_font", "no"),
    ("bold_font", "distinct_yes"),
    ("bold_font", "distinct_no"),
    ("italic_font", "yes"),
    ("italic_font", "distinct_yes"),
    ("hyperlinked", "no"),
    ("max_length", 12),
    ("max_length", 3),
    ("min_length", 2),
    ("preceded_by", "$"),
)

#: every (feature, value) an index implementation may answer
_INDEXED = (
    ("numeric", "yes"),
    ("numeric", "no"),
    ("numeric", "distinct_yes"),
    ("capitalized", "yes"),
    ("capitalized", "no"),
    ("bold_font", "yes"),
    ("bold_font", "no"),
    ("bold_font", "distinct_yes"),
    ("bold_font", "distinct_no"),
    ("italic_font", "yes"),
    ("italic_font", "no"),
    ("italic_font", "distinct_yes"),
    ("italic_font", "distinct_no"),
    ("max_length", 7),
)


class TestVerifyRefineEquivalence:
    """Raw dispatch equivalence on arbitrary spans and values."""

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_all_switch_combinations_agree(self, data):
        doc = data.draw(documents())
        span = data.draw(spans_of(doc))
        reference, *others = fresh_contexts()
        for feature_name, value in _INDEXED:
            feature = reference.feature(feature_name)
            want_verify = reference.verify_value(feature, span, value)
            want_refine = list(reference.refine_span(feature, span, value))
            for context in others:
                f = context.feature(feature_name)
                assert context.verify_value(f, span, value) == want_verify
                assert list(context.refine_span(f, span, value)) == want_refine

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_cached_second_lookup_identical(self, data):
        doc = data.draw(documents())
        span = data.draw(spans_of(doc))
        context = fresh_contexts()[3]  # index + cache
        for feature_name, value in _INDEXED:
            feature = context.feature(feature_name)
            first = (
                context.verify_value(feature, span, value),
                context.refine_span(feature, span, value),
            )
            second = (
                context.verify_value(feature, span, value),
                context.refine_span(feature, span, value),
            )
            assert first == second
        assert context.stats.verify_cache_hits >= len(_INDEXED)
        assert context.stats.refine_cache_hits >= len(_INDEXED)


class TestConstraintChainEquivalence:
    """``apply_constraint_to_cell`` chains with prior rechecks."""

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_chain_over_contain_cell(self, data):
        doc = data.draw(documents())
        chain = data.draw(
            st.lists(st.sampled_from(_CONSTRAINTS), min_size=1, max_size=4)
        )
        contexts = fresh_contexts()
        cells = [Cell((Contain(doc_span(doc)),))] * len(contexts)
        priors = []
        for feature_name, value in chain:
            cells = [
                apply_constraint_to_cell(
                    cell, feature_name, value, tuple(priors), context
                )
                for cell, context in zip(cells, contexts)
            ]
            priors.append((feature_name, value))
            reference = repr(cells[0])
            for cell in cells[1:]:
                assert repr(cell) == reference

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_chain_over_expansion_cell(self, data):
        doc = data.draw(documents())
        span = data.draw(spans_of(doc))
        chain = data.draw(
            st.lists(st.sampled_from(_CONSTRAINTS), min_size=1, max_size=3)
        )
        contexts = fresh_contexts()
        cells = [Cell.expansion([Contain(doc_span(doc)), Contain(span)])] * len(
            contexts
        )
        priors = []
        for feature_name, value in chain:
            cells = [
                apply_constraint_to_cell(
                    cell, feature_name, value, tuple(priors), context
                )
                for cell, context in zip(cells, contexts)
            ]
            priors.append((feature_name, value))
        reference = repr(cells[0])
        assert all(repr(cell) == reference for cell in cells[1:])


class TestBatchScalarEquivalence:
    """The vectorized batch path against the scalar path it replaces."""

    def _context_pair(self):
        """(scalar, batch) contexts, both indexed + cached."""
        program = Program.parse("q(x) :- base(x).", extensional=["base"])
        corpus = Corpus({"base": []})
        return (
            ExecutionContext(program, corpus, config=ExecConfig(use_batch=False)),
            ExecutionContext(program, corpus, config=ExecConfig()),
        )

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_cells_and_counters_identical(self, data):
        doc = data.draw(documents())
        spans = data.draw(st.lists(spans_of(doc), min_size=0, max_size=6))
        # unique constraints: the batched entry point documents that the
        # caller must not re-apply the in-flight (feature, value) — the
        # operator layer falls back to scalar in that case
        chain = data.draw(
            st.lists(
                st.sampled_from(_CONSTRAINTS),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        scalar_context, batch_context = self._context_pair()
        make_cells = lambda: [  # noqa: E731 - tiny local factory
            Cell((Contain(doc_span(doc)),)),
            Cell(tuple(Contain(span) for span in spans)),
        ]
        scalar_cells, batch_cells = make_cells(), make_cells()
        priors = []
        for feature_name, value in chain:
            scalar_cells = [
                apply_constraint_to_cell(
                    cell, feature_name, value, tuple(priors), scalar_context
                )
                for cell in scalar_cells
            ]
            batch_cells = apply_constraint_to_cells(
                batch_cells, feature_name, value, tuple(priors), batch_context
            )
            priors.append((feature_name, value))
            assert [repr(c) for c in batch_cells] == [repr(c) for c in scalar_cells]
        assert_stats_equal_modulo_batch(scalar_context.stats, batch_context.stats)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_duplicate_spans_within_batch_count_as_cache_hits(self, data):
        doc = data.draw(documents())
        span = data.draw(spans_of(doc))
        scalar_context, batch_context = self._context_pair()
        cells = [Cell((Contain(span), Contain(span))), Cell((Contain(span),))]
        scalar_out = [
            apply_constraint_to_cell(c, "max_length", 7, (), scalar_context)
            for c in cells
        ]
        batch_out = apply_constraint_to_cells(
            cells, "max_length", 7, (), batch_context
        )
        assert [repr(c) for c in batch_out] == [repr(c) for c in scalar_out]
        # the repeated span is a miss once and a hit afterwards on BOTH
        # paths — within-batch duplicates must not look like extra misses
        assert_stats_equal_modulo_batch(scalar_context.stats, batch_context.stats)


def table_image(table):
    """Everything observable: cells, multisets, maybe flags, in order."""
    return (table.attrs, [repr(t) for t in table.tuples])


def result_image(result):
    return {name: table_image(t) for name, t in result.tables.items()}


class TestEngineEquivalence:
    """Whole-program differential on a Table 2 task and a maybe-heavy
    threshold program."""

    def test_t1_task_byte_identical(self):
        from repro.experiments.tasks import build_task

        task = build_task("T1", size=14, seed=0)
        program = task.program.add_constraint(
            "extractIMDB", "title", "max_length", 60
        )
        naive = IFlexEngine(
            program,
            task.corpus,
            config=ExecConfig(use_index=False, use_eval_cache=False),
            validate=False,
        ).execute()
        fast = IFlexEngine(program, task.corpus, validate=False).execute()
        assert result_image(fast) == result_image(naive)
        # the accelerated run performs strictly fewer naive evaluations
        assert fast.stats.verify_calls <= naive.stats.verify_calls
        assert fast.stats.refine_calls <= naive.stats.refine_calls
        assert fast.stats.index_refine_calls > 0

    def test_maybe_flags_identical(self):
        corpus = Corpus(
            {
                "base": [
                    Document("d%d" % i, "%d %d" % (5 + i, 500 + i))
                    for i in range(6)
                ]
            }
        )
        program = Program.parse(
            """
            vals(x, <p>) :- base(x), ie(@x, p).
            q(p) :- vals(x, p), p > 150.
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            extensional=["base"],
            query="q",
        )
        naive = IFlexEngine(
            program,
            corpus,
            config=ExecConfig(use_index=False, use_eval_cache=False),
            validate=False,
        ).execute()
        fast = IFlexEngine(program, corpus, validate=False).execute()
        assert naive.query_table.maybe_count() > 0
        assert result_image(fast) == result_image(naive)


class TestBatchAcrossBackends:
    """Scalar-indexed vs vectorized-batch, per scheduler backend."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_results_and_counters_identical(self, backend):
        from repro.experiments.tasks import build_task

        task = build_task("T1", size=24, seed=0)
        program = task.program.add_constraint(
            "extractIMDB", "title", "bold_font", "distinct_yes"
        ).add_constraint(
            "extractIMDB", "title", "max_length", 60
        ).add_constraint(
            "extractIMDB", "votes", "max_length", 30
        )
        scalar = IFlexEngine(
            program,
            task.corpus,
            config=ExecConfig(workers=4, backend=backend, use_batch=False),
            validate=False,
        ).execute()
        batch = IFlexEngine(
            program,
            task.corpus,
            config=ExecConfig(workers=4, backend=backend),
            validate=False,
        ).execute()
        assert result_image(batch) == result_image(scalar)
        assert_stats_equal_modulo_batch(scalar.stats, batch.stats)
        # the kernels actually carried work on this chain
        assert batch.stats.verify_batch > 0
        assert batch.stats.refine_batch > 0
        assert scalar.stats.verify_batch == 0 == scalar.stats.refine_batch

    def test_artifact_cache_round_trip_matches(self, tmp_path):
        """Cold build, warm mmap, and cache-free runs are byte-identical."""
        from repro.experiments.tasks import build_task

        task = build_task("T1", size=14, seed=0)
        program = task.program.add_constraint(
            "extractIMDB", "title", "max_length", 60
        )
        plain = IFlexEngine(program, task.corpus, validate=False).execute()
        cold_engine = IFlexEngine(
            program,
            task.corpus,
            config=ExecConfig(artifact_cache=str(tmp_path)),
            validate=False,
        )
        cold = cold_engine.execute()
        warm_engine = IFlexEngine(
            program,
            task.corpus,
            config=ExecConfig(artifact_cache=str(tmp_path)),
            validate=False,
        )
        warm = warm_engine.execute()
        assert result_image(cold) == result_image(plain)
        assert result_image(warm) == result_image(plain)
        assert_stats_equal_modulo_batch(plain.stats, cold.stats)
        assert_stats_equal_modulo_batch(plain.stats, warm.stats)
        # the cold engine built and persisted; the warm engine mapped
        cold_store = cold_engine.index_store.columnar
        warm_store = warm_engine.index_store.columnar
        assert cold_store.built > 0
        assert warm_store.built == 0
        assert warm_store._bundles and warm_store._bundles[0].mapped

    def test_corrupt_cache_rebuilds_and_matches(self, tmp_path):
        from repro.experiments.tasks import build_task

        task = build_task("T1", size=14, seed=0)
        plain = IFlexEngine(task.program, task.corpus, validate=False).execute()
        IFlexEngine(
            task.program,
            task.corpus,
            config=ExecConfig(artifact_cache=str(tmp_path)),
            validate=False,
        ).execute()
        for bundle_file in tmp_path.glob("*.cols.npy"):
            bundle_file.write_bytes(b"corrupt")
        rebuilt_engine = IFlexEngine(
            task.program,
            task.corpus,
            config=ExecConfig(artifact_cache=str(tmp_path)),
            validate=False,
        )
        rebuilt = rebuilt_engine.execute()
        assert result_image(rebuilt) == result_image(plain)
        assert rebuilt_engine.index_store.columnar.built > 0


class TestPartitionCounterMerge:
    """Cache hit/miss counters merge across parallel partitions to the
    serial counts (acceptance criterion; the determinism suite pins the
    full stats image, this pins the cache counters specifically)."""

    def test_counters_match_serial_and_are_live(self):
        from repro.experiments.tasks import build_task

        task = build_task("T1", size=24, seed=0)
        # a constraint chain on top of numeric(votes): the max_length
        # selection verifies every exact span the refinement produced
        program = task.program.add_constraint(
            "extractIMDB", "votes", "max_length", 30
        )
        serial = IFlexEngine(program, task.corpus, validate=False).execute()
        parallel = IFlexEngine(
            program,
            task.corpus,
            config=ExecConfig(workers=4, backend="thread"),
            validate=False,
        ).execute()
        assert serial.stats.verify_cache_misses > 0
        assert serial.stats.refine_cache_misses > 0
        for counter in (
            "verify_cache_hits",
            "verify_cache_misses",
            "refine_cache_hits",
            "refine_cache_misses",
            "index_verify_calls",
            "index_refine_calls",
        ):
            assert getattr(parallel.stats, counter) == getattr(
                serial.stats, counter
            ), counter

    def test_second_run_hits_the_engine_cache(self):
        from repro.experiments.tasks import build_task

        task = build_task("T1", size=10, seed=0)
        engine = IFlexEngine(task.program, task.corpus, validate=False)
        first = engine.execute()
        second = engine.execute()
        assert result_image(second) == result_image(first)
        # the engine-level EvalCache is warm: every Refine is a hit
        assert second.stats.refine_cache_hits > 0
        assert second.stats.refine_calls == 0
        assert second.stats.index_refine_calls == 0

    def test_explain_analyze_reports_cache_counters(self):
        from repro.experiments.tasks import build_task

        task = build_task("T1", size=10, seed=0)
        engine = IFlexEngine(task.program, task.corpus, validate=False)
        _, report = engine.explain_analyze()
        assert "eval cache:" in report
        assert "cache hits" in report  # per-operator column
