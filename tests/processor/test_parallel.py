"""Partitioned parallel execution: determinism and layer unit tests.

The guard for the physical execution layer: every backend, at any
worker count, must produce *identical* compact tables to the serial
engine — same tuple order, same cells, same maybe flags, same
assignment multisets.  Partitions are contiguous document slices and
the schedulers preserve task order, so this holds exactly (not just up
to reordering).
"""

import pytest

from repro.ctables.ctable import CompactTable
from repro.processor.context import ExecConfig, ExecutionContext
from repro.processor.executor import IFlexEngine, RuleCache
from repro.processor.plan import compile_predicate
from repro.processor.schedulers import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_scheduler,
)
from repro.processor.split import GatherOp, PlanSplit, bind_tables
from repro.text.corpus import Corpus
from repro.text.document import Document


def table_image(table):
    """Everything observable about a compact table, repr-exact.

    ``repr`` covers cells (choice vs expansion, assignment multisets)
    and the maybe flag, in tuple order.
    """
    return (table.attrs, [repr(t) for t in table.tuples])


def result_image(result):
    return {name: table_image(table) for name, table in result.tables.items()}


def execute(task, workers, backend, cache=None):
    config = ExecConfig(workers=workers, backend=backend)
    engine = IFlexEngine(task.program, task.corpus, config=config, validate=False)
    return engine.execute(cache=cache)


# Two Table 2 tasks with different plan shapes: T1 is a single-source
# extraction + selection; T7 joins two extracted tables through a
# similarity p-function.
DETERMINISM_TASKS = ("T1", "T7")
BACKENDS = ("serial", "thread", "process")


class TestBackendDeterminism:
    @pytest.mark.parametrize("task_id", DETERMINISM_TASKS)
    def test_all_backends_match_serial_exactly(self, task_id):
        from repro.experiments.tasks import build_task

        task = build_task(task_id, size=40, seed=0)
        reference = execute(task, 1, "serial")
        for backend in BACKENDS:
            result = execute(task, 4, backend)
            assert result_image(result) == result_image(reference), (
                "%s backend diverged from serial on %s" % (backend, task_id)
            )
            assert vars(result.stats) == vars(reference.stats)

    @pytest.mark.parametrize("task_id", DETERMINISM_TASKS)
    def test_answers_match_serial(self, task_id):
        from repro.experiments.runner import run_iflex
        from repro.experiments.tasks import build_task

        def outcome(workers, backend):
            task = build_task(task_id, size=40, seed=0)
            run = run_iflex(task, seed=0, workers=workers, backend=backend)
            return (
                run.final_count,
                run.exact_keys,
                run.converged,
                table_image(run.trace.final_result.query_table),
                [(r.mode, r.tuples, r.assignments) for r in run.trace.records],
            )

        reference = outcome(1, "serial")
        for backend in BACKENDS:
            assert outcome(4, backend) == reference

    def test_maybe_flags_survive_partitioning(self):
        # two numeric candidates per document, one on each side of the
        # selection threshold, so the annotated choice cells force
        # keep-as-maybe tuples
        corpus = Corpus(
            {"base": [Document("d%d" % i, "%d %d" % (5 + i, 500 + i)) for i in range(6)]}
        )
        from repro.xlog.program import Program

        program = Program.parse(
            """
            vals(x, <p>) :- base(x), ie(@x, p).
            q(p) :- vals(x, p), p > 150.
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            extensional=["base"],
            query="q",
        )
        serial = IFlexEngine(program, corpus, validate=False).execute()
        parallel = IFlexEngine(
            program,
            corpus,
            config=ExecConfig(workers=3, backend="thread"),
            validate=False,
        ).execute()
        assert serial.query_table.maybe_count() > 0
        assert result_image(parallel) == result_image(serial)


class TestReuseAcrossBackends:
    def test_partitioned_cache_full_hits_on_repeat(self):
        from repro.experiments.tasks import build_task

        task = build_task("T1", size=40, seed=0)
        cache = RuleCache()
        first = execute(task, 4, "serial", cache=cache)
        assert set(first.reuse_summary.values()) == {"computed"}
        second = execute(task, 4, "serial", cache=cache)
        assert set(second.reuse_summary.values()) == {"full"}
        assert result_image(second) == result_image(first)

    def test_partitioned_incremental_matches_fresh_serial(self):
        from repro.experiments.tasks import build_task

        task = build_task("T1", size=40, seed=0)
        cache = RuleCache()
        execute(task, 4, "serial", cache=cache)
        variant = task.program.add_constraint("extractIMDB", "title", "max_length", 200)
        engine = IFlexEngine(
            variant,
            task.corpus,
            config=ExecConfig(workers=4, backend="serial"),
            validate=False,
        )
        incremental = engine.execute(cache=cache)
        assert "incremental" in incremental.reuse_summary.values()
        assert cache.incremental_hits >= 1
        fresh = IFlexEngine(variant, task.corpus, validate=False).execute()
        assert table_image(incremental.query_table) == table_image(fresh.query_table)


class TestCorpusPartition:
    def docs(self, n):
        return [Document("d%d" % i, "t %d" % i) for i in range(n)]

    def test_partition_preserves_order_and_covers(self):
        corpus = Corpus({"a": self.docs(10)})
        parts = corpus.partition(4)
        ids = [d.doc_id for p in parts for d in p.table("a")]
        assert ids == [d.doc_id for d in corpus.table("a")]
        assert len(parts) == 4

    def test_partition_one_returns_self(self):
        corpus = Corpus({"a": self.docs(3)})
        assert corpus.partition(1) == [corpus]

    def test_more_partitions_than_documents(self):
        corpus = Corpus({"a": self.docs(2)})
        parts = corpus.partition(8)
        assert sum(p.size_of("a") for p in parts) == 2
        assert all(any(p.size_of(n) for n in p.table_names()) for p in parts)

    def test_empty_corpus(self):
        corpus = Corpus({"a": []})
        assert corpus.partition(4) == [corpus]


class TestSchedulers:
    @pytest.mark.parametrize(
        "scheduler",
        [SerialBackend(), ThreadBackend(4), ProcessBackend(4)],
        ids=lambda s: s.name,
    )
    def test_map_preserves_order(self, scheduler):
        items = list(range(17))
        assert scheduler.map(lambda i: i * i, items) == [i * i for i in items]

    def test_process_backend_handles_closures(self):
        # p-functions are closures; the fork payload slot must carry
        # them into children without pickling
        offset = 41
        backend = ProcessBackend(2)
        assert backend.map(lambda i: i + offset, [0, 1, 2, 3]) == [41, 42, 43, 44]

    def test_make_scheduler(self):
        assert make_scheduler("thread", 3).workers == 3
        ready = SerialBackend()
        assert make_scheduler(ready) is ready
        with pytest.raises(ValueError):
            make_scheduler("gpu", 2)


class TestPlanSplit:
    def build(self, source, corpus, query=None):
        from repro.alog.unfold import unfold_program
        from repro.xlog.program import Program

        program = Program.parse(
            source, extensional=corpus.table_names(), query=query
        )
        return unfold_program(program)

    def test_extraction_plan_is_fully_local(self):
        corpus = Corpus({"base": [Document("d", "a 12")]})
        program = self.build(
            """
            q(x, <p>) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            corpus,
        )
        split = PlanSplit(compile_predicate("q", program))
        assert split.fully_local
        assert "*local*" in split.explain()

    def test_join_plan_splits_at_the_scans(self):
        corpus = Corpus(
            {"l": [Document("d1", "a b")], "r": [Document("d2", "c d")]}
        )
        program = self.build(
            """
            q(s, t) :- l(x), r(y), ieL(@x, s), ieR(@y, t), s = t.
            ieL(@x, s) :- from(@x, s).
            ieR(@y, t) :- from(@y, t).
            """,
            corpus,
        )
        split = PlanSplit(compile_predicate("q", program))
        assert not split.fully_local
        assert split.has_local_work
        assert len(split.local_roots) >= 2  # one prefix per scan side

    def test_gather_substitution_executes_suffix(self):
        corpus = Corpus({"base": [Document("d%d" % i, "w %d" % i) for i in range(4)]})
        program = self.build(
            """
            q(x, <p>) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            corpus,
        )
        plan = compile_predicate("q", program)
        whole = plan.execute(ExecutionContext(program, corpus))
        parts = corpus.partition(2)
        tables = []
        for part in parts:
            fresh = compile_predicate("q", program)
            tables.append(fresh.execute(ExecutionContext(program, part)))
        merged = CompactTable.union(tables, attrs=whole.attrs)
        split = PlanSplit(compile_predicate("q", program))
        suffix = bind_tables(split, [merged], partitions=len(parts))
        assert isinstance(suffix, GatherOp)  # fully-local root degenerates
        out = suffix.execute(ExecutionContext(program, corpus))
        assert table_image(out) == table_image(whole)


class TestObservabilityAcrossBackends:
    """Metrics derive only from ExecutionStats counters, never timing,
    so every backend must produce byte-identical snapshots; spans must
    survive the scheduler result pipe (including the process fork)."""

    def snapshot(self, backend, workers=4):
        from repro.experiments.tasks import build_task
        from repro.observability.metrics import MetricsRegistry

        task = build_task("T1", size=40, seed=0)
        registry = MetricsRegistry()
        engine = IFlexEngine(
            task.program,
            task.corpus,
            config=ExecConfig(workers=workers, backend=backend),
            metrics=registry,
            validate=False,
        )
        engine.execute()
        return registry.to_json()

    def test_metrics_byte_identical_across_backends(self):
        reference = self.snapshot("serial", workers=1)
        for backend in BACKENDS:
            assert self.snapshot(backend) == reference, (
                "%s backend metrics diverged from serial" % backend
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spans_survive_scheduler_pipe(self, backend):
        from repro.experiments.tasks import build_task
        from repro.observability.spans import Tracer

        task = build_task("T1", size=20, seed=0)
        tracer = Tracer()
        engine = IFlexEngine(
            task.program,
            task.corpus,
            config=ExecConfig(workers=2, backend=backend),
            tracer=tracer,
            validate=False,
        )
        engine.execute()
        categories = {span.category for span in tracer.spans}
        assert {"engine", "plan", "scheduler", "partition"} <= categories
        # worker-side spans hang under a scheduler span after adoption
        by_id = {span.span_id: span for span in tracer.spans}
        partitions = [s for s in tracer.spans if s.category == "partition"]
        assert len(partitions) == 2
        for span in partitions:
            assert by_id[span.parent_id].category == "scheduler"
