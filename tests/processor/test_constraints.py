"""Constraint application over cells (section 4.2's A(k, m(s)))."""

import pytest

from repro.ctables.assignments import Contain, Exact
from repro.ctables.ctable import Cell
from repro.processor.constraints import (
    apply_constraint_to_cell,
    verify_constraint_on_value,
)
from repro.processor.context import ExecutionContext
from repro.text.html_parser import parse_html
from repro.text.span import Span, doc_span
from repro.xlog.program import Program


@pytest.fixture
def context():
    program = Program.parse("q(x) :- base(x).", extensional=["base"])
    from repro.text.corpus import Corpus

    return ExecutionContext(program, Corpus({"base": []}))


@pytest.fixture
def doc():
    return parse_html("d", "<p>Sqft: 2750. Price: <b>$351,000</b>.</p>")


class TestExactCase:
    def test_verify_keeps_satisfying(self, context, doc):
        price = Span(doc, doc.text.index("351"), doc.text.index("351") + 7)
        cell = Cell((Exact(price),))
        out = apply_constraint_to_cell(cell, "numeric", "yes", (), context)
        assert out.assignments == (Exact(price),)

    def test_verify_drops_failing(self, context, doc):
        word = Span(doc, 0, 4)  # "Sqft"
        cell = Cell((Exact(word),))
        out = apply_constraint_to_cell(cell, "numeric", "yes", (), context)
        assert out.is_empty()

    def test_scalar_numeric(self, context):
        cell = Cell((Exact(42), Exact("abc")))
        out = apply_constraint_to_cell(cell, "numeric", "yes", (), context)
        assert out.assignments == (Exact(42),)

    def test_scalar_context_feature_conservative(self, context):
        # a scalar has no document context; context features keep it
        cell = Cell((Exact(42),))
        out = apply_constraint_to_cell(cell, "preceded_by", "$", (), context)
        assert not out.is_empty()


class TestContainCase:
    def test_refine_produces_exacts(self, context, doc):
        cell = Cell((Contain(doc_span(doc)),))
        out = apply_constraint_to_cell(cell, "numeric", "yes", (), context)
        texts = {a.value.text for a in out.assignments}
        assert texts == {"2750", "351,000"}

    def test_refine_contain_hint(self, context, doc):
        cell = Cell((Contain(doc_span(doc)),))
        out = apply_constraint_to_cell(cell, "bold_font", "yes", (), context)
        (assignment,) = out.assignments
        assert isinstance(assignment, Contain)
        assert assignment.span.text == "$351,000"

    def test_prior_recheck_filters_exacts(self, context, doc):
        # preceded_by first (loose contain), then numeric: the numeric
        # refinement's exact spans must be rechecked against priors
        cell = Cell((Contain(doc_span(doc)),))
        step1 = apply_constraint_to_cell(cell, "preceded_by", "$", (), context)
        step2 = apply_constraint_to_cell(
            step1, "numeric", "yes", (("preceded_by", "$"),), context
        )
        texts = {a.value.text for a in step2.assignments}
        assert texts == {"351,000"}  # 2750 fails the preceded_by recheck

    def test_order_independence_of_final_exacts(self, context, doc):
        cell = Cell((Contain(doc_span(doc)),))
        a = apply_constraint_to_cell(cell, "numeric", "yes", (), context)
        a = apply_constraint_to_cell(a, "preceded_by", "$", (("numeric", "yes"),), context)
        b = apply_constraint_to_cell(cell, "preceded_by", "$", (), context)
        b = apply_constraint_to_cell(b, "numeric", "yes", (("preceded_by", "$"),), context)
        assert set(a.assignments) == set(b.assignments)

    def test_expansion_flag_preserved(self, context, doc):
        cell = Cell.expansion([Contain(doc_span(doc))])
        out = apply_constraint_to_cell(cell, "numeric", "yes", (), context)
        assert out.is_expansion

    def test_dedup_of_hints(self, context, doc):
        span = doc_span(doc)
        cell = Cell((Contain(span), Contain(span)))
        out = apply_constraint_to_cell(cell, "numeric", "yes", (), context)
        texts = [a.value.text for a in out.assignments]
        assert len(texts) == len(set(texts))


class TestScalarVerify:
    def test_max_value(self, context):
        f = context.feature("max_value")
        assert verify_constraint_on_value(f, 50, 100)
        assert not verify_constraint_on_value(f, 150, 100)

    def test_lengths(self, context):
        assert verify_constraint_on_value(context.feature("max_length"), "abc", 5)
        assert not verify_constraint_on_value(context.feature("min_length"), "abc", 5)

    def test_pattern(self, context):
        assert verify_constraint_on_value(context.feature("pattern"), "1999", r"19\d\d")

    def test_stats_counted(self, context):
        before = context.stats.verify_calls
        verify_constraint_on_value(context.feature("numeric"), 5, "yes", context.stats)
        assert context.stats.verify_calls == before + 1
