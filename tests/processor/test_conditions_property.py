"""Property: condition evaluation agrees with brute force on exact cells.

For cells made of ``exact`` assignments the three-valued result is
fully determined: ``some`` iff a satisfying combination exists, ``all``
iff every combination satisfies, and the filtered cells keep exactly
the values participating in satisfying combinations.
"""

from hypothesis import given, settings, strategies as st

from repro.ctables.assignments import Exact, value_key
from repro.ctables.ctable import Cell
from repro.processor.conditions import ComparisonCondition, make_side
from repro.processor.context import ExecutionContext
from repro.text.corpus import Corpus
from repro.xlog.comparisons import comparison_holds
from repro.xlog.program import Program


def make_context():
    program = Program.parse("q(x) :- base(x).", extensional=["base"])
    return ExecutionContext(program, Corpus({"base": []}))


_values = st.lists(st.integers(-5, 15), min_size=1, max_size=4, unique=True)
_ops = st.sampled_from(["<", "<=", ">", ">=", "=", "!="])


@settings(max_examples=150, deadline=None)
@given(_values, _values, _ops)
def test_attr_attr_agrees_with_brute_force(left_values, right_values, op):
    cells = {
        "a": Cell(tuple(Exact(v) for v in left_values)),
        "b": Cell(tuple(Exact(v) for v in right_values)),
    }
    condition = ComparisonCondition(make_side(attr="a"), op, make_side(attr="b"))
    result = condition.evaluate(cells, make_context())

    combos = [(l, r) for l in left_values for r in right_values]
    sat = [(l, r) for l, r in combos if comparison_holds(l, op, r)]
    assert result.some == bool(sat)
    assert result.all == (len(sat) == len(combos) and bool(sat))
    if sat:
        expected_left = {value_key(l) for l, _ in sat}
        kept = {value_key(a.value) for a in result.filtered["a"].assignments}
        assert kept == expected_left


@settings(max_examples=150, deadline=None)
@given(_values, st.integers(-5, 15), _ops, st.integers(-3, 3))
def test_attr_const_with_offset(values, const, op, offset):
    cells = {"a": Cell(tuple(Exact(v) for v in values))}
    condition = ComparisonCondition(
        make_side(attr="a", offset=offset), op, make_side(const=const)
    )
    result = condition.evaluate(cells, make_context())
    sat = [v for v in values if comparison_holds(v + offset, op, const)]
    assert result.some == bool(sat)
    assert result.all == (len(sat) == len(values) and bool(sat))
    if sat:
        kept = {a.value for a in result.filtered["a"].assignments}
        assert kept == set(sat)
