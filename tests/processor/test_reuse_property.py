"""Property: reuse-cached execution ≡ fresh execution.

The section 5.2 reuse path (apply only the delta constraints to cached
per-rule tables) must be observationally equivalent to recomputing the
refined program from scratch — same tuples, same cells, same maybe
flags.  Constraints commute (section 4.2), which is what makes this
hold; the test fuzzes constraint sequences to check it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctables.assignments import value_key
from repro.processor.executor import IFlexEngine, RuleCache
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.xlog.program import Program


def canonical(table):
    """Order-independent canonical form of a compact table."""
    rows = []
    for t in table:
        cells = tuple(
            (
                cell.is_expansion,
                frozenset(
                    (type(a).__name__, value_key(getattr(a, "value", None) if hasattr(a, "value") else a.span))
                    for a in cell.assignments
                ),
            )
            for cell in t.cells
        )
        rows.append((cells, t.maybe))
    return sorted(rows, key=repr)


@pytest.fixture(scope="module")
def setup():
    docs = [
        parse_html(
            "r%d" % i,
            "<p><b>Item %d</b></p><p>Our Price: <b>$%d.50</b>. ISBN: 99%d.</p>"
            % (i, 40 + i * 17, 10**8 + i),
        )
        for i in range(8)
    ]
    corpus = Corpus({"base": docs})
    program = Program.parse(
        """
        items(x, <t>, <p>) :- base(x), ie(@x, t, p).
        q(t, p) :- items(x, t, p), p > 60.
        ie(@x, t, p) :- from(@x, t), from(@x, p), numeric(p) = yes.
        """,
        extensional=["base"],
        query="q",
    )
    return program, corpus


CONSTRAINTS = [
    ("p", "preceded_by", "$"),
    ("p", "bold_font", "yes"),
    ("p", "max_value", 500),
    ("t", "bold_font", "yes"),
    ("t", "capitalized", "yes"),
    ("p", "followed_by", "."),
]


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.sampled_from(range(len(CONSTRAINTS))), min_size=1, max_size=4, unique=True)
)
def test_incremental_reuse_equals_fresh(setup, picks):
    program, corpus = setup
    cache = RuleCache()
    IFlexEngine(program, corpus).execute(cache=cache)  # warm the cache
    refined = program
    for index in picks:
        attr, feature, value = CONSTRAINTS[index]
        refined = refined.add_constraint("ie", attr, feature, value)
        cached = IFlexEngine(refined, corpus).execute(cache=cache)
        fresh = IFlexEngine(refined, corpus).execute()
        assert canonical(cached.query_table) == canonical(fresh.query_table)
        assert canonical(cached.tables["items"]) == canonical(fresh.tables["items"])


@settings(max_examples=15, deadline=None)
@given(
    st.permutations(range(3)),
)
def test_constraint_order_independence(setup, order):
    """Any application order of a constraint set yields the same final

    exact assignments (the paper's section 4.2 claim)."""
    program, corpus = setup
    subset = [CONSTRAINTS[0], CONSTRAINTS[1], CONSTRAINTS[2]]
    refined = program
    for index in order:
        attr, feature, value = subset[index]
        refined = refined.add_constraint("ie", attr, feature, value)
    result = IFlexEngine(refined, corpus).execute()
    baseline_program = program
    for attr, feature, value in subset:
        baseline_program = baseline_program.add_constraint("ie", attr, feature, value)
    baseline = IFlexEngine(baseline_program, corpus).execute()
    assert canonical(result.query_table) == canonical(baseline.query_table)
