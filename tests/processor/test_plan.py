"""Plan compilation tests (paper Figure 4.b/4.c shapes)."""

import pytest

from repro.alog.unfold import unfold_program
from repro.errors import EvaluationError
from repro.processor.operators import (
    AnnotateOp,
    ConditionSelect,
    ConstraintSelect,
    FromOp,
    JoinOp,
    ProjectOp,
    UnionOp,
)
from repro.processor.plan import compile_predicate, compile_rule
from repro.xlog.program import PFunction, Program


def compile_query(source, **kwargs):
    kwargs.setdefault("extensional", ["base"])
    program = unfold_program(Program.parse(source, **kwargs))
    return compile_predicate(program.query, program), program


def op_types(plan):
    out = [type(plan).__name__]
    for child in plan.children():
        out.extend(op_types(child))
    return out


class TestSingleFragment:
    def test_linear_pipeline(self):
        plan, _ = compile_query(
            """
            q(x, p) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """
        )
        names = op_types(plan)
        assert names == [
            "AnnotateOp",
            "ProjectOp",
            "ConstraintSelect",
            "FromOp",
            "ScanExtensional",
        ]

    def test_constraints_in_body_order_with_priors(self):
        plan, _ = compile_query(
            """
            q(x, p) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p), numeric(p) = yes, preceded_by(p) = "$".
            """
        )
        select = plan.children()[0].children()[0]
        assert isinstance(select, ConstraintSelect)
        assert select.feature == "preceded_by"
        assert select.priors == (("numeric", "yes"),)

    def test_comparison_attached_to_fragment(self):
        plan, _ = compile_query(
            """
            q(x, p) :- base(x), ie(@x, p), p > 10.
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """
        )
        assert "ConditionSelect" in op_types(plan)

    def test_annotations_compiled_into_psi(self):
        plan, _ = compile_query(
            """
            q(x, <p>)? :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p).
            """
        )
        assert isinstance(plan, AnnotateOp)
        assert plan.existence
        assert plan.annotated_attrs == ("p",)


class TestJoins:
    SOURCE = """
        q(p, s) :- base(x), other(y), ie1(@x, p), ie2(@y, s), sim(@p, @s).
        ie1(@x, p) :- from(@x, p).
        ie2(@y, s) :- from(@y, s).
    """

    def test_join_carries_condition(self):
        plan, _ = compile_query(
            self.SOURCE,
            extensional=["base", "other"],
            p_functions={"sim": PFunction("sim", lambda a, b: True)},
        )
        joins = [op for op in _walk(plan) if isinstance(op, JoinOp)]
        assert len(joins) == 1
        assert len(joins[0].conditions) == 1

    def test_three_way_join(self, figure2_program):
        unfolded = unfold_program(figure2_program)
        plan = compile_predicate("Q", unfolded)
        joins = [op for op in _walk(plan) if isinstance(op, JoinOp)]
        assert len(joins) == 1  # houses x schools

    def test_multi_rule_predicate_unions(self):
        program = unfold_program(
            Program.parse(
                """
                q(x) :- base(x).
                q(y) :- other(y).
                """,
                extensional=["base", "other"],
            )
        )
        plan = compile_predicate("q", program)
        assert isinstance(plan, UnionOp)


class TestErrors:
    def test_rule_without_scan(self):
        program = unfold_program(
            Program.parse(
                """
                q(p) :- ie(@p, r).
                ie(@p, r) :- from(@p, r).
                """,
                extensional=["base"],
            )
        )
        with pytest.raises(EvaluationError):
            compile_predicate("q", program)

    def test_explain_renders(self, figure2_program):
        from repro.processor.executor import IFlexEngine
        from repro.text.corpus import Corpus

        engine = IFlexEngine(figure2_program, Corpus({"housePages": [], "schoolPages": []}))
        text = engine.explain()
        assert "Annotate" in text and "From" in text and "Join" in text


def _walk(plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)
