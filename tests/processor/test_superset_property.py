"""THE core guarantee: approximate execution has superset semantics.

Section 4 of the paper promises that the plan's output *represents a
superset of the possible relations* the Alog program defines.  These
tests compare, on bounded inputs, the possible worlds of the engine's
compact-table output against the exact possible-worlds reference
evaluator of :mod:`repro.alog.semantics` — every exact world must be a
subset of some approximate world... no: every exact world must itself
be representable; superset semantics means the *set of worlds* of the
output contains every exact world.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alog.semantics import program_possible_relations
from repro.ctables.worlds import compact_worlds
from repro.processor.executor import IFlexEngine
from repro.text.corpus import Corpus
from repro.text.document import Document
from repro.xlog.program import Program


def assert_superset(program, corpus, max_worlds=100_000):
    exact = program_possible_relations(program, corpus, max_worlds=max_worlds)
    result = IFlexEngine(program, corpus).execute()
    approx = compact_worlds(result.query_table, max_worlds=max_worlds)
    missing = exact - approx
    assert not missing, "missing %d exact worlds, e.g. %r" % (
        len(missing),
        next(iter(missing)),
    )


class TestSupersetOnFixedPrograms:
    def test_plain_extraction(self):
        corpus = Corpus({"base": [Document("d", "a 12 b")]})
        program = Program.parse(
            """
            q(x, p) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            extensional=["base"],
        )
        assert_superset(program, corpus)

    def test_attribute_annotation(self):
        corpus = Corpus({"base": [Document("d", "12 34")]})
        program = Program.parse(
            """
            q(x, <p>) :- base(x), ie(@x, p).
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            extensional=["base"],
        )
        assert_superset(program, corpus)

    def test_existence_annotation(self):
        corpus = Corpus({"base": [Document("d", "ab cd")]})
        program = Program.parse(
            """
            q(s)? :- base(y), ie(@y, s).
            ie(@y, s) :- from(@y, s).
            """,
            extensional=["base"],
        )
        assert_superset(program, corpus)

    def test_selection_on_annotated_choice(self):
        corpus = Corpus({"base": [Document("d", "5 500")]})
        program = Program.parse(
            """
            vals(x, <p>) :- base(x), ie(@x, p).
            q(p) :- vals(x, p), p > 100.
            ie(@x, p) :- from(@x, p), numeric(p) = yes.
            """,
            extensional=["base"],
            query="q",
        )
        assert_superset(program, corpus)

    def test_join_with_comparison(self):
        corpus = Corpus(
            {
                "left": [Document("l", "7")],
                "right": [Document("r", "3 9")],
            }
        )
        program = Program.parse(
            """
            lv(x, a) :- left(x), ie1(@x, a).
            rv(y, <b>) :- right(y), ie2(@y, b).
            q(a, b) :- lv(x, a), rv(y, b), a > b.
            ie1(@x, a) :- from(@x, a), numeric(a) = yes.
            ie2(@y, b) :- from(@y, b), numeric(b) = yes.
            """,
            extensional=["left", "right"],
            query="q",
        )
        assert_superset(program, corpus)

    def test_formatting_constraint(self):
        doc = Document("d", "aa bb cc", regions={"bold": [(3, 5)]})
        corpus = Corpus({"base": [doc]})
        program = Program.parse(
            """
            q(s)? :- base(y), ie(@y, s).
            ie(@y, s) :- from(@y, s), bold_font(s) = yes.
            """,
            extensional=["base"],
        )
        assert_superset(program, corpus)


# -- property-based fuzzing --------------------------------------------------

_tiny_text = st.text(alphabet="ab 12", min_size=1, max_size=8)

_programs = st.sampled_from(
    [
        """
        q(x, p) :- base(x), ie(@x, p).
        ie(@x, p) :- from(@x, p), numeric(p) = yes.
        """,
        """
        q(x, <p>) :- base(x), ie(@x, p).
        ie(@x, p) :- from(@x, p), numeric(p) = yes.
        """,
        """
        q(s)? :- base(y), ie(@y, s).
        ie(@y, s) :- from(@y, s), numeric(s) = yes.
        """,
        """
        vals(x, <p>) :- base(x), ie(@x, p).
        q(p) :- vals(x, p), p > 5.
        ie(@x, p) :- from(@x, p), numeric(p) = yes.
        """,
    ]
)


@settings(max_examples=40, deadline=None)
@given(_tiny_text, _programs)
def test_superset_property_fuzzed(text, source):
    corpus = Corpus({"base": [Document("f", text)]})
    program = Program.parse(source, extensional=["base"], query="q")
    assert_superset(program, corpus)


@settings(max_examples=20, deadline=None)
@given(_tiny_text, _tiny_text)
def test_superset_two_documents(text_a, text_b):
    corpus = Corpus(
        {"base": [Document("fa", text_a), Document("fb", text_b)]}
    )
    program = Program.parse(
        """
        q(x, <p>) :- base(x), ie(@x, p).
        ie(@x, p) :- from(@x, p), numeric(p) = yes.
        """,
        extensional=["base"],
    )
    assert_superset(program, corpus)
