"""Incremental delta execution: the persistent partition-result cache.

The contract under test, end to end:

* a warm, identical re-run in a fresh process hydrates every partition
  from the store (100% reuse, zero recompute);
* after editing / adding / removing documents, only the partitions
  whose content digests moved re-execute — and the folded result is
  byte-identical to a cold run over the changed corpus, on every
  scheduler backend, with deterministic stats counters;
* predicates that invoke procedural atoms (p-predicates / p-functions)
  never persist;
* the quarantine path composes: a faulted run's spills serve a clean
  run over ``corpus.without(poisoned)``;
* no store configured (or ``incremental=False``) means no files, no
  counter ticks — the historical execution path, byte for byte.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.processor.context import ExecConfig
from repro.processor.executor import IFlexEngine, RuleCache
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.xlog.program import PPredicate, Program
from tests.faults.harness import faulting_registry
from tests.processor.test_parallel import result_image

WORKERS = 4
BACKENDS = ("serial", "thread", "process")

PROGRAM_SOURCE = """
q(x, <p>) :- pages(x), ie(@x, p).
ie(@x, p) :- from(@x, p), numeric(p) = yes.
"""


def build_program():
    return Program.parse(PROGRAM_SOURCE, extensional=["pages"], query="q")


def page(i, salt=""):
    return parse_html(
        "d%d" % i,
        "<p>Listing %d%s Price: <b>$%d.00</b></p>" % (i, salt, 100 + 10 * i),
    )


def build_corpus(n=8, salts=()):
    salts = dict(salts)
    return Corpus({"pages": [page(i, salts.get(i, "")) for i in range(n)]})


def run(corpus, store_dir, backend="serial", registry=None, **config_kwargs):
    """One fresh-engine execution (cold process semantics: no warm
    in-memory cache, only whatever ``store_dir`` holds on disk)."""
    config = ExecConfig(
        workers=WORKERS,
        backend=backend,
        result_cache=str(store_dir) if store_dir is not None else None,
        **config_kwargs,
    )
    engine = IFlexEngine(
        build_program(), corpus, features=registry, config=config, validate=False
    )
    return engine.execute()


def partition_count(corpus):
    return len(corpus.partition(WORKERS))


class TestWarmAndDelta:
    def test_warm_identical_rerun_hits_every_partition(self, tmp_path):
        corpus = build_corpus()
        cold = run(corpus, tmp_path)
        parts = partition_count(corpus)
        assert cold.stats.partitions_recomputed == parts
        assert cold.stats.partitions_reused == 0
        warm = run(corpus, tmp_path)
        assert warm.stats.partitions_recomputed == 0
        assert warm.stats.partitions_reused == parts
        assert warm.stats.result_cache_misses == 0
        assert set(warm.reuse_summary.values()) == {"full"}
        assert result_image(warm) == result_image(cold)

    def test_editing_one_doc_recomputes_only_its_partition(self, tmp_path):
        corpus = build_corpus()
        run(corpus, tmp_path)
        edited = build_corpus(salts={5: " changed"})
        delta = run(edited, tmp_path)
        assert delta.stats.partitions_recomputed == 1
        assert delta.stats.partitions_reused == partition_count(corpus) - 1
        # byte-identical to a cold run over the edited corpus
        cold = run(build_corpus(salts={5: " changed"}), None)
        assert result_image(delta) == result_image(cold)

    def test_editing_k_docs_recomputes_their_partitions(self, tmp_path):
        corpus = build_corpus()
        run(corpus, tmp_path)
        # docs 0 and 7 live in the first and last of 4 partitions
        edited = build_corpus(salts={0: " a", 7: " b"})
        delta = run(edited, tmp_path)
        assert delta.stats.partitions_recomputed == 2
        assert delta.stats.partitions_reused == partition_count(corpus) - 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delta_matches_cold_on_every_backend(self, backend, tmp_path):
        store = tmp_path / backend
        run(build_corpus(), store, backend=backend)
        edited = build_corpus(salts={3: " now different"})
        delta = run(edited, store, backend=backend)
        cold = run(build_corpus(salts={3: " now different"}), None, backend=backend)
        assert result_image(delta) == result_image(cold)
        assert delta.stats.partitions_recomputed == 1

    def test_second_process_warm_run_reuses(self, tmp_path):
        """Cross-process warmth: tokens and files survive the process."""
        run(build_corpus(), tmp_path)
        code = (
            "import sys; sys.path.insert(0, %r); sys.path.insert(0, %r)\n"
            "from tests.processor.test_incremental import build_corpus, run\n"
            "result = run(build_corpus(), %r)\n"
            "assert result.stats.partitions_recomputed == 0, vars(result.stats)\n"
            "assert result.stats.partitions_reused > 0\n"
            % (
                os.path.join(os.path.dirname(__file__), "..", ".."),
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                str(tmp_path),
            )
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={**os.environ, "PYTHONHASHSEED": "12345"},
        )

    def test_fingerprint_token_is_process_stable(self):
        code = (
            "from repro.processor.executor import _Fingerprint\n"
            "print(_Fingerprint(bases=('b',), constraints=((),), "
            "upstream=(), corpus_sig=('content', 'abc')).token)\n"
        )
        tokens = set()
        for seed in ("0", "424242"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                check=True,
                capture_output=True,
                text=True,
                env={
                    **os.environ,
                    "PYTHONHASHSEED": seed,
                    "PYTHONPATH": os.pathsep.join(
                        [
                            os.path.join(
                                os.path.dirname(__file__), "..", "..", "src"
                            ),
                            os.environ.get("PYTHONPATH", ""),
                        ]
                    ),
                },
            )
            tokens.add(out.stdout.strip())
        assert len(tokens) == 1


class TestExplainAnalyze:
    def _engine(self, corpus, store_dir):
        config = ExecConfig(
            workers=WORKERS, backend="serial", result_cache=str(store_dir)
        )
        return IFlexEngine(
            build_program(), corpus, config=config, validate=False
        )

    def test_warm_analyze_hydrates_and_reports(self, tmp_path):
        corpus = build_corpus()
        cold = run(corpus, tmp_path)
        result, report = self._engine(corpus, tmp_path).explain_analyze()
        assert result.stats.partitions_recomputed == 0
        assert result.stats.partitions_reused == partition_count(corpus)
        assert result.stats.result_cache_misses == 0
        assert "result cache:" in report
        assert "hydrated from the result cache" in report
        assert result_image(result) == result_image(cold)

    def test_cold_analyze_measures_and_populates_the_store(self, tmp_path):
        corpus = build_corpus()
        result, report = self._engine(corpus, tmp_path).explain_analyze()
        parts = partition_count(corpus)
        assert result.stats.partitions_recomputed == parts
        assert result.stats.partitions_reused == 0
        # full cold measurement: operator rows present for every rule
        assert "operator" in report and "result cache:" in report
        # the analyze run spilled its results: a later run hydrates
        warm = run(corpus, tmp_path)
        assert warm.stats.partitions_recomputed == 0
        assert warm.stats.partitions_reused == parts
        assert result_image(warm) == result_image(result)

    def test_storeless_analyze_keeps_the_cold_report(self, tmp_path):
        engine = IFlexEngine(
            build_program(),
            build_corpus(),
            config=ExecConfig(workers=WORKERS),
            validate=False,
        )
        result, report = engine.explain_analyze()
        assert "result cache:" not in report
        assert result.stats.partitions_reused == 0
        assert result.stats.partitions_recomputed == 0


def _mutate(n, op, targets):
    """Apply one corpus mutation; returns the changed corpus builder args."""
    if op == "edit":
        return build_corpus(n, salts={i: " edited" for i in targets})
    if op == "remove":
        keep = [i for i in range(n) if i not in targets]
        return Corpus({"pages": [page(i) for i in keep]})
    docs = [page(i) for i in range(n)] + [
        page(1000 + j, " fresh") for j in sorted(targets)
    ]
    return Corpus({"pages": docs})


class TestDifferentialProperty:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(min_value=5, max_value=9),
        op=st.sampled_from(("edit", "remove", "add")),
        targets=st.sets(
            st.integers(min_value=0, max_value=4), min_size=1, max_size=3
        ),
    )
    def test_delta_runs_byte_identical_across_backends(
        self, tmp_path_factory, n, op, targets
    ):
        """Delta == cold on every backend, with identical stats."""
        base = build_corpus(n)
        mutated = _mutate(n, op, targets)
        reference = run(_mutate(n, op, targets), None)
        stats_by_backend = {}
        root = tmp_path_factory.mktemp("delta")
        for backend in BACKENDS:
            # one store per backend, warmed by a same-backend base run,
            # so the delta run's hit/miss counters are backend-invariant
            store = root / backend
            run(base, store, backend=backend)
            delta = run(mutated, store, backend=backend)
            assert result_image(delta) == result_image(reference), (
                "%s delta diverged (op=%s targets=%s)" % (backend, op, targets)
            )
            stats_by_backend[backend] = vars(delta.stats)
        assert (
            stats_by_backend["serial"]
            == stats_by_backend["thread"]
            == stats_by_backend["process"]
        )


class TestQuarantineInteraction:
    def test_faulted_spills_serve_the_clean_reduced_corpus(self, tmp_path):
        poisoned = {"d2"}
        corpus = build_corpus()
        faulted = run(
            corpus,
            tmp_path,
            registry=faulting_registry(poisoned),
            on_error="skip",
        )
        assert faulted.report.records  # the document was quarantined
        # a clean engine over corpus.without(poisoned), sharing the
        # store, hydrates every partition the faulted run persisted
        reduced = corpus.without(poisoned)
        clean = run(reduced, tmp_path)
        assert clean.stats.partitions_recomputed == 0
        assert clean.stats.partitions_reused == partition_count(reduced)
        assert result_image(clean) == result_image(faulted)

    def test_faulted_delta_matches_cold_over_reduced(self, tmp_path):
        poisoned = {"d1"}
        corpus = build_corpus()
        faulted = run(
            corpus,
            tmp_path,
            registry=faulting_registry(poisoned),
            on_error="skip",
        )
        cold = run(corpus.without(poisoned), None)
        assert result_image(faulted) == result_image(cold)


TAINTED_SOURCE = """
q(x, <p>, c) :- pages(x), ie(@x, p), clean(@p, c).
ie(@x, p) :- from(@x, p), numeric(p) = yes.
"""


def _tainted_program():
    def clean(span):
        return [(span.text.strip(),)]

    return Program.parse(
        TAINTED_SOURCE,
        extensional=["pages"],
        p_predicates={"clean": PPredicate("clean", clean, 1, 1)},
        query="q",
    )


class TestProceduralTaint:
    def _run(self, store_dir):
        config = ExecConfig(
            workers=WORKERS, backend="serial", result_cache=str(store_dir)
        )
        engine = IFlexEngine(
            _tainted_program(), build_corpus(), config=config, validate=False
        )
        return engine, engine.execute()

    def test_tainted_predicate_never_persists(self, tmp_path):
        engine, first = self._run(tmp_path)
        assert engine._persistable == {"q": False}
        assert not [
            name for name in os.listdir(str(tmp_path)) if ".res." in name
        ]
        # a fresh process cannot trust the p-predicate's name across
        # processes, so the warm run recomputes instead of hydrating
        _, second = self._run(tmp_path)
        assert second.reuse_summary["q"] == "computed"
        assert second.stats.result_cache_hits == 0
        assert second.stats.result_cache_misses == 0
        assert result_image(second) == result_image(first)


class TestDisabledPaths:
    def test_no_store_means_no_counters_and_no_files(self, tmp_path):
        result = run(build_corpus(), None)
        stats = result.stats
        assert stats.partitions_reused == 0
        assert stats.partitions_recomputed == 0
        assert stats.result_cache_hits == 0
        assert stats.result_cache_misses == 0

    def test_no_incremental_ignores_the_directory(self, tmp_path):
        config = ExecConfig(
            workers=WORKERS, result_cache=str(tmp_path), incremental=False
        )
        engine = IFlexEngine(
            build_program(), build_corpus(), config=config, validate=False
        )
        result = engine.execute()
        assert engine.result_store is None
        assert os.listdir(str(tmp_path)) == []
        assert result.stats.partitions_recomputed == 0
        assert result.stats.result_cache_misses == 0

    def test_caller_cache_without_store_stays_in_memory(self, tmp_path):
        cache = RuleCache()
        config = ExecConfig(workers=WORKERS)
        engine = IFlexEngine(
            build_program(), build_corpus(), config=config, validate=False
        )
        first = engine.execute(cache=cache)
        second = engine.execute(cache=cache)
        assert first.stats.partitions_recomputed == partition_count(
            build_corpus()
        )
        assert set(second.reuse_summary.values()) == {"full"}
        assert cache.store is None and cache.store_hits == 0


class TestSessionSharing:
    def test_session_caches_share_one_store(self, tmp_path):
        from repro.assistant.session import RefinementSession, _CacheCopy

        class _NoQuestions:
            def ask(self, *args, **kwargs):  # pragma: no cover - unused
                return None

        session = RefinementSession(
            build_program(),
            build_corpus(),
            _NoQuestions(),
            config=ExecConfig(result_cache=str(tmp_path)),
        )
        assert session._result_store is not None
        assert session._subset_cache.store is session._result_store
        assert session._full_cache.store is session._result_store
        clone = _CacheCopy.copy(session._subset_cache)
        assert clone.store is session._result_store
