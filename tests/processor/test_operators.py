"""Physical operator tests over compact tables."""

import pytest

from repro.ctables.assignments import Contain, Exact, value_text
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.errors import EnumerationLimitError, EvaluationError
from repro.processor.conditions import ComparisonCondition, PFunctionCondition, make_side
from repro.processor.context import ExecConfig, ExecutionContext
from repro.processor.library import make_similar
from repro.processor.operators import (
    ConditionSelect,
    ConstraintSelect,
    FromOp,
    JoinOp,
    PPredicateOp,
    ProjectOp,
    ScanExtensional,
    TableSource,
    UnionOp,
)
from repro.text.corpus import Corpus
from repro.text.document import Document
from repro.text.html_parser import parse_html
from repro.text.span import doc_span
from repro.xlog.program import PPredicate, Program


def make_context(docs=(), config=None):
    program = Program.parse("q(x) :- base(x).", extensional=["base"])
    return ExecutionContext(program, Corpus({"base": list(docs)}), config=config)


def table_of(attrs, *tuples):
    return TableSource(CompactTable(attrs, tuples))


def choice(*values):
    return Cell(tuple(Exact(v) for v in values))


class TestScanAndFrom:
    def test_scan(self):
        docs = [Document("a", "x"), Document("b", "y")]
        context = make_context(docs)
        table = ScanExtensional("base", "x").execute(context)
        assert len(table) == 2
        assert table.attrs == ("x",)

    def test_from_produces_expansion_of_contain(self):
        doc = parse_html("d", "<p>alpha beta</p>")
        context = make_context([doc])
        plan = FromOp(ScanExtensional("base", "x"), "x", "y")
        table = plan.execute(context)
        (t,) = table.tuples
        cell = t.cells[1]
        assert cell.is_expansion
        assert all(isinstance(a, Contain) for a in cell.assignments)

    def test_from_over_multiple_anchors(self):
        doc = parse_html("d", "<p><b>one</b> mid <b>two</b></p>")
        context = make_context([doc])
        src = table_of(
            ("s",),
            CompactTuple(
                [Cell([Contain(doc_span(doc).sub(s, e)) for s, e in doc.regions_of("bold")])]
            ),
        )
        table = FromOp(src, "s", "t").execute(context)
        assert len(table.tuples[0].cells[1].assignments) == 2


class TestConstraintSelect:
    def test_drops_empty_tuples(self):
        doc = parse_html("d", "<p>no numbers here</p>")
        context = make_context([doc])
        plan = ConstraintSelect(
            FromOp(ScanExtensional("base", "x"), "x", "p"), "p", "numeric", "yes"
        )
        assert len(plan.execute(context)) == 0

    def test_expansion_cell_not_maybe_marked(self):
        doc = parse_html("d", "<p>42 and words</p>")
        context = make_context([doc])
        plan = ConstraintSelect(
            FromOp(ScanExtensional("base", "x"), "x", "p"), "p", "numeric", "yes"
        )
        table = plan.execute(context)
        assert not table.tuples[0].maybe

    def test_choice_cell_maybe_marked_on_change(self):
        doc = Document("d", "42 abc")
        context = make_context()
        span42 = doc_span(doc).sub(0, 2)
        word = doc_span(doc).sub(3, 6)
        src = table_of(("p",), CompactTuple([Cell((Exact(span42), Exact(word)))]))
        table = ConstraintSelect(src, "p", "numeric", "yes").execute(context)
        (t,) = table.tuples
        assert t.maybe
        assert len(t.cells[0].assignments) == 1


class TestConditionSelect:
    def test_filter_and_maybe(self):
        context = make_context()
        src = table_of(("p",), CompactTuple([choice(50, 200)]))
        cond = ComparisonCondition(make_side(attr="p"), ">", make_side(const=100))
        table = ConditionSelect(src, cond).execute(context)
        (t,) = table.tuples
        assert t.maybe
        assert [a.value for a in t.cells[0].assignments] == [200]

    def test_all_satisfy_no_maybe(self):
        context = make_context()
        src = table_of(("p",), CompactTuple([choice(200, 300)]))
        cond = ComparisonCondition(make_side(attr="p"), ">", make_side(const=100))
        table = ConditionSelect(src, cond).execute(context)
        assert not table.tuples[0].maybe

    def test_single_attr_expansion_filter_stays_certain(self):
        context = make_context()
        src = table_of(
            ("p",),
            CompactTuple([Cell((Exact(50), Exact(200)), is_expansion=True)]),
        )
        cond = ComparisonCondition(make_side(attr="p"), ">", make_side(const=100))
        table = ConditionSelect(src, cond).execute(context)
        (t,) = table.tuples
        assert not t.maybe
        assert len(t.cells[0].assignments) == 1

    def test_drop_when_none_satisfy(self):
        context = make_context()
        src = table_of(("p",), CompactTuple([choice(1)]))
        cond = ComparisonCondition(make_side(attr="p"), ">", make_side(const=100))
        assert len(ConditionSelect(src, cond).execute(context)) == 0


class TestJoin:
    def test_cross_join(self):
        context = make_context()
        left = table_of(("a",), CompactTuple([choice(1)]), CompactTuple([choice(2)]))
        right = table_of(("b",), CompactTuple([choice(3)]))
        table = JoinOp(left, right).execute(context)
        assert len(table) == 2
        assert table.attrs == ("a", "b")

    def test_join_condition_filters_pairs(self):
        context = make_context()
        left = table_of(("a",), CompactTuple([choice(1)]), CompactTuple([choice(5)]))
        right = table_of(("b",), CompactTuple([choice(3)]))
        cond = ComparisonCondition(make_side(attr="a"), ">", make_side(attr="b"))
        table = JoinOp(left, right, [cond]).execute(context)
        assert len(table) == 1

    def test_maybe_propagates_from_inputs(self):
        context = make_context()
        left = table_of(("a",), CompactTuple([choice(1)], maybe=True))
        right = table_of(("b",), CompactTuple([choice(2)]))
        table = JoinOp(left, right).execute(context)
        assert table.tuples[0].maybe

    def test_overlapping_attrs_rejected(self):
        left = table_of(("a",), CompactTuple([choice(1)]))
        right = table_of(("a",), CompactTuple([choice(2)]))
        with pytest.raises(EvaluationError):
            JoinOp(left, right)

    def test_blocking_join_equivalent_to_nested_loop(self):
        def titles(prefix, *texts):
            tuples = []
            for i, text in enumerate(texts):
                doc = Document("%s%d" % (prefix, i), text)
                tuples.append(CompactTuple([choice(doc_span(doc))]))
            return tuples

        cond = PFunctionCondition(
            "similar",
            make_similar(0.5),
            [make_side(attr="a"), make_side(attr="b")],
        )
        left = table_of(("a",), *titles("L", "Silent River", "Crimson Empire", "Lone Star"))
        right = table_of(("b",), *titles("R", "Silent River", "Empire Crimson", "Nothing Alike"))

        blocked = JoinOp(left, right, [cond]).execute(
            make_context(config=ExecConfig(blocking_joins=True))
        )
        nested = JoinOp(left, right, [cond]).execute(
            make_context(config=ExecConfig(blocking_joins=False))
        )

        def keys(table):
            return sorted(
                (value_text(t.cells[0].assignments[0].value), value_text(t.cells[1].assignments[0].value))
                for t in table
            )

        assert keys(blocked) == keys(nested)
        assert len(blocked) == 2


class TestProjectUnion:
    def test_project_reorders(self):
        context = make_context()
        src = table_of(("a", "b"), CompactTuple([choice(1), choice(2)]))
        table = ProjectOp(src, ["b", "a"]).execute(context)
        assert table.attrs == ("b", "a")
        assert table.tuples[0].cells[0].assignments[0].value == 2

    def test_union(self):
        context = make_context()
        a = table_of(("x",), CompactTuple([choice(1)]))
        b = table_of(("x",), CompactTuple([choice(2)]))
        assert len(UnionOp([a, b]).execute(context)) == 2

    def test_union_arity_mismatch(self):
        a = table_of(("x",), CompactTuple([choice(1)]))
        b = table_of(("y", "z"), CompactTuple([choice(2), choice(3)]))
        with pytest.raises(EvaluationError):
            UnionOp([a, b])

    def test_union_aligns_positionally(self):
        context = make_context()
        a = table_of(("x",), CompactTuple([choice(1)]))
        b = table_of(("y",), CompactTuple([choice(2)]))
        table = UnionOp([a, b]).execute(context)
        assert len(table) == 2
        assert table.attrs == ("x",)


class TestPPredicateOp:
    def spec(self, func, n_out=1):
        return PPredicate("proc", func, 1, n_out)

    def test_invocation_per_value(self):
        context = make_context()
        calls = []

        def proc(v):
            calls.append(v)
            return [(v * 10,)]

        src = table_of(("a",), CompactTuple([Cell((Exact(1), Exact(2)), is_expansion=True)]))
        table = PPredicateOp(src, "proc", self.spec(proc), ["a"], ["b"]).execute(context)
        assert sorted(calls) == [1, 2]
        assert len(table) == 2
        assert not table.tuples[0].maybe  # expansion input: certain

    def test_choice_input_marks_maybe(self):
        context = make_context()
        src = table_of(("a",), CompactTuple([choice(1, 2)]))
        table = PPredicateOp(
            src, "proc", self.spec(lambda v: [(v,)]), ["a"], ["b"]
        ).execute(context)
        assert all(t.maybe for t in table)

    def test_empty_output_drops_tuple(self):
        context = make_context()
        src = table_of(("a",), CompactTuple([choice(1)]))
        table = PPredicateOp(
            src, "proc", self.spec(lambda v: []), ["a"], ["b"]
        ).execute(context)
        assert len(table) == 0

    def test_non_input_expansion_passes_through(self):
        doc = Document("d", "a b c d e f g h i j")
        context = make_context()
        wide = Cell.expansion([Contain(doc_span(doc))])
        src = table_of(("k", "w"), CompactTuple([choice(1), wide]))
        table = PPredicateOp(
            src, "proc", self.spec(lambda v: [(v,)]), ["k"], ["out"]
        ).execute(context)
        (t,) = table.tuples
        assert t.cells[1] == wide  # untouched

    def test_cap_enforced(self):
        context = make_context(config=ExecConfig(ppredicate_cap=2))
        src = table_of(("a",), CompactTuple([choice(1, 2, 3)]))
        with pytest.raises(EnumerationLimitError):
            PPredicateOp(
                src, "proc", self.spec(lambda v: [(v,)]), ["a"], ["b"]
            ).execute(context)

    def test_cap_enforced_for_wide_expansion_input(self):
        # an unconstrained contain family on an *input* attribute must
        # hit the cap instead of materialising every sub-span
        doc = Document("d", "a b c d e f g h i j")
        context = make_context(config=ExecConfig(ppredicate_cap=10))
        wide = Cell.expansion([Contain(doc_span(doc))])
        src = table_of(("a",), CompactTuple([wide]))
        with pytest.raises(EnumerationLimitError, match="too wide"):
            PPredicateOp(
                src, "proc", self.spec(lambda v: [(v,)]), ["a"], ["b"]
            ).execute(context)

    def test_cap_allows_exactly_cap_values(self):
        # the cap is inclusive: exactly ``cap`` combinations execute
        context = make_context(config=ExecConfig(ppredicate_cap=3))
        src = table_of(("a",), CompactTuple([choice(1, 2, 3)]))
        table = PPredicateOp(
            src, "proc", self.spec(lambda v: [(v,)]), ["a"], ["b"]
        ).execute(context)
        assert len(table) == 3
        assert context.stats.ppredicate_calls == 3
