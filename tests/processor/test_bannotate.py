"""BAnnotate tests — including the paper's Figure 5 walk-through."""

import pytest

from repro.ctables.assignments import Contain, Exact, value_key
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.processor.bannotate import annotate_table
from repro.processor.context import ExecutionContext
from repro.text.corpus import Corpus
from repro.text.document import Document
from repro.text.span import doc_span
from repro.xlog.program import Program


@pytest.fixture
def context():
    program = Program.parse("q(x) :- base(x).", extensional=["base"])
    return ExecutionContext(program, Corpus({"base": []}))


def choice(*values):
    return Cell(tuple(Exact(v) for v in values))


class TestFigure5:
    """The name/age example of paper Figure 5."""

    def table(self):
        table = CompactTable(["name", "age"])
        table.add(CompactTuple([choice("Alice", "Bob"), choice(5)]))
        table.add(CompactTuple([choice("Alice", "Carol"), choice(6, 7)]))
        table.add(CompactTuple([choice("Dave"), choice(8, 9)]))
        return table

    def test_output_groups(self, context):
        out = annotate_table(self.table(), False, ("age",), context)
        by_name = {}
        for t in out:
            name = t.cells[0].assignments[0].value
            ages = {a.value for a in t.cells[1].assignments}
            by_name[name] = (ages, t.maybe)
        assert by_name["Alice"] == ({5, 6, 7}, True)
        assert by_name["Bob"] == ({5}, True)
        assert by_name["Carol"] == ({6, 7}, True)
        # Dave appears in every possible world: not a maybe tuple
        assert by_name["Dave"] == ({8, 9}, False)

    def test_output_size(self, context):
        out = annotate_table(self.table(), False, ("age",), context)
        assert len(out) == 4


class TestAnnotationMechanics:
    def test_no_annotations_identity(self, context):
        table = CompactTable(["a"], [CompactTuple([choice(1)])])
        out = annotate_table(table, False, (), context)
        assert out is table

    def test_existence_marks_all_maybe(self, context):
        table = CompactTable(["a"], [CompactTuple([choice(1)])])
        out = annotate_table(table, True, (), context)
        assert all(t.maybe for t in out)

    def test_expansion_key_certain_per_value(self, context):
        doc = Document("d", "alpha beta")
        table = CompactTable(["x", "v"])
        table.add(
            CompactTuple(
                [Cell.expansion([Exact("k1"), Exact("k2")]), choice(1, 2)]
            )
        )
        out = annotate_table(table, False, ("v",), context)
        assert len(out) == 2
        assert all(not t.maybe for t in out)  # expansion keys are certain

    def test_maybe_input_stays_maybe(self, context):
        table = CompactTable(["x", "v"])
        table.add(CompactTuple([choice("k"), choice(1)], maybe=True))
        out = annotate_table(table, False, ("v",), context)
        assert out.tuples[0].maybe

    def test_assignments_unioned_not_enumerated(self, context):
        doc = Document("d", "one two three four five")
        wide = Contain(doc_span(doc))
        table = CompactTable(["x", "v"])
        table.add(CompactTuple([choice("k"), Cell((wide,))]))
        table.add(CompactTuple([choice("k"), choice(42)]))
        out = annotate_table(table, False, ("v",), context)
        (t,) = out.tuples
        assert wide in t.cells[1].assignments  # kept as an assignment
        assert Exact(42) in t.cells[1].assignments

    def test_multiple_annotated_attrs(self, context):
        table = CompactTable(["k", "a", "b"])
        table.add(CompactTuple([choice("x"), choice(1), choice("p")]))
        table.add(CompactTuple([choice("x"), choice(2), choice("q")]))
        out = annotate_table(table, False, ("a", "b"), context)
        (t,) = out.tuples
        assert {a.value for a in t.cells[1].assignments} == {1, 2}
        assert {a.value for a in t.cells[2].assignments} == {"p", "q"}

    def test_missing_attr_names_ignored(self, context):
        table = CompactTable(["a"], [CompactTuple([choice(1)])])
        out = annotate_table(table, False, ("nonexistent",), context)
        assert len(out) == 1

    def test_group_key_dedup_across_tuples(self, context):
        table = CompactTable(["k", "v"])
        table.add(CompactTuple([choice("x"), choice(1)]))
        table.add(CompactTuple([choice("x"), choice(2)]))
        out = annotate_table(table, False, ("v",), context)
        assert len(out) == 1
        assert not out.tuples[0].maybe  # both inputs certain for key x
