"""Property: BAnnotate over compact tables ⊇ Definition 2 exactly.

For concrete (all-exact) inputs, the ψ operator's output worlds must
contain every relation the annotation definitions produce — and for
certain single-key inputs it should be exact, not just a superset.
"""

from hypothesis import given, settings, strategies as st

from repro.alog.semantics import annotate_relation
from repro.ctables.assignments import Exact
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.ctables.worlds import compact_worlds
from repro.processor.bannotate import annotate_table
from repro.processor.context import ExecutionContext
from repro.text.corpus import Corpus
from repro.xlog.program import Program


def make_context():
    program = Program.parse("q(x) :- base(x).", extensional=["base"])
    return ExecutionContext(program, Corpus({"base": []}))


_rows = st.lists(
    st.tuples(st.sampled_from(["k1", "k2", "k3"]), st.integers(0, 3)),
    min_size=1,
    max_size=5,
)


@settings(max_examples=60, deadline=None)
@given(_rows)
def test_bannotate_superset_of_definition2(rows):
    table = CompactTable(["k", "v"])
    for key, value in rows:
        table.add(CompactTuple([Cell((Exact(key),)), Cell((Exact(value),))]))
    out = annotate_table(table, False, ("v",), make_context())
    exact = annotate_relation(rows, (False, (1,)))
    approx = compact_worlds(out)
    assert exact <= approx


@settings(max_examples=60, deadline=None)
@given(_rows)
def test_bannotate_exact_for_certain_keys(rows):
    """With certain single-valued keys, BAnnotate is exact, not loose."""
    table = CompactTable(["k", "v"])
    for key, value in rows:
        table.add(CompactTuple([Cell((Exact(key),)), Cell((Exact(value),))]))
    out = annotate_table(table, False, ("v",), make_context())
    assert compact_worlds(out) == annotate_relation(rows, (False, (1,)))


@settings(max_examples=40, deadline=None)
@given(_rows, st.booleans())
def test_bannotate_existence(rows, existence):
    table = CompactTable(["k", "v"])
    for key, value in rows:
        table.add(CompactTuple([Cell((Exact(key),)), Cell((Exact(value),))]))
    out = annotate_table(table, existence, ("v",), make_context())
    exact = annotate_relation(rows, (existence, (1,)))
    assert exact <= compact_worlds(out)
