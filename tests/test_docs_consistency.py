"""Documentation consistency: what the docs promise exists in code."""

import pathlib
import re

import pytest

from repro.features.registry import default_registry

DOCS = pathlib.Path(__file__).parent.parent / "docs"


class TestFeatureCatalog:
    def test_documented_features_exist(self):
        text = (DOCS / "features.md").read_text(encoding="utf-8")
        registry = default_registry()
        documented = set(re.findall(r"`([a-z_]+)`\s*\|", text))
        for name in documented & {
            "bold_font", "italic_font", "underlined", "hyperlinked",
            "in_list", "in_title", "numeric", "capitalized", "person_name",
            "first_half", "preceded_by", "followed_by", "min_value",
            "max_value", "min_length", "max_length", "starts_with",
            "ends_with", "pattern", "prec_label_contains",
            "prec_label_max_dist",
        }:
            assert name in registry, name

    def test_registry_features_documented(self):
        text = (DOCS / "features.md").read_text(encoding="utf-8")
        for name in default_registry().names():
            assert name in text, "feature %s missing from docs/features.md" % name


class TestCliDocs:
    def test_documented_commands_exist(self):
        from repro.cli import build_parser

        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.dest == "command"
        )
        for command in subparsers.choices:
            assert "## %s" % command in text or command in text, command


    def test_run_flags_documented_and_real(self):
        """Every documented `run` flag parses; key flags are documented."""
        from repro.cli import build_parser

        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        parser = build_parser()
        run_parser = next(
            a for a in parser._actions if a.dest == "command"
        ).choices["run"]
        known = {
            s for action in run_parser._actions for s in action.option_strings
        }
        for flag in (
            "--no-index",
            "--no-eval-cache",
            "--no-batch",
            "--artifact-cache",
            "--result-cache",
            "--no-incremental",
            "--metrics-out",
            "--trace-out",
            "--workers",
        ):
            assert flag in known, "doc'd flag %s not in run parser" % flag
            # flags may be documented with an argument, e.g. `--workers N`
            assert "`%s" % flag in text, "%s missing from docs/cli.md" % flag
        # no phantom long flags documented in the run section (the text
        # between "## run" and the next command heading)
        run_section = text.split("## run", 1)[1].split("\n## ", 1)[0]
        for flag in set(re.findall(r"`(--[a-z][a-z-]+)", run_section)):
            assert flag in known, "docs/cli.md documents unknown %s" % flag


class TestPerformanceDocs:
    def test_columnar_contract_matches_code(self):
        """The documented columnar artifact lifecycle names real API."""
        import repro.columnar as columnar

        text = (DOCS / "performance.md").read_text(encoding="utf-8")
        for name in ("corpus_digest", "build_artifacts", "save_artifacts"):
            assert name in text, name
            assert hasattr(columnar, name), name
        # the documented batch counters are real ExecutionStats fields
        from repro.processor.context import ExecutionStats

        stats = ExecutionStats()
        for field in ("verify_batch", "refine_batch"):
            assert "`%s`" % field in text or field in text, field
            assert hasattr(stats, field), field

    def test_incremental_contract_matches_code(self):
        """The documented delta-execution lifecycle names real API."""
        import repro.columnar as columnar

        text = (DOCS / "performance.md").read_text(encoding="utf-8")
        for name in ("ResultStore", "load_result", "save_result", "prune_cache_dir"):
            assert name in text, name
            assert hasattr(columnar, name), name
        from repro.processor.context import ExecConfig, ExecutionStats
        from repro.text.corpus import Corpus

        assert "content_digest" in text
        assert hasattr(Corpus(), "content_digest")
        config = ExecConfig()
        stats = ExecutionStats()
        for field in ("result_cache", "incremental"):
            assert field in text, field
            assert hasattr(config, field), field
        for field in (
            "partitions_reused",
            "partitions_recomputed",
            "result_cache_hits",
            "result_cache_misses",
        ):
            assert "`%s`" % field in text or field in text, field
            assert hasattr(stats, field), field


class TestDiagnosticCodeTable:
    def test_every_code_is_documented(self):
        from repro.analysis import CODES

        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        for code in CODES:
            assert "`%s`" % code in text, (
                "diagnostic %s missing from docs/cli.md" % code
            )

    def test_no_phantom_codes_documented(self):
        from repro.analysis import CODES

        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        for code in set(re.findall(r"ALOG\d{3}", text)):
            assert code in CODES, "docs/cli.md documents unknown code %s" % code

    def test_every_code_appears_in_the_language_pass_list(self):
        from repro.analysis import CODES

        text = (DOCS / "language.md").read_text(encoding="utf-8")
        for code in CODES:
            assert "`%s`" % code in text, (
                "diagnostic %s missing from docs/language.md" % code
            )

    def test_no_phantom_codes_in_language_docs(self):
        from repro.analysis import CODES

        text = (DOCS / "language.md").read_text(encoding="utf-8")
        for code in set(re.findall(r"ALOG\d{3}", text)):
            assert code in CODES, (
                "docs/language.md documents unknown code %s" % code
            )


class TestDesignIndexTargets:
    def test_bench_targets_exist(self):
        root = pathlib.Path(__file__).parent.parent
        design = (root / "DESIGN.md").read_text(encoding="utf-8")
        for target in re.findall(r"`benchmarks/(bench_\w+\.py)`", design):
            assert (root / "benchmarks" / target).exists(), target

    def test_example_targets_exist(self):
        root = pathlib.Path(__file__).parent.parent
        design = (root / "DESIGN.md").read_text(encoding="utf-8")
        for target in re.findall(r"`examples/(\w+\.py)`", design):
            assert (root / "examples" / target).exists(), target


class TestEmbeddingDocs:
    def test_exported_api_names_are_documented(self):
        import repro.alog.embed as embed

        text = (DOCS / "embedding.md").read_text(encoding="utf-8")
        for name in embed.__all__:
            assert name in text, (
                "embed export %s missing from docs/embedding.md" % name
            )

    def test_documented_methods_exist(self):
        from repro.alog import AlogSession, ResultRow, ResultSet

        text = (DOCS / "embedding.md").read_text(encoding="utf-8")
        documented = set(
            re.findall(r"`([a-z_]+)\(", text)
        ) - {"len"}  # builtins aside
        assert {"table", "rule", "run", "submit"} <= documented
        for name in documented:
            assert any(
                hasattr(owner, name)
                for owner in (AlogSession, ResultSet, ResultRow)
            ), "docs/embedding.md documents unknown method %s" % name

    def test_documented_row_and_set_members_exist(self):
        from repro.alog import ResultRow, ResultSet

        text = (DOCS / "embedding.md").read_text(encoding="utf-8")
        for owner, members in (
            (ResultSet, ("attrs", "stats", "maybe_rows", "to_dicts", "to_csv")),
            (ResultRow, ("maybe", "value", "cell", "as_dict")),
        ):
            for member in members:
                assert member in text, member
                assert hasattr(owner, member), member


class TestServiceDocs:
    def test_documented_routes_exist(self):
        """Every route row in docs/service.md matches a real ServiceApp
        route (method + path pattern), and vice versa."""
        from repro.service import ExtractionService, ServiceApp

        text = (DOCS / "service.md").read_text(encoding="utf-8")
        documented = {
            (method, re.sub(r"<[^>]+>", "<>", path))
            for method, path in re.findall(
                r"\|\s*(GET|POST|DELETE)\s*\|\s*`(/[^`]*)`", text
            )
        }
        app = ServiceApp(ExtractionService())
        real = set()
        for method, pattern, _handler in app.routes:
            path = pattern.pattern
            path = path.lstrip("^").rstrip("$").replace("/?", "")
            path = re.sub(r"\(\?P<[a-z_]+>[^)]*\)", "<>", path)
            real.add((method, path))
        assert documented == real

    def test_documented_serve_flags_parse(self):
        from repro.cli import build_parser

        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        serve_parser = next(
            a for a in build_parser()._actions if a.dest == "command"
        ).choices["serve"]
        known = {
            s for action in serve_parser._actions for s in action.option_strings
        }
        serve_section = text.split("## serve", 1)[1].split("\n## ", 1)[0]
        documented = set(re.findall(r"(--[a-z][a-z-]+)", serve_section))
        assert documented, "serve section documents no flags"
        for flag in documented:
            assert flag in known, "docs/cli.md documents unknown %s" % flag
        for flag in ("--port", "--result-cache", "--rate-limit", "--partition-docs"):
            assert flag in documented, "%s missing from docs/cli.md" % flag

    def test_documented_metrics_are_emitted(self):
        """Every repro.service.* counter named in the docs appears in
        the service source (no phantom metric names)."""
        import pathlib

        text = (DOCS / "service.md").read_text(encoding="utf-8")
        src = pathlib.Path(__file__).parent.parent / "src" / "repro" / "service"
        code = "".join(
            p.read_text(encoding="utf-8") for p in sorted(src.glob("*.py"))
        )
        for name in re.findall(r"`repro\.service\.([a-z_]+)`?", text):
            needle_full = '"repro.service.%s"' % name
            needle_fmt = '"%s"' % name  # via _count("name")
            assert needle_full in code or needle_fmt in code, name
