"""Baseline method tests: cost model, extractors, Xlog/Manual runs."""

import pytest

from repro.baselines.cost_model import CostModel, MANUAL_SECONDS_PER_RECORD
from repro.baselines.extractors import (
    amazon_extractor,
    barnes_extractor,
    gm_extractor,
    imdb_extractor,
    vldb_extractor,
)
from repro.baselines.manual import run_manual_baseline
from repro.baselines.xlog_method import precise_program, run_xlog_baseline
from repro.ctables.assignments import value_text
from repro.datagen.books import generate_books
from repro.datagen.dblp import generate_dblp
from repro.datagen.movies import generate_movies
from repro.experiments.tasks import TASK_IDS, build_task
from repro.text.span import doc_span


class TestCostModel:
    def test_xlog_structural_formula(self):
        model = CostModel()
        # T8's shape: 1 predicate, 4 attributes, no join -> ~42 minutes
        assert 38 <= model.xlog_minutes(4, 1, 0) <= 46
        # T6/T9 shape: 2 predicates, 4 attributes, 1 join -> ~55-60
        assert 52 <= model.xlog_minutes(4, 2, 1) <= 62

    def test_manual_linear_and_dnf(self):
        model = CostModel()
        small = model.manual_minutes("T9", 100)
        large = model.manual_minutes("T9", 5000)
        assert small is not None
        assert large is None  # DNF past the budget

    def test_manual_rates_cover_all_tasks(self):
        assert set(MANUAL_SECONDS_PER_RECORD) == set(TASK_IDS)

    def test_iflex_minutes_composition(self):
        class FakeTrace:
            questions_asked = 6
            machine_seconds = 30.0
            iterations = 4

        model = CostModel()
        minutes = model.iflex_minutes(FakeTrace(), rule_count=3, cleanup_minutes=8.0)
        expected = (
            3 * model.rule_minutes
            + 6 * model.question_seconds / 60
            + 4 * model.inspection_seconds_per_iteration / 60
            + 0.5
            + 8.0
        )
        assert abs(minutes - expected) < 1e-9


class TestExtractors:
    def test_imdb(self):
        record = generate_movies({"IMDB": 3, "Ebert": 0, "Prasanna": 0}, seed=2)["IMDB"][0]
        (title, year, votes), = imdb_extractor(doc_span(record.doc))
        assert title.text == record.value("title")
        assert votes.numeric_value == record.value("votes")

    def test_gm_journal_detection(self):
        records = generate_dblp(
            {"GarciaMolina": 20, "VLDB": 0, "SIGMOD": 0, "ICDE": 0}, seed=2
        )["GarciaMolina"]
        for record in records:
            (title, jy), = gm_extractor(doc_span(record.doc))
            if record.doc.meta["journal"]:
                assert jy.numeric_value == record.value("journalYear")
            else:
                assert jy is None

    def test_vldb_pages(self):
        record = generate_dblp(
            {"GarciaMolina": 0, "VLDB": 3, "SIGMOD": 0, "ICDE": 0}, seed=2
        )["VLDB"][0]
        (title, first, last), = vldb_extractor(doc_span(record.doc))
        assert first.numeric_value == record.value("firstPage")
        assert last.numeric_value == record.value("lastPage")

    def test_amazon_and_barnes(self):
        tables = generate_books({"Amazon": 3, "Barnes": 3}, seed=2)
        (t, lp, np_, up), = amazon_extractor(doc_span(tables["Amazon"][0].doc))
        assert lp.numeric_value == tables["Amazon"][0].value("listPrice")
        (t2, price), = barnes_extractor(doc_span(tables["Barnes"][0].doc))
        assert price.numeric_value == tables["Barnes"][0].value("price")


class TestXlogBaseline:
    @pytest.mark.parametrize("task_id", TASK_IDS)
    def test_precise_program_matches_truth(self, task_id):
        task = build_task(task_id, size=30, seed=3)
        outcome = run_xlog_baseline(task)
        correct = {value_text(row[0]) for row in task.correct_rows}
        assert outcome.row_keys == correct, task_id

    def test_minutes_flat_in_size(self):
        small = run_xlog_baseline(build_task("T7", size=20, seed=3))
        large = run_xlog_baseline(build_task("T7", size=200, seed=3))
        assert abs(small.minutes - large.minutes) < 2.0

    def test_precise_program_structure(self):
        task = build_task("T9", size=15, seed=3)
        program = precise_program(task)
        assert set(program.p_predicates) == {"extractAmazonPrice", "extractBarnesPrice"}


class TestManualBaseline:
    def test_scales_with_records(self):
        small = run_manual_baseline(build_task("T7", size=20, seed=3))
        large = run_manual_baseline(build_task("T7", size=200, seed=3))
        assert large.minutes > small.minutes

    def test_display_dnf(self):
        outcome = run_manual_baseline(build_task("T9", size=3000, seed=3))
        assert outcome.display() == "—"
