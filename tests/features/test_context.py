"""Context feature tests (preceded/followed_by, labels, position)."""

import pytest

from repro.features.registry import default_registry
from repro.text.document import Document
from repro.text.html_parser import parse_html
from repro.text.span import Span, doc_span


@pytest.fixture
def registry():
    return default_registry()


@pytest.fixture
def price_doc():
    return Document("d", "Our Price: $116.00. You save 20%.")


class TestPrecededBy:
    def test_verify(self, registry, price_doc):
        f = registry.get("preceded_by")
        price = Span(price_doc, 12, 18)  # 116.00
        assert f.verify(price, "$")
        assert f.verify(price, "Price: $")
        assert not f.verify(price, "ISBN:")

    def test_verify_skips_whitespace(self, registry):
        f = registry.get("preceded_by")
        doc = Document("d", "Votes:   23,456")
        votes = Span(doc, 9, 15)
        assert f.verify(votes, "Votes:")

    def test_refine_superset(self, registry, price_doc):
        f = registry.get("preceded_by")
        hints = f.refine(doc_span(price_doc), "$")
        assert hints
        texts = [s.text for _, s in hints]
        assert any(t.startswith("116.00") for t in texts)

    def test_infer_parameter(self, registry, price_doc):
        f = registry.get("preceded_by")
        price = Span(price_doc, 12, 18)
        assert f.infer_parameter([price]) in ("Price: $", "$")

    def test_infer_none_when_at_start(self, registry):
        f = registry.get("preceded_by")
        doc = Document("d", "Title here")
        assert f.infer_parameter([Span(doc, 0, 5)]) is None

    def test_candidate_values_profiled(self, registry, price_doc):
        f = registry.get("preceded_by")
        price = Span(price_doc, 12, 18)
        candidates = f.candidate_values([price])
        assert "$" in candidates


class TestFollowedBy:
    def test_verify(self, registry, price_doc):
        f = registry.get("followed_by")
        price = Span(price_doc, 12, 18)
        assert f.verify(price, ".")
        assert not f.verify(price, "%")

    def test_infer(self, registry):
        f = registry.get("followed_by")
        doc = Document("d", "123 (panelist) x")
        span = Span(doc, 0, 3)
        assert f.infer_parameter([span]).startswith("(panelist)")

    def test_infer_common_prefix_across_spans(self, registry):
        f = registry.get("followed_by")
        d1 = Document("d1", "123 (panelist) at PODS")
        d2 = Document("d2", "456 (panelist) at VLDB")
        value = f.infer_parameter([Span(d1, 0, 3), Span(d2, 0, 3)])
        assert value.startswith("(panelist)")


class TestFirstHalf:
    def test_verify(self, registry):
        f = registry.get("first_half")
        doc = Document("d", "a" * 100)
        assert f.verify(Span(doc, 0, 10), "yes")
        assert f.verify(Span(doc, 80, 90), "no")
        assert f.verify(Span(doc, 40, 60), "no")  # straddles midpoint

    def test_refine_yes_clips(self, registry):
        f = registry.get("first_half")
        doc = Document("d", "aaa bbb ccc ddd eee fff")
        hints = f.refine(doc_span(doc), "yes")
        (mode, span), = hints
        assert span.end <= len(doc.text) // 2


class TestPrecLabelFeatures:
    @pytest.fixture
    def page(self):
        return parse_html(
            "d",
            "<h2>Organization</h2><ul><li>PC Chair: Alice Chen</li></ul>"
            "<h2>Panel Discussion</h2><ul><li>Bob Jones (panelist)</li></ul>",
        )

    def test_prec_label_contains_verify(self, registry, page):
        f = registry.get("prec_label_contains")
        offset = page.text.index("Bob")
        span = Span(page, offset, offset + 9)
        assert f.verify(span, "Panel")
        assert f.verify(span, "panel")  # case-insensitive
        assert not f.verify(span, "Organization")

    def test_prec_label_contains_refine(self, registry, page):
        f = registry.get("prec_label_contains")
        hints = f.refine(doc_span(page), "Panel")
        assert len(hints) == 1
        (_, span), = hints
        assert "Bob Jones" in span.text
        assert "Alice Chen" not in span.text

    def test_prec_label_contains_infer(self, registry, page):
        f = registry.get("prec_label_contains")
        offset = page.text.index("Bob")
        value = f.infer_parameter([Span(page, offset, offset + 9)])
        assert value in ("panel", "discussion")

    def test_prec_label_max_dist(self, registry, page):
        f = registry.get("prec_label_max_dist")
        offset = page.text.index("Bob")
        span = Span(page, offset, offset + 9)
        assert f.verify(span, 50)
        assert not f.verify(span, 0)

    def test_prec_label_max_dist_infer(self, registry, page):
        f = registry.get("prec_label_max_dist")
        offset = page.text.index("Bob")
        span = Span(page, offset, offset + 9)
        assert f.infer_parameter([span]) == span.start - page.labels[1].end

    def test_no_label_before(self, registry):
        f = registry.get("prec_label_contains")
        doc = Document("d", "no labels here")
        assert not f.verify(doc_span(doc), "x")
        assert f.infer_parameter([doc_span(doc)]) is None
