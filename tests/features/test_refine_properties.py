"""Property-based tests of the Verify/Refine contract.

The paper's framework rests on one invariant: the set of values a
constraint's ``A(k, ·)`` keeps must be a *superset* of the values that
satisfy Verify — and ``exact`` hints must themselves Verify.  These
tests fuzz documents and check the contract on every built-in feature
that emits exact hints.
"""

from hypothesis import given, settings, strategies as st

from repro.features.registry import default_registry
from repro.text.document import Document
from repro.text.span import doc_span

REGISTRY = default_registry()

_text = st.text(
    alphabet=st.sampled_from(list("abcXY 0123.,$%")), min_size=1, max_size=60
)


@st.composite
def documents(draw):
    text = draw(_text)
    # plant a bold region over a token-ish middle chunk when possible
    regions = {}
    stripped = text.strip()
    if len(stripped) >= 4:
        start = text.index(stripped[0])
        regions["bold"] = [(start, min(len(text), start + max(2, len(stripped) // 2)))]
    return Document("h-%d" % draw(st.integers(0, 10**9)), text, regions=regions)


@settings(max_examples=60, deadline=None)
@given(documents())
def test_numeric_exact_hints_verify(doc):
    feature = REGISTRY.get("numeric")
    for mode, span in feature.refine(doc_span(doc), "yes"):
        assert mode == "exact"
        assert feature.verify(span, "yes")


@settings(max_examples=60, deadline=None)
@given(documents())
def test_numeric_refine_covers_all_satisfying_tokens(doc):
    """Superset direction: every satisfying token span is covered."""
    feature = REGISTRY.get("numeric")
    hints = feature.refine(doc_span(doc), "yes")
    covered = [span for _, span in hints]
    for token_span in doc_span(doc).token_spans():
        if feature.verify(token_span, "yes"):
            assert any(c.contains(token_span) for c in covered)


@settings(max_examples=60, deadline=None)
@given(documents())
def test_bold_contain_hints_fully_verify(doc):
    feature = REGISTRY.get("bold_font")
    for mode, span in feature.refine(doc_span(doc), "yes"):
        assert feature.verify(span, "yes")
        if mode == "contain":
            for sub in span.token_aligned_subspans(max_count=12):
                assert feature.verify(sub, "yes")


@settings(max_examples=60, deadline=None)
@given(documents(), st.integers(min_value=1, max_value=30))
def test_max_length_hints_respect_bound(doc, bound):
    feature = REGISTRY.get("max_length")
    for mode, span in feature.refine(doc_span(doc), bound):
        assert len(span) <= bound


@settings(max_examples=60, deadline=None)
@given(documents())
def test_capitalized_contain_hints_verify(doc):
    feature = REGISTRY.get("capitalized")
    for mode, span in feature.refine(doc_span(doc), "yes"):
        assert feature.verify(span, "yes")


@settings(max_examples=40, deadline=None)
@given(documents(), st.sampled_from(["$", "X", ","]))
def test_preceded_by_exactness_after_recheck(doc, needle):
    """Whatever Refine returns, Verify is the final word: every token

    span that satisfies the constraint lies under some hint.
    """
    feature = REGISTRY.get("preceded_by")
    hints = feature.refine(doc_span(doc), needle)
    covered = [span for _, span in hints]
    for token_span in doc_span(doc).token_spans():
        if feature.verify(token_span, needle):
            assert any(c.contains(token_span) for c in covered)
