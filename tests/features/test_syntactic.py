"""Syntactic feature tests (numeric, capitalized, patterns, lengths)."""

import pytest

from repro.features.registry import default_registry
from repro.text.document import Document
from repro.text.span import Span, doc_span


@pytest.fixture
def registry():
    return default_registry()


def span_of(text):
    return doc_span(Document("d-%d" % abs(hash(text)) , text))


class TestNumeric:
    def test_verify_yes(self, registry):
        f = registry.get("numeric")
        assert f.verify(span_of("351,000"), "yes")
        assert f.verify(span_of("35.99"), "yes")
        assert not f.verify(span_of("abc"), "yes")

    def test_verify_no(self, registry):
        f = registry.get("numeric")
        assert f.verify(span_of("abc"), "no")
        assert not f.verify(span_of("42"), "no")

    def test_distinct_yes_requires_maximal_number(self, registry):
        f = registry.get("numeric")
        doc = Document("d", "x 12345 y")
        assert f.verify(Span(doc, 2, 7), "distinct_yes")
        assert f.verify(Span(doc, 3, 6), "yes")
        assert not f.verify(Span(doc, 3, 6), "distinct_yes")

    def test_refine_yields_exact_number_tokens(self, registry):
        f = registry.get("numeric")
        span = span_of("Sqft: 2750. Price: $351,000.")
        hints = f.refine(span, "yes")
        assert all(mode == "exact" for mode, _ in hints)
        assert {s.text for _, s in hints} == {"2750", "351,000"}

    def test_refine_no_complements_numbers(self, registry):
        f = registry.get("numeric")
        span = span_of("a 12 b")
        hints = f.refine(span, "no")
        for _, s in hints:
            assert "12" not in s.text


class TestCapitalized:
    def test_verify(self, registry):
        f = registry.get("capitalized")
        assert f.verify(span_of("Cherry Hills"), "yes")
        assert not f.verify(span_of("Cherry hills"), "yes")
        assert not f.verify(span_of("123"), "yes")  # no word tokens

    def test_refine_returns_runs(self, registry):
        f = registry.get("capitalized")
        hints = f.refine(span_of("visit Cherry Hills soon"), "yes")
        (mode, span), = hints
        assert mode == "contain"
        assert span.text == "Cherry Hills"

    def test_refine_multiple_runs(self, registry):
        f = registry.get("capitalized")
        hints = f.refine(span_of("Alice went to Cherry Hills"), "yes")
        assert [s.text for _, s in hints] == ["Alice", "Cherry Hills"]


class TestPattern:
    def test_fullmatch_semantics(self, registry):
        f = registry.get("pattern")
        assert f.verify(span_of("1999"), r"19\d\d")
        assert not f.verify(span_of("in 1999"), r"19\d\d")

    def test_refine_exact_matches(self, registry):
        f = registry.get("pattern")
        hints = f.refine(span_of("from 1975 to 2005"), r"19\d\d|20\d\d")
        assert {s.text for _, s in hints} == {"1975", "2005"}
        assert all(mode == "exact" for mode, _ in hints)


class TestStartsEndsWith:
    def test_starts_with(self, registry):
        f = registry.get("starts_with")
        assert f.verify(span_of("SIGMOD 2008"), r"[A-Z][A-Z]+")
        assert not f.verify(span_of("the SIGMOD"), r"[A-Z][A-Z]+")

    def test_ends_with(self, registry):
        f = registry.get("ends_with")
        assert f.verify(span_of("SIGMOD 2008"), r"20\d\d")
        assert not f.verify(span_of("2008 SIGMOD"), r"20\d\d")

    def test_starts_with_refine_is_superset(self, registry):
        f = registry.get("starts_with")
        span = span_of("the PODS 2003 page")
        hints = f.refine(span, r"[A-Z][A-Z]+")
        assert hints
        for _, s in hints:
            assert f.verify(s, r"[A-Z][A-Z]+")


class TestLengths:
    def test_max_length_verify(self, registry):
        f = registry.get("max_length")
        assert f.verify(span_of("short"), 5)
        assert not f.verify(span_of("longer"), 5)

    def test_max_length_refine_windows(self, registry):
        f = registry.get("max_length")
        span = span_of("aaa bbb ccc ddd")
        hints = f.refine(span, 7)
        for mode, s in hints:
            assert mode == "contain"
            assert len(s) <= 7

    def test_max_length_infer(self, registry):
        f = registry.get("max_length")
        assert f.infer_parameter([span_of("abc"), span_of("abcdef")]) == 6

    def test_min_length(self, registry):
        f = registry.get("min_length")
        assert f.verify(span_of("abcdef"), 3)
        assert not f.verify(span_of("ab"), 3)
        assert f.infer_parameter([span_of("abc"), span_of("ab")]) == 2


class TestPersonName:
    def test_matches_two_part_names(self, registry):
        f = registry.get("person_name")
        assert f.verify(span_of("Alice Chen"), "yes")
        assert f.verify(span_of("Robert F. Xu"), "yes")
        assert not f.verify(span_of("alice chen"), "yes")

    def test_does_not_match_across_newlines(self, registry):
        f = registry.get("person_name")
        doc = Document("d", "Rachel Moreau\nKaren Ullman")
        hints = f.refine(doc_span(doc), "yes")
        assert {s.text for _, s in hints} == {"Rachel Moreau", "Karen Ullman"}

    def test_refine_exact(self, registry):
        f = registry.get("person_name")
        hints = f.refine(span_of("meet Alice Chen today"), "yes")
        (mode, span), = hints
        assert mode == "exact" and span.text == "Alice Chen"
