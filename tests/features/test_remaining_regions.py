"""Coverage for the remaining region features and distinct_no."""

import pytest

from repro.features.registry import default_registry
from repro.text.html_parser import parse_html
from repro.text.span import Span, doc_span


@pytest.fixture
def registry():
    return default_registry()


@pytest.fixture
def page():
    return parse_html(
        "rr",
        "<html><title>Catalog 2008</title><body>"
        "<p>intro <u>underlined bit</u> text</p>"
        "<ul><li>first item</li><li>second item</li></ul>"
        "</body></html>",
    )


class TestUnderlined:
    def test_verify_and_refine(self, registry, page):
        feature = registry.get("underlined")
        (start, end), = page.regions_of("underline")
        span = Span(page, start, end)
        assert feature.verify(span, "yes")
        assert feature.verify(span, "distinct_yes")
        hints = feature.refine(doc_span(page), "yes")
        assert hints[0][1].text == "underlined bit"


class TestInList:
    def test_items_covered(self, registry, page):
        feature = registry.get("in_list")
        hints = feature.refine(doc_span(page), "yes")
        assert [h[1].text for h in hints] == ["first item", "second item"]

    def test_no_outside_items(self, registry, page):
        feature = registry.get("in_list")
        intro = Span(page, page.text.index("intro"), page.text.index("intro") + 5)
        assert feature.verify(intro, "no")


class TestInTitle:
    def test_title_span(self, registry, page):
        feature = registry.get("in_title")
        (start, end), = page.regions_of("title")
        assert feature.verify(Span(page, start, end), "yes")
        assert feature.verify(Span(page, start, end), "distinct_yes")

    def test_refine_clips_to_title(self, registry, page):
        feature = registry.get("in_title")
        (mode, span), = feature.refine(doc_span(page), "yes")
        assert span.text == "Catalog 2008"


class TestDistinctNo:
    def test_distinct_no_semantics(self, registry, page):
        feature = registry.get("underlined")
        # a span overlapping the region at a token boundary: distinct_no
        # requires no *token* of the span inside the region
        intro_start = page.text.index("intro")
        outside = Span(page, intro_start, intro_start + 5)
        assert feature.verify(outside, "distinct_no")
        (start, end), = page.regions_of("underline")
        inside = Span(page, start, end)
        assert not feature.verify(inside, "distinct_no")

    def test_unsupported_value_raises(self, registry, page):
        feature = registry.get("underlined")
        with pytest.raises(ValueError):
            feature.verify(doc_span(page), "sometimes")


class TestNotEqualConditionPath:
    def test_ne_on_exact_cells(self):
        from repro.ctables.assignments import Exact
        from repro.ctables.ctable import Cell
        from repro.processor.conditions import ComparisonCondition, make_side
        from repro.processor.context import ExecutionContext
        from repro.text.corpus import Corpus
        from repro.xlog.program import Program

        context = ExecutionContext(
            Program.parse("q(x) :- base(x).", extensional=["base"]),
            Corpus({"base": []}),
        )
        cond = ComparisonCondition(make_side(attr="a"), "!=", make_side(const=5))
        result = cond.evaluate({"a": Cell((Exact(5), Exact(6)))}, context)
        assert result.some and not result.all
        kept = [a.value for a in result.filtered["a"].assignments]
        assert kept == [6]

    def test_ne_all_satisfy(self):
        from repro.ctables.assignments import Exact
        from repro.ctables.ctable import Cell
        from repro.processor.conditions import ComparisonCondition, make_side
        from repro.processor.context import ExecutionContext
        from repro.text.corpus import Corpus
        from repro.xlog.program import Program

        context = ExecutionContext(
            Program.parse("q(x) :- base(x).", extensional=["base"]),
            Corpus({"base": []}),
        )
        cond = ComparisonCondition(make_side(attr="a"), "!=", make_side(const=99))
        result = cond.evaluate({"a": Cell((Exact(1), Exact(2)))}, context)
        assert result.some and result.all
