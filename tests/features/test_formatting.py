"""Region-backed feature tests (bold/italic/underline/hyperlink/lists)."""

import pytest

from repro.features.registry import default_registry
from repro.text.html_parser import parse_html
from repro.text.span import Span, doc_span


@pytest.fixture
def registry():
    return default_registry()


@pytest.fixture
def doc():
    return parse_html(
        "d",
        "<p>Price: <b>$351,000</b> and <i>cozy nook</i> here "
        "<a href='#'>link text</a></p>",
    )


def bold_span(doc):
    start, end = doc.regions_of("bold")[0]
    return Span(doc, start, end)


class TestVerifyYes:
    def test_inside_region(self, registry, doc):
        feature = registry.get("bold_font")
        assert feature.verify(bold_span(doc), "yes")

    def test_sub_span_of_region(self, registry, doc):
        feature = registry.get("bold_font")
        b = bold_span(doc)
        assert feature.verify(b.sub(b.start + 1, b.end), "yes")

    def test_outside_region(self, registry, doc):
        feature = registry.get("bold_font")
        assert not feature.verify(Span(doc, 0, 5), "yes")

    def test_straddling_region_boundary(self, registry, doc):
        feature = registry.get("bold_font")
        b = bold_span(doc)
        straddle = Span(doc, b.start - 2, b.end)
        assert not feature.verify(straddle, "yes")


class TestVerifyDistinct:
    def test_whole_region_is_distinct(self, registry, doc):
        feature = registry.get("bold_font")
        assert feature.verify(bold_span(doc), "distinct_yes")

    def test_proper_sub_span_not_distinct(self, registry, doc):
        feature = registry.get("bold_font")
        b = bold_span(doc)
        sub = b.sub(b.start + 1, b.end)
        assert not feature.verify(sub, "distinct_yes")


class TestVerifyNo:
    def test_no_means_outside(self, registry, doc):
        feature = registry.get("italic_font")
        assert feature.verify(Span(doc, 0, 5), "no")

    def test_inside_region_is_not_no(self, registry, doc):
        feature = registry.get("bold_font")
        assert not feature.verify(bold_span(doc), "no")

    def test_overlap_is_not_no(self, registry, doc):
        feature = registry.get("bold_font")
        b = bold_span(doc)
        straddle = Span(doc, max(0, b.start - 2), b.end)
        assert not feature.verify(straddle, "no")


class TestRefine:
    def test_refine_yes_returns_contain_regions(self, registry, doc):
        feature = registry.get("bold_font")
        hints = feature.refine(doc_span(doc), "yes")
        assert len(hints) == 1
        mode, span = hints[0]
        assert mode == "contain"
        assert span.text == "$351,000"

    def test_refine_distinct_returns_exact(self, registry, doc):
        feature = registry.get("italic_font")
        hints = feature.refine(doc_span(doc), "distinct_yes")
        assert hints == [("exact", hints[0][1])]
        assert hints[0][1].text == "cozy nook"

    def test_refine_no_returns_gaps(self, registry, doc):
        feature = registry.get("bold_font")
        hints = feature.refine(doc_span(doc), "no")
        assert all(mode == "contain" for mode, _ in hints)
        for _, span in hints:
            assert feature.verify(span, "no")

    def test_refine_clips_to_input_span(self, registry, doc):
        feature = registry.get("bold_font")
        b = bold_span(doc)
        partial = Span(doc, b.start + 1, b.end)
        hints = feature.refine(partial, "yes")
        (mode, span), = hints
        assert span.start >= partial.start

    def test_all_region_features_registered(self, registry):
        for name in ("bold_font", "italic_font", "underlined", "hyperlinked", "in_list", "in_title"):
            assert name in registry.names()

    def test_hyperlink_refine(self, registry, doc):
        hints = registry.get("hyperlinked").refine(doc_span(doc), "yes")
        assert hints[0][1].text == "link text"


class TestRefineVerifyAgreement:
    """Every hint Refine returns must satisfy Verify (paper invariant)."""

    @pytest.mark.parametrize("value", ["yes", "distinct_yes", "no"])
    @pytest.mark.parametrize("name", ["bold_font", "italic_font", "hyperlinked"])
    def test_hints_verify(self, registry, doc, name, value):
        feature = registry.get(name)
        for mode, span in feature.refine(doc_span(doc), value):
            assert feature.verify(span, value), (name, value, span)
            if mode == "contain":
                # for contain, sub-spans must satisfy too (sample a few)
                for sub in span.token_aligned_subspans(max_count=10):
                    assert feature.verify(sub, value)
