"""Value-bound feature tests (min_value / max_value)."""

import pytest

from repro.features.registry import default_registry
from repro.text.document import Document
from repro.text.span import Span, doc_span


@pytest.fixture
def registry():
    return default_registry()


def span_of(text):
    return doc_span(Document("d-%d" % abs(hash(text)), text))


class TestMaxValue:
    def test_verify(self, registry):
        f = registry.get("max_value")
        assert f.verify(span_of("25000"), 25000)
        assert not f.verify(span_of("25001"), 25000)
        assert not f.verify(span_of("abc"), 25000)

    def test_refine_exact_numbers(self, registry):
        f = registry.get("max_value")
        hints = f.refine(span_of("rank 3 votes 351,000 year 2005"), 3000)
        assert {s.text for _, s in hints} == {"3", "2005"}

    def test_infer_rounds_up_nicely(self, registry):
        f = registry.get("max_value")
        value = f.infer_parameter([span_of("387"), span_of("123")])
        assert value >= 387
        assert value <= 400

    def test_infer_none_if_non_numeric(self, registry):
        f = registry.get("max_value")
        assert f.infer_parameter([span_of("abc")]) is None

    def test_candidates_from_profile(self, registry):
        f = registry.get("max_value")
        spans = [span_of(str(n)) for n in (10, 20, 500, 900)]
        candidates = f.candidate_values(spans)
        assert candidates
        assert all(isinstance(c, int) for c in candidates)


class TestMinValue:
    def test_verify(self, registry):
        f = registry.get("min_value")
        assert f.verify(span_of("1950"), 1900)
        assert not f.verify(span_of("1850"), 1900)

    def test_infer_rounds_down(self, registry):
        f = registry.get("min_value")
        value = f.infer_parameter([span_of("1952"), span_of("1967")])
        assert value <= 1952

    def test_refine(self, registry):
        f = registry.get("min_value")
        hints = f.refine(span_of("5 and 500 and 5000"), 400)
        assert {s.text for _, s in hints} == {"500", "5000"}
