"""Feature registry tests."""

import pytest

from repro.errors import UnknownFeatureError
from repro.features.base import Feature
from repro.features.registry import FeatureRegistry, default_registry


class _Custom(Feature):
    name = "custom_probe"

    def verify(self, span, value):
        return True

    def refine(self, span, value):
        return [("contain", span)]


class TestRegistry:
    def test_default_registry_contents(self):
        registry = default_registry()
        for name in (
            "numeric",
            "bold_font",
            "preceded_by",
            "max_value",
            "in_title",
            "person_name",
            "prec_label_contains",
        ):
            assert name in registry

    def test_unknown_feature_raises(self):
        with pytest.raises(UnknownFeatureError):
            default_registry().get("blinking")

    def test_register_custom_feature(self):
        registry = default_registry()
        registry.register(_Custom())
        assert registry.get("custom_probe").verify(None, "yes")

    def test_register_nameless_rejected(self):
        class Nameless(Feature):
            pass

        with pytest.raises(ValueError):
            FeatureRegistry().register(Nameless())

    def test_names_sorted(self):
        names = default_registry().names()
        assert names == sorted(names)

    def test_question_text(self):
        registry = default_registry()
        assert "bold" in registry.get("bold_font").question_text("price")
        assert "what is the value" in registry.get("preceded_by").question_text("price")
