#!/usr/bin/env python
"""Lint every Alog program the repository ships.

Three sources of programs, all run through the full analyzer with the
plan lint enabled (``plan=True``):

* the programs embedded in ``examples/*.py`` (triple-quoted blocks
  containing ``:-``), each with the declarations the example itself
  supplies;
* the nine benchmark scenario programs (``build_task(T1..T9)``),
  analyzed as fully resolved :class:`Program` objects;
* the three DBLife task programs (``build_dblife_tasks``).

Strict semantics: any error OR warning fails the run (exit 1); infos
are advisory and never fail.  ``--sarif-out PATH`` writes one merged
SARIF 2.1.0 report covering every program, for CI code-scanning upload.

Usage::

    PYTHONPATH=src python tools/self_lint.py [--sarif-out selflint.sarif]
"""

import argparse
import json
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import AnalysisResult, analyze_program, analyze_source  # noqa: E402
from repro.features.registry import default_registry  # noqa: E402

#: declarations for the programs embedded in each example file; an
#: example file without an entry here is expected to embed no programs
EXAMPLE_DECLS = {
    "quickstart.py": dict(
        extensional=("housePages", "schoolPages"),
        p_functions=("similar", "approxMatch"),
        query="Q",
    ),
    "custom_feature.py": dict(
        extensional=("pages",),
        query="confs",
        features=("all_caps",),
    ),
}

TRIPLE_QUOTED = re.compile(r'"""(.*?)"""', re.DOTALL)


def embedded_programs(path):
    """Yield triple-quoted blocks that look like Alog programs."""
    for block in TRIPLE_QUOTED.findall(path.read_text(encoding="utf-8")):
        if ":-" in block:
            yield block


def lint_examples():
    for path in sorted((ROOT / "examples").glob("*.py")):
        decls = EXAMPLE_DECLS.get(path.name, {})
        registry = default_registry()
        for name in decls.get("features", ()):
            registry = registry.declare(name)
        for index, source in enumerate(embedded_programs(path)):
            label = "examples/%s#%d" % (path.name, index)
            yield label, analyze_source(
                source,
                extensional=decls.get("extensional", ()),
                p_functions=decls.get("p_functions", ()),
                query=decls.get("query"),
                registry=registry,
                plan=True,
            )


def lint_benchmark_tasks():
    from repro.experiments.tasks import TASK_IDS, build_task

    for task_id in TASK_IDS:
        task = build_task(task_id, size=5, seed=0)
        yield "scenario/%s" % task_id, analyze_program(task.program, plan=True)


def lint_dblife_tasks():
    from repro.experiments.dblife_tasks import build_dblife_tasks

    pages = {"conference": 4, "project": 4, "homepage": 2}
    for task in build_dblife_tasks(pages=pages, seed=0):
        yield "dblife/%s" % task.name, analyze_program(task.program, plan=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sarif-out",
        metavar="PATH",
        help="write one merged SARIF report covering every program",
    )
    args = parser.parse_args(argv)

    failures = 0
    programs = 0
    sarif_results = []
    sarif_log = None
    for label, result in (
        list(lint_examples())
        + list(lint_benchmark_tasks())
        + list(lint_dblife_tasks())
    ):
        programs += 1
        blocking = list(result.errors) + list(result.warnings)
        status = "FAIL" if blocking else "ok"
        infos = len(result.infos)
        print(
            "%-4s %-24s %d errors, %d warnings, %d infos"
            % (status, label, len(result.errors), len(result.warnings), infos)
        )
        for diagnostic in result.diagnostics:
            print("    " + diagnostic.render(label))
        if blocking:
            failures += 1
        if args.sarif_out:
            log = result.to_sarif(label)
            sarif_log = sarif_log or log
            sarif_results.extend(log["runs"][0]["results"])

    if args.sarif_out:
        if sarif_log is None:
            sarif_log = AnalysisResult([]).to_sarif("self-lint")
        sarif_log["runs"][0]["results"] = sarif_results
        pathlib.Path(args.sarif_out).write_text(
            json.dumps(sarif_log, indent=2) + "\n", encoding="utf-8"
        )
        print("sarif: wrote %d results to %s" % (len(sarif_results), args.sarif_out))

    print(
        "self-lint: %d programs, %d failing (errors or warnings block; "
        "infos are advisory)" % (programs, failures)
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
