"""Micro-benchmarks of the approximate processor's core operators."""

import pytest

from repro.ctables.assignments import Contain, Exact
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.processor.bannotate import annotate_table
from repro.processor.conditions import ComparisonCondition, make_side
from repro.processor.constraints import apply_constraint_to_cell
from repro.processor.context import ExecutionContext
from repro.processor.library import jaccard, make_similar
from repro.processor.operators import JoinOp, TableSource
from repro.text.corpus import Corpus
from repro.text.html_parser import parse_html
from repro.text.span import doc_span
from repro.xlog.parser import parse_rules
from repro.xlog.program import Program
from repro.datagen.books import generate_books


@pytest.fixture
def context():
    program = Program.parse("q(x) :- base(x).", extensional=["base"])
    return ExecutionContext(program, Corpus({"base": []}))


@pytest.fixture(scope="module")
def record_doc():
    return parse_html(
        "bench",
        "<p><a href='#'><b>Database Systems in Practice</b></a></p>"
        "<p>by Alice Chen (2003)</p>"
        "<p>Our Price: <b>$116.00</b>. You save 20%.</p>"
        "<p>ISBN: 0471234567. In stock.</p>",
    )


def test_bench_tokenize(benchmark, record_doc):
    from repro.text.tokenize import tokenize

    tokens = benchmark(tokenize, record_doc.text)
    assert tokens


def test_bench_parse_html(benchmark):
    html = (
        "<p><b>Title</b> and <i>italics</i> plus <a href='#'>link</a></p>" * 20
    )
    doc = benchmark(parse_html, "p", html)
    assert doc.regions_of("bold")


def test_bench_parse_program(benchmark):
    source = """
        houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(@x, p, a, h).
        schools(s)? :- schoolPages(y), extractSchools(@y, s).
        Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500.
        extractHouses(@x, p, a, h) :- from(@x, p), from(@x, a), from(@x, h),
            numeric(p) = yes, numeric(a) = yes.
        extractSchools(@y, s) :- from(@y, s), bold_font(s) = yes.
    """
    rules = benchmark(parse_rules, source)
    assert len(rules) == 5


def test_bench_numeric_refine(benchmark, context, record_doc):
    cell = Cell((Contain(doc_span(record_doc)),))

    def apply():
        return apply_constraint_to_cell(cell, "numeric", "yes", (), context)

    out = benchmark(apply)
    assert not out.is_empty()


def test_bench_constraint_chain(benchmark, context, record_doc):
    cell = Cell((Contain(doc_span(record_doc)),))

    def chain():
        step = apply_constraint_to_cell(cell, "numeric", "yes", (), context)
        return apply_constraint_to_cell(
            step, "preceded_by", "Price: $", (("numeric", "yes"),), context
        )

    out = benchmark(chain)
    assert len(out.assignments) == 1


def test_bench_comparison_condition(benchmark, context, record_doc):
    cell = Cell((Contain(doc_span(record_doc)),))
    cond = ComparisonCondition(make_side(attr="p"), ">", make_side(const=100))

    result = benchmark(cond.evaluate, {"p": cell}, context)
    assert result.some


def test_bench_jaccard(benchmark):
    result = benchmark(jaccard, "Database Systems in Practice", "Practice of Database Systems")
    assert result > 0


def test_bench_bannotate(benchmark, context):
    table = CompactTable(["k", "v"])
    for i in range(200):
        table.add(
            CompactTuple([Cell((Exact("key%d" % (i % 50)),)), Cell((Exact(i),))])
        )

    out = benchmark(annotate_table, table, False, ("v",), context)
    assert len(out) == 50


def test_bench_blocked_similarity_join(benchmark, context):
    tables = generate_books({"Amazon": 120, "Barnes": 120}, seed=4)

    def side(records, attr):
        table = CompactTable((attr,))
        for r in records:
            table.add(CompactTuple([Cell((Exact(r.spans["title"]),))]))
        return TableSource(table)

    from repro.processor.conditions import PFunctionCondition

    cond = PFunctionCondition(
        "similar", make_similar(0.55), [make_side(attr="a"), make_side(attr="b")]
    )
    join = JoinOp(side(tables["Amazon"], "a"), side(tables["Barnes"], "b"), [cond])

    out = benchmark.pedantic(join.execute, args=(context,), rounds=3, iterations=1)
    assert len(out) >= 1
