"""Table 4: effects of soliciting domain knowledge, per iteration.

Paper shape: the result shrinks (sometimes drastically) over 2-10
iterations of question answering; the final bracketed number is the
full-input run in reuse mode; supersets end at or near 100 %.
"""

from repro.experiments import render_table, table4

from conftest import print_block


def test_table4_iteration_effects(benchmark, bench_scale, bench_seed, artifacts):
    headers, rows, extras = benchmark.pedantic(
        table4,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print_block(
        render_table(
            headers, rows,
            title="Table 4 — per-iteration effects [scale=%.2f]" % bench_scale,
        )
    )
    artifacts.table("table4_iterations", headers, rows, meta={"scale": bench_scale, "seed": bench_seed})
    assert len(rows) == 9
    runs = extras["runs"]
    # shape: sessions converge within the paper's 2-10 iteration band
    # (allow a little slack for the simulated developer)
    for task_id, run in runs.items():
        assert run.iterations <= 14, task_id
        assert run.trace.records[-1].mode == "reuse"
    # most tasks end exactly at the correct result size
    exact = sum(1 for run in runs.values() if round(run.superset_pct) == 100)
    assert exact >= 6
