"""Table 6: the DBLife tasks over a heterogeneous snapshot.

Paper shape: iFlex develops each of the three IE programs in well under
an hour of modelled developer time (vs the 2-3 hours the DBLife team
spent on the Perl originals), and the converged programs run in
seconds over the snapshot.
"""

import os

from repro.experiments import render_table, table6

from conftest import print_block

#: the paper's snapshot is 10,007 pages; the default bench snapshot is
#: a few hundred (set REPRO_DBLIFE_PAGES to scale it up)
def _pages():
    factor = float(os.environ.get("REPRO_DBLIFE_PAGES", "1.0"))
    return {
        "conference": int(120 * factor),
        "project": int(100 * factor),
        "homepage": int(80 * factor),
    }


def test_table6_dblife(benchmark, bench_seed, artifacts):
    headers, rows, extras = benchmark.pedantic(
        table6,
        kwargs={"seed": bench_seed, "pages": _pages()},
        rounds=1,
        iterations=1,
    )
    print_block(render_table(headers, rows, title="Table 6 — DBLife tasks"))
    artifacts.table("table6_dblife", headers, rows, meta={"seed": bench_seed})
    results = extras["results"]
    assert [r["task"] for r in results] == ["Panel", "Project", "Chair"]
    for result in results:
        # developer time stays far below the Perl comparator (120-180 min)
        assert result["minutes"] < 60
        # converged programs run in seconds, as in the paper
        assert result["runtime_seconds"] < 120
        # best-effort quality: the result is a modest superset at worst
        assert result["result_tuples"] >= result["correct_tuples"] * 0.95
        assert result["result_tuples"] <= result["correct_tuples"] * 2.0
