"""Partitioned-execution scaling (extension experiment).

Runs extraction-dominated Table 2 tasks at worker counts {1, 2, 4} on
the process backend and records the measured wall-clock next to a
*work-division bound*: each partition's plan prefix timed serially, so
``sum / max`` bounds the speedup the partitioning itself allows on a
machine with enough cores.  The two diverge exactly when the host has
fewer cores than workers (a single-CPU container time-slices the
children and measures a slowdown); the JSON records the host CPU count
so readers can tell which regime a data point came from.

Every configuration is also checked byte-identical to the serial run —
a scaling number from a diverging backend would be meaningless.

Results land in ``benchmarks/results/parallel_scaling.json``.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments.report import render_table

from conftest import print_block

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "parallel_scaling.json"

WORKER_COUNTS = (1, 2, 4)

#: extraction-dominated tasks (document-local prefixes do the work);
#: sizes give a medium corpus per the Table 2 scenario scale
TASKS = (("T1", 200), ("T5", 400), ("T7", 400))

HEADERS = ("task", "workers", "backend", "seconds", "speedup", "identical")


def _image(result):
    return {
        name: (table.attrs, [repr(t) for t in table.tuples])
        for name, table in result.tables.items()
    }


def _run_once(task, workers, backend):
    from repro.processor import ExecConfig, IFlexEngine

    engine = IFlexEngine(
        task.program,
        task.corpus,
        config=ExecConfig(workers=workers, backend=backend),
        validate=False,
    )
    start = time.perf_counter()
    result = engine.execute()
    return result, time.perf_counter() - start


def _partition_seconds(task, partitions):
    """Each partition's local work, timed one at a time (no contention)."""
    from repro.processor import ExecConfig, IFlexEngine
    from repro.processor.executor import evaluation_order

    engine = IFlexEngine(
        task.program,
        task.corpus,
        config=ExecConfig(workers=partitions, backend="serial"),
        validate=False,
    )
    physical = engine.physical
    local = [
        name
        for name in evaluation_order(engine.unfolded)
        if physical.split(name).has_local_work
    ]
    seconds = []
    for pid in range(len(physical.partitions)):
        start = time.perf_counter()
        for name in local:
            physical.execute_local_partitions(name, [pid])
        seconds.append(time.perf_counter() - start)
    return seconds


def scaling_curve(task_id, size, seed):
    from repro.experiments.tasks import build_task

    task = build_task(task_id, size=size, seed=seed)
    reference, serial_seconds = _run_once(task, 1, "serial")
    reference_image = _image(reference)
    points = [
        {
            "workers": 1,
            "backend": "serial",
            "seconds": round(serial_seconds, 3),
            "speedup": 1.0,
            "identical": True,
        }
    ]
    for workers in WORKER_COUNTS[1:]:
        result, seconds = _run_once(task, workers, "process")
        points.append(
            {
                "workers": workers,
                "backend": "process",
                "seconds": round(seconds, 3),
                "speedup": round(serial_seconds / seconds, 2),
                "identical": _image(result) == reference_image,
            }
        )
    partition_seconds = _partition_seconds(task, max(WORKER_COUNTS))
    bound = (
        sum(partition_seconds) / max(partition_seconds)
        if partition_seconds and max(partition_seconds)
        else 1.0
    )
    return {
        "task": task_id,
        "size": size,
        "points": points,
        "partition_seconds": [round(s, 3) for s in partition_seconds],
        "speedup_bound": round(bound, 2),
    }


def test_parallel_scaling(benchmark, bench_seed, artifacts):
    curves = benchmark.pedantic(
        lambda: [scaling_curve(task_id, size, bench_seed) for task_id, size in TASKS],
        rounds=1,
        iterations=1,
    )
    rows = []
    for curve in curves:
        for point in curve["points"]:
            rows.append(
                (
                    curve["task"],
                    point["workers"],
                    point["backend"],
                    "%.3f" % point["seconds"],
                    "%.2fx" % point["speedup"],
                    "yes" if point["identical"] else "NO",
                )
            )
    cpus = os.cpu_count() or 1
    title = "parallel scaling — process backend (host cpus: %d)" % cpus
    print_block(render_table(HEADERS, rows, title=title))
    artifacts.table("parallel_scaling", HEADERS, rows)

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {"host": {"cpus": cpus}, "worker_counts": list(WORKER_COUNTS), "tasks": curves},
            indent=2,
        )
        + "\n"
    )

    # every configuration must agree with serial exactly
    assert all(p["identical"] for c in curves for p in c["points"])
    # partitioning must divide the work: with 4 partitions the serially
    # measured critical path leaves >1.5x on the table for a multicore
    # host, even though a 1-cpu container cannot realise it
    assert all(c["speedup_bound"] > 1.5 for c in curves)
