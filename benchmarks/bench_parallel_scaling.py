"""Partitioned-execution scaling and fork-payload accounting.

Runs extraction-dominated Table 2 tasks at worker counts {1, 2, 4} on
the process backend and records the measured wall-clock next to a
*work-division bound*: each partition's plan prefix timed serially, so
``sum / max`` bounds the speedup the partitioning itself allows on a
machine with enough cores.  The two diverge exactly when the host has
fewer cores than workers (a single-CPU container time-slices the
children and measures a slowdown); the JSON records the host CPU count
so readers can tell which regime a data point came from.

The payload section measures what actually crosses the fork pipe.  The
*zero-copy* configuration is the default: result spans reference their
fork-inherited documents by ``(token, position)`` and the columnar
bundle rides as ``(path, digest)`` mmap refs.  The *legacy*
configuration ships results by value (``share_results=False``) and is
charged one column-bundle copy per worker — the bytes a
reference-free implementation must move so workers can evaluate at
all.  The acceptance bar is a >= 10x payload reduction.

Every configuration is also checked byte-identical to the serial run —
a scaling number from a diverging backend would be meaningless.

Results land in ``benchmarks/results/parallel_scaling.json``.
"""

import json
import os
import pickle
import tempfile
import time
from pathlib import Path

from repro.experiments.report import render_table

from conftest import print_block

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "parallel_scaling.json"

WORKER_COUNTS = (1, 2, 4)

#: workers used for the payload comparison (the largest configuration)
PAYLOAD_WORKERS = 4

#: extraction-dominated tasks (document-local prefixes do the work);
#: sizes give a medium corpus per the Table 2 scenario scale
TASKS = (("T1", 200), ("T5", 400), ("T7", 400))

HEADERS = ("task", "workers", "backend", "seconds", "speedup", "identical")

PAYLOAD_HEADERS = (
    "task",
    "legacy bytes",
    "zero-copy bytes",
    "reduction",
    "artifact build s",
    "artifact load s",
    "identical",
)


def _image(result):
    return {
        name: (table.attrs, [repr(t) for t in table.tuples])
        for name, table in result.tables.items()
    }


def _run_once(task, workers, backend, **config_kwargs):
    from repro.processor import ExecConfig, IFlexEngine

    engine = IFlexEngine(
        task.program,
        task.corpus,
        config=ExecConfig(workers=workers, backend=backend, **config_kwargs),
        validate=False,
    )
    start = time.perf_counter()
    result = engine.execute()
    return engine, result, time.perf_counter() - start


def _partition_seconds(task, partitions):
    """Each partition's local work, timed one at a time (no contention)."""
    from repro.processor import ExecConfig, IFlexEngine
    from repro.processor.executor import evaluation_order

    engine = IFlexEngine(
        task.program,
        task.corpus,
        config=ExecConfig(workers=partitions, backend="serial"),
        validate=False,
    )
    physical = engine.physical
    local = [
        name
        for group in evaluation_order(engine.unfolded)
        for name in group
        if physical.split(name).has_local_work
    ]
    seconds = []
    for pid in range(len(physical.partitions)):
        start = time.perf_counter()
        for name in local:
            physical.execute_local_partitions(name, [pid])
        seconds.append(time.perf_counter() - start)
    return seconds


def scaling_curve(task_id, size, seed):
    from repro.experiments.tasks import build_task

    task = build_task(task_id, size=size, seed=seed)
    reference, serial_seconds = _run_once(task, 1, "serial")[1:]
    reference_image = _image(reference)
    points = [
        {
            "workers": 1,
            "backend": "serial",
            "seconds": round(serial_seconds, 3),
            "speedup": 1.0,
            "identical": True,
        }
    ]
    for workers in WORKER_COUNTS[1:]:
        result, seconds = _run_once(task, workers, "process")[1:]
        points.append(
            {
                "workers": workers,
                "backend": "process",
                "seconds": round(seconds, 3),
                "speedup": round(serial_seconds / seconds, 2),
                "identical": _image(result) == reference_image,
            }
        )
    partition_seconds = _partition_seconds(task, max(WORKER_COUNTS))
    bound = (
        sum(partition_seconds) / max(partition_seconds)
        if partition_seconds and max(partition_seconds)
        else 1.0
    )
    return {
        "task": task_id,
        "size": size,
        "points": points,
        "partition_seconds": [round(s, 3) for s in partition_seconds],
        "speedup_bound": round(bound, 2),
    }


def payload_comparison(task_id, size, seed):
    """Fork-payload bytes: zero-copy vs legacy by-value shipping.

    Both configurations run with a columnar artifact cache, so the
    zero-copy run exercises the full reference machinery (shared
    document refs *and* artifact mmap refs) and the artifact build/load
    times come out of the same measurement.
    """
    from repro.experiments.tasks import build_task
    from repro.processor.schedulers import ProcessBackend

    task = build_task(task_id, size=size, seed=seed)
    with tempfile.TemporaryDirectory() as cache_dir:
        # cold pass builds + persists the bundle (timed by the store)
        cold_engine, reference, _ = _run_once(
            task,
            PAYLOAD_WORKERS,
            ProcessBackend(PAYLOAD_WORKERS, share_results=True),
            artifact_cache=cache_dir,
        )
        build_seconds = cold_engine.index_store.columnar.build_seconds
        # warm zero-copy pass: maps the bundle, ships refs
        shared_engine, shared_result, _ = _run_once(
            task,
            PAYLOAD_WORKERS,
            ProcessBackend(PAYLOAD_WORKERS, share_results=True),
            artifact_cache=cache_dir,
        )
        shared_store = shared_engine.index_store.columnar
        refs = shared_engine.physical._artifact_refs()
        ref_bytes = len(pickle.dumps(refs, pickle.HIGHEST_PROTOCOL))
        bundle = shared_store._bundles[0] if shared_store._bundles else None
        bundle_bytes = int(bundle.nbytes) if bundle is not None else 0
        # legacy pass: results by value, columns charged one copy per
        # worker (conservative — a copy-shipping implementation re-sends
        # per map call, of which an execution makes several)
        legacy_engine, legacy_result, _ = _run_once(
            task,
            PAYLOAD_WORKERS,
            ProcessBackend(PAYLOAD_WORKERS, share_results=False),
        )
        zero_copy_bytes = shared_engine.physical.payload_bytes + ref_bytes
        legacy_bytes = (
            legacy_engine.physical.payload_bytes + PAYLOAD_WORKERS * bundle_bytes
        )
        return {
            "task": task_id,
            "size": size,
            "workers": PAYLOAD_WORKERS,
            "result_bytes_shared": shared_engine.physical.payload_bytes,
            "result_bytes_by_value": legacy_engine.physical.payload_bytes,
            "artifact_ref_bytes": ref_bytes,
            "artifact_bundle_bytes": bundle_bytes,
            "zero_copy_bytes": zero_copy_bytes,
            "legacy_bytes": legacy_bytes,
            "payload_reduction": round(legacy_bytes / max(1, zero_copy_bytes), 1),
            "artifact_build_seconds": round(build_seconds, 4),
            "artifact_load_seconds": round(shared_store.load_seconds, 4),
            "warm_mapped": bool(bundle is not None and bundle.mapped),
            "identical": (
                _image(shared_result) == _image(reference)
                and _image(legacy_result) == _image(reference)
            ),
        }


def test_parallel_scaling(benchmark, bench_seed, artifacts):
    def body():
        curves = [scaling_curve(task_id, size, bench_seed) for task_id, size in TASKS]
        payloads = [
            payload_comparison(task_id, size, bench_seed) for task_id, size in TASKS
        ]
        return curves, payloads

    curves, payloads = benchmark.pedantic(body, rounds=1, iterations=1)
    rows = []
    for curve in curves:
        for point in curve["points"]:
            rows.append(
                (
                    curve["task"],
                    point["workers"],
                    point["backend"],
                    "%.3f" % point["seconds"],
                    "%.2fx" % point["speedup"],
                    "yes" if point["identical"] else "NO",
                )
            )
    cpus = os.cpu_count() or 1
    title = "parallel scaling — process backend (host cpus: %d)" % cpus
    print_block(render_table(HEADERS, rows, title=title))
    payload_rows = [
        (
            p["task"],
            p["legacy_bytes"],
            p["zero_copy_bytes"],
            "%.1fx" % p["payload_reduction"],
            "%.4f" % p["artifact_build_seconds"],
            "%.4f" % p["artifact_load_seconds"],
            "yes" if p["identical"] else "NO",
        )
        for p in payloads
    ]
    print_block(
        render_table(
            PAYLOAD_HEADERS,
            payload_rows,
            title="fork payload — zero-copy refs vs legacy by-value (workers: %d)"
            % PAYLOAD_WORKERS,
        )
    )
    artifacts.table("parallel_scaling", HEADERS, rows)
    artifacts.table("parallel_payload", PAYLOAD_HEADERS, payload_rows)

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "host": {"cpus": cpus},
                "worker_counts": list(WORKER_COUNTS),
                "tasks": curves,
                "payload": payloads,
            },
            indent=2,
        )
        + "\n"
    )

    # every configuration must agree with serial exactly
    assert all(p["identical"] for c in curves for p in c["points"])
    assert all(p["identical"] for p in payloads)
    # partitioning must divide the work: with 4 partitions the serially
    # measured critical path leaves >1.5x on the table for a multicore
    # host, even though a 1-cpu container cannot realise it
    assert all(c["speedup_bound"] > 1.5 for c in curves)
    # acceptance: reference shipping (shared documents + artifact mmap
    # refs) cuts the fork payload >= 10x against by-value legacy
    assert all(p["payload_reduction"] >= 10.0 for p in payloads), payloads
    # warm runs map the persisted bundle instead of rebuilding it
    assert all(p["warm_mapped"] for p in payloads), payloads
