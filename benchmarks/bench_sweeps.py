"""Sensitivity sweeps (extension experiments; see EXPERIMENTS.md).

The paper fixes α (developer decline probability), the subset fraction,
and the convergence window k.  These benches vary each and record how
convergence quality and cost respond.
"""

from repro.experiments.report import render_table
from repro.experiments.sweeps import alpha_sweep, k_sweep, subset_fraction_sweep

from conftest import print_block

HEADERS = ("value", "superset", "iterations", "questions", "machine s", "converged")


def test_alpha_sensitivity(benchmark, bench_seed, artifacts):
    task, points = benchmark.pedantic(
        alpha_sweep,
        kwargs={"task_id": "T7", "size": 200, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    rows = [p.row() for p in points]
    print_block(render_table(HEADERS, rows, title="α sweep (developer declines) — T7"))
    artifacts.table("sweep_alpha", HEADERS, rows)
    # quality should survive moderate decline rates
    by_alpha = {p.parameter: p for p in points}
    assert by_alpha[0.0].superset_pct <= 105


def test_subset_fraction_sensitivity(benchmark, bench_seed, artifacts):
    task, points = benchmark.pedantic(
        subset_fraction_sweep,
        kwargs={"task_id": "T7", "size": 400, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    rows = [p.row() for p in points]
    print_block(render_table(HEADERS, rows, title="subset fraction sweep — T7"))
    artifacts.table("sweep_subset_fraction", HEADERS, rows)
    sampled = points[0]
    full = points[-1]
    assert full.machine_seconds >= sampled.machine_seconds


def test_k_sensitivity(benchmark, bench_seed, artifacts):
    task, points = benchmark.pedantic(
        k_sweep,
        kwargs={"task_id": "T5", "size": 200, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    rows = [p.row() for p in points]
    print_block(render_table(HEADERS, rows, title="convergence window k sweep — T5"))
    artifacts.table("sweep_k", HEADERS, rows)
    iterations = [p.iterations for p in points]
    assert iterations == sorted(iterations)
