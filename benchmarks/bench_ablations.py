"""Ablations of the design choices DESIGN.md calls out.

* **reuse** (section 5.2): cross-iteration caching of per-rule compact
  tables vs recomputing from scratch;
* **subset evaluation** (section 5.2): iterating over a 5-30 % sample
  vs the full input;
* **token blocking** (the approximate-string-join stand-in): blocked vs
  nested-loop similarity joins;
* **compact tables** (section 3): assignment-level representation vs
  expanding to value-level a-tables.
"""

import pytest

from repro.assistant import RefinementSession, SequentialStrategy, SimulatedDeveloper
from repro.ctables.convert import compact_to_atable
from repro.processor.context import ExecConfig
from repro.processor.executor import IFlexEngine, RuleCache
from repro.experiments import build_task

from conftest import print_block


@pytest.fixture(scope="module")
def task():
    return build_task("T7", size=300, seed=5)


class TestReuseAblation:
    def test_with_reuse(self, benchmark, task):
        refined = task.program.add_constraint("extractBarnes", "price", "bold_font", "yes")

        def run():
            cache = RuleCache()
            IFlexEngine(task.program, task.corpus).execute(cache=cache)
            IFlexEngine(refined, task.corpus).execute(cache=cache)
            return cache

        cache = benchmark.pedantic(run, rounds=3, iterations=1)
        assert cache.incremental_hits >= 1

    def test_without_reuse(self, benchmark, task):
        refined = task.program.add_constraint("extractBarnes", "price", "bold_font", "yes")

        def run():
            IFlexEngine(task.program, task.corpus).execute()
            return IFlexEngine(refined, task.corpus).execute()

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.tuple_count >= 0


class TestSubsetEvaluationAblation:
    def _session(self, task, fraction):
        return RefinementSession(
            task.program,
            task.corpus,
            SimulatedDeveloper(task.truth, seed=5),
            strategy=SequentialStrategy(),
            subset_fraction=fraction,
            seed=5,
        )

    def test_with_subset(self, benchmark, task):
        trace = benchmark.pedantic(
            lambda: self._session(task, None or 0.1).run(), rounds=1, iterations=1
        )
        assert trace.final_result.tuple_count == len(task.correct_rows)

    def test_full_evaluation(self, benchmark, task):
        trace = benchmark.pedantic(
            lambda: self._session(task, 1.0).run(), rounds=1, iterations=1
        )
        assert trace.final_result.tuple_count == len(task.correct_rows)


class TestBlockingAblation:
    """Token blocking pays off once titles are refined to exact spans

    (the state every converged join program reaches): the blocked join
    touches only candidate pairs sharing a token, the nested loop all
    |L| x |R| pairs.
    """

    @pytest.fixture(scope="class")
    def refined_join(self):
        task = build_task("T9", size=500, seed=5)
        program = task.program
        for pred, attr in (("extractAmazonPrice", "t1"), ("extractBarnesPrice", "t2")):
            program = program.add_constraint(pred, attr, "hyperlinked", "distinct_yes")
        for pred, attr in (("extractAmazonPrice", "np"), ("extractBarnesPrice", "bp")):
            program = program.add_constraint(pred, attr, "preceded_by", "$")
        return task, program

    def test_blocked(self, benchmark, refined_join):
        task, program = refined_join
        config = ExecConfig(blocking_joins=True)
        result = benchmark.pedantic(
            lambda: IFlexEngine(program, task.corpus, config=config).execute(),
            rounds=1,
            iterations=1,
        )
        assert result.tuple_count >= len(task.correct_rows)

    def test_nested_loop(self, benchmark, refined_join):
        task, program = refined_join
        config = ExecConfig(blocking_joins=False)
        result = benchmark.pedantic(
            lambda: IFlexEngine(program, task.corpus, config=config).execute(),
            rounds=1,
            iterations=1,
        )
        assert result.tuple_count >= len(task.correct_rows)


class TestAnswerPriorAblation:
    """Data-driven answer priors vs the paper's uniform assumption.

    With the uniform prior the expected-size formula is dominated by
    implausible answers that would annihilate the result, so the
    simulation strategy asks no-op questions and converges prematurely
    on join tasks.
    """

    @pytest.fixture(scope="class")
    def join_task(self):
        return build_task("T3", size=100, seed=0)

    def _run(self, task, prior_samples):
        from repro.assistant import SimulationStrategy
        from repro.experiments import run_iflex

        return run_iflex(
            task,
            strategy=SimulationStrategy(alpha=0.1, prior_samples=prior_samples),
            seed=0,
        )

    def test_data_driven_priors(self, benchmark, join_task):
        run = benchmark.pedantic(
            lambda: self._run(join_task, prior_samples=60), rounds=1, iterations=1
        )
        print_block(
            "data-driven priors: superset %.0f%% in %d questions"
            % (run.superset_pct, run.questions)
        )
        assert run.superset_pct <= 150

    def test_uniform_priors(self, benchmark, join_task):
        run = benchmark.pedantic(
            lambda: self._run(join_task, prior_samples=0), rounds=1, iterations=1
        )
        print_block(
            "uniform priors: superset %.0f%% in %d questions"
            % (run.superset_pct, run.questions)
        )
        # the degenerate behaviour the data-driven estimator fixes
        assert run.superset_pct >= 100


class TestCompactTableAblation:
    """Compact tables vs value-level a-tables (why section 3 matters)."""

    def test_representation_sizes(self, benchmark, task):
        result = IFlexEngine(task.program, task.corpus).execute()
        table = result.tables["barnesBooks"]

        def measure():
            assignments = table.assignment_count()
            values = table.encoded_value_count()
            return assignments, values

        assignments, values = benchmark(measure)
        # the whole point of compact tables: orders of magnitude fewer
        # assignments than encoded values
        assert values > assignments * 20
        print_block(
            "compact table: %d assignments represent %d possible values "
            "(x%d compression)" % (assignments, values, values // max(1, assignments))
        )

    def test_atable_expansion_cost(self, benchmark, task):
        result = IFlexEngine(task.program, task.corpus).execute()
        query = result.query_table

        def expand():
            return compact_to_atable(query, value_limit=2_000_000)

        atable = benchmark.pedantic(expand, rounds=1, iterations=1)
        assert len(atable) >= len(query)
