"""Semi-naive recursion: transitive closure as edge documents.

A chain of N edge pages (``<p>AAA BBB</p>``, fixed-width numbers so
``first_half`` splits source from target) closed under a recursive
``path`` predicate.  The acceptance assertions are deliberately
wall-clock-free so CI can run them at any scale: the iteration count is
*pinned* (a chain of N edges takes exactly N productive iterations plus
the one empty iteration that proves convergence), the closure size is
the exact N(N+1)/2, and the query table is byte-identical across the
serial, thread, and process backends.

Results land in ``benchmarks/results/recursion.json``.
"""

import json
import time
from pathlib import Path

from repro.experiments.report import render_table

from conftest import print_block

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "recursion.json"

BASE_EDGES = 40
WORKERS = 2

HEADERS = ("backend", "seconds", "iterations", "paths", "identical")

TC_SOURCE = """
edge(x, y) :- docs(d), pair(@d, x, y).
pair(@d, x, y) :- from(@d, x), numeric(x) = yes, first_half(x) = yes, from(@d, y), numeric(y) = yes, first_half(y) = no.
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y2, z), y = y2.
"""


def _build(edges):
    from repro.text.corpus import Corpus
    from repro.text.html_parser import parse_html
    from repro.xlog.program import Program

    docs = [
        parse_html("e%04d" % i, "<p>%04d %04d</p>" % (i, i + 1))
        for i in range(1, edges + 1)
    ]
    program = Program.parse(TC_SOURCE, extensional=["docs"], query="path")
    return program, Corpus({"docs": docs})


def _run(program, corpus, backend):
    from repro.ctables import table_key
    from repro.processor import ExecConfig, IFlexEngine

    config = ExecConfig(
        backend=backend, workers=1 if backend == "serial" else WORKERS
    )
    engine = IFlexEngine(program, corpus, config=config, validate=False)
    start = time.perf_counter()
    result = engine.execute()
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 3),
        "iterations": result.stats.fixpoint_iterations,
        "paths": result.query_table.tuple_count(),
        "key": table_key(result.query_table),
    }


def recursion_cycle(scale, seed):
    edges = max(4, int(round(BASE_EDGES * scale)))
    program, corpus = _build(edges)
    points = {
        backend: _run(program, corpus, backend)
        for backend in ("serial", "thread", "process")
    }
    serial_key = points["serial"]["key"]
    for point in points.values():
        point["identical"] = point["key"] == serial_key
    return {"edges": edges, "workers": WORKERS, **points}


def test_recursion(benchmark, bench_scale, bench_seed, artifacts):
    cycle = benchmark.pedantic(
        lambda: recursion_cycle(bench_scale, bench_seed),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            backend,
            "%.3f" % cycle[backend]["seconds"],
            cycle[backend]["iterations"],
            cycle[backend]["paths"],
            "yes" if cycle[backend]["identical"] else "NO",
        )
        for backend in ("serial", "thread", "process")
    ]
    print_block(
        render_table(
            HEADERS,
            rows,
            title="semi-naive transitive closure — %d edges"
            % (cycle["edges"],),
        )
    )
    artifacts.table("recursion", HEADERS, rows)
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(cycle, indent=2) + "\n")

    edges = cycle["edges"]
    for backend in ("serial", "thread", "process"):
        point = cycle[backend]
        # pinned: N productive iterations + the final empty proof
        assert point["iterations"] == edges + 1, (backend, point)
        assert point["paths"] == edges * (edges + 1) // 2, (backend, point)
        assert point["identical"], (backend, point)
