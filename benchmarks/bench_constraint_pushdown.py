"""Index-driven constraint pushdown vs. span-by-span evaluation.

Runs Table 2 tasks with realistic constraint chains (the refinements a
session would push down: ``bold_font`` / ``capitalized`` / length caps)
under four configurations — the naive span-by-span path, the scalar
indexed path (``use_batch=False``), the default vectorized-batch path,
and a warm re-execution on the batch engine — and records verify/refine
call counts, batch-kernel counts, cache hit rates, and wall-clock.
Chained constraints are the interesting case: every refined sub-span
re-verifies all prior constraints, so the naive path re-scans the same
document text once per (hint, prior) pair while the indexed path
answers from per-document column arrays and the ``EvalCache``.

All configurations must be byte-identical (superset semantics is a
correctness contract, the index an accelerator), and the scalar and
batch paths must agree on *every* statistics counter except the two
batch-attribution fields — the determinism contract the vectorized
kernels are held to.  The bench also times the batch kernels in
isolation against the scalar index calls they replace (>= 5x), and the
columnar artifact cache cold (build + persist) vs warm (memory-map).

Results land in ``benchmarks/results/constraint_pushdown.json``.
"""

import json
import tempfile
import time
from pathlib import Path

from repro.experiments.report import render_table

from conftest import print_block

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "constraint_pushdown.json"

#: (task, base size, constraint chain) — chains mirror the refinements
#: the paper's sessions converge to: appearance checks on the title
#: attribute plus a length cap on the numeric attribute
TASKS = (
    (
        "T1",
        200,
        (
            # IMDB titles are exactly the bold anchor text: distinct_yes
            # materialises exact spans that every later constraint must
            # re-verify — the verify-heavy case indexes exist for
            ("extractIMDB", "title", "bold_font", "distinct_yes"),
            ("extractIMDB", "title", "hyperlinked", "yes"),
            ("extractIMDB", "title", "capitalized", "yes"),
            ("extractIMDB", "title", "max_length", 60),
            ("extractIMDB", "votes", "max_length", 30),
        ),
    ),
    (
        "T2",
        200,
        (
            # Ebert titles are the italic text
            ("extractEbert", "title", "italic_font", "distinct_yes"),
            ("extractEbert", "title", "capitalized", "yes"),
            ("extractEbert", "title", "max_length", 60),
            ("extractEbert", "year", "max_length", 12),
        ),
    ),
)

CONFIGS = ("unindexed", "indexed_scalar", "indexed", "indexed_warm")

HEADERS = (
    "task",
    "config",
    "seconds",
    "verify (naive)",
    "verify (index)",
    "verify (batch)",
    "refine (batch)",
    "cache hit rate",
    "identical",
)

#: statistics fields allowed to differ between the scalar and batch
#: paths: they attribute *how* an index answered, not what it answered
BATCH_ONLY_FIELDS = frozenset(("verify_batch", "refine_batch"))

#: isolated kernel comparison: spans per call / timing repetitions
KERNEL_SPANS = 2000
KERNEL_REPS = 10


def _image(result):
    return {
        name: (table.attrs, [repr(t) for t in table.tuples])
        for name, table in result.tables.items()
    }


def _constrained_task(task_id, size, chain, seed):
    from repro.experiments.tasks import build_task

    task = build_task(task_id, size=size, seed=seed)
    program = task.program
    for predicate, attribute, feature, value in chain:
        program = program.add_constraint(predicate, attribute, feature, value)
    return task, program


def _run_once(program, corpus, config):
    from repro.processor import IFlexEngine

    engine = IFlexEngine(program, corpus, config=config, validate=False)
    start = time.perf_counter()
    result = engine.execute()
    return engine, result, time.perf_counter() - start


def _hit_rate(stats):
    hits = stats.verify_cache_hits + stats.refine_cache_hits
    total = hits + stats.verify_cache_misses + stats.refine_cache_misses
    return hits / total if total else 0.0


def _point(stats, seconds, identical):
    return {
        "seconds": round(seconds, 3),
        "verify_calls": stats.verify_calls,
        "index_verify_calls": stats.index_verify_calls,
        "refine_calls": stats.refine_calls,
        "index_refine_calls": stats.index_refine_calls,
        "verify_batch": stats.verify_batch,
        "refine_batch": stats.refine_batch,
        "verify_cache_hits": stats.verify_cache_hits,
        "verify_cache_misses": stats.verify_cache_misses,
        "refine_cache_hits": stats.refine_cache_hits,
        "refine_cache_misses": stats.refine_cache_misses,
        "cache_hit_rate": round(_hit_rate(stats), 3),
        "identical": identical,
    }


def _counters_match(scalar_stats, batch_stats):
    """Scalar/batch stat equality outside the batch-attribution fields."""
    scalar_fields = vars(scalar_stats)
    batch_fields = vars(batch_stats)
    return {
        name: (scalar_fields[name], batch_fields[name])
        for name in scalar_fields
        if name not in BATCH_ONLY_FIELDS
        and scalar_fields[name] != batch_fields[name]
    }


def pushdown_comparison(task_id, size, chain, scale, seed, metrics=None):
    from repro.observability.metrics import record_stats
    from repro.processor import ExecConfig

    size = max(20, int(round(size * scale)))
    task, program = _constrained_task(task_id, size, chain, seed)
    _, naive_result, naive_seconds = _run_once(
        program, task.corpus, ExecConfig(use_index=False, use_eval_cache=False)
    )
    _, scalar_result, scalar_seconds = _run_once(
        program, task.corpus, ExecConfig(use_batch=False)
    )
    engine, batch_result, batch_seconds = _run_once(
        program, task.corpus, ExecConfig()
    )
    # a second execution on the warm engine-level EvalCache — the
    # assistant re-executes candidate programs like this constantly
    start = time.perf_counter()
    warm_result = engine.execute()
    warm_seconds = time.perf_counter() - start
    if metrics is not None:
        record_stats(metrics, naive_result.stats, task=task_id, config="unindexed")
        record_stats(
            metrics, scalar_result.stats, task=task_id, config="indexed_scalar"
        )
        record_stats(metrics, batch_result.stats, task=task_id, config="indexed")
        record_stats(metrics, warm_result.stats, task=task_id, config="indexed_warm")
    reference = _image(naive_result)
    points = {
        "unindexed": _point(naive_result.stats, naive_seconds, True),
        "indexed_scalar": _point(
            scalar_result.stats, scalar_seconds, _image(scalar_result) == reference
        ),
        "indexed": _point(
            batch_result.stats, batch_seconds, _image(batch_result) == reference
        ),
        "indexed_warm": _point(
            warm_result.stats, warm_seconds, _image(warm_result) == reference
        ),
    }
    reduction = (
        points["unindexed"]["verify_calls"] / points["indexed"]["verify_calls"]
        if points["indexed"]["verify_calls"]
        else float("inf")
    )
    return {
        "task": task_id,
        "size": size,
        "chain": ["%s(%s) %s=%r" % (p, a, f, v) for p, a, f, v in chain],
        "counter_drift": _counters_match(scalar_result.stats, batch_result.stats),
        "verify_call_reduction": round(min(reduction, 1e9), 2),
        **points,
    }


def artifact_cycle(task_id, size, scale, seed):
    """Cold build-and-persist vs warm memory-map of the columnar bundle."""
    from repro.experiments.tasks import build_task
    from repro.processor import ExecConfig, IFlexEngine

    size = max(20, int(round(size * scale)))
    task = build_task(task_id, size=size, seed=seed)
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = IFlexEngine(
            task.program,
            task.corpus,
            config=ExecConfig(artifact_cache=cache_dir),
            validate=False,
        )
        cold.execute()
        warm = IFlexEngine(
            task.program,
            task.corpus,
            config=ExecConfig(artifact_cache=cache_dir),
            validate=False,
        )
        warm.execute()
        cold_store, warm_store = cold.index_store.columnar, warm.index_store.columnar
        bundle = warm_store._bundles[0] if warm_store._bundles else None
        return {
            "task": task_id,
            "build_seconds": round(cold_store.build_seconds, 4),
            "load_seconds": round(warm_store.load_seconds, 4),
            "bundle_bytes": int(bundle.nbytes) if bundle is not None else 0,
            "warm_built_docs": warm_store.built,
            "warm_mapped": bool(bundle is not None and bundle.mapped),
        }


def kernel_microbench():
    """The batch kernels against the scalar index calls they replace.

    A synthetic document large enough that per-call Python dispatch
    dominates the scalar loop; both paths answer from the *same* index,
    so the ratio isolates vectorization, not indexing.
    """
    import numpy as np

    from repro.features.index import IndexStore
    from repro.features.registry import default_registry
    from repro.text import parse_html
    from repro.text.span import Span

    words = [
        "Word%d" % i if i % 2 else "lower%d" % i for i in range(2 * KERNEL_SPANS)
    ]
    doc = parse_html("kernel-doc", "<p>%s</p>" % " ".join(words))
    store = IndexStore()
    registry = default_registry()
    out = []
    for feature_name, value in (("capitalized", "yes"), ("max_length", 12)):
        index = store.index_for(registry.get(feature_name), doc)
        spans = [Span(doc, t.start, t.end) for t in doc.tokens[:KERNEL_SPANS]]
        starts = np.fromiter((s.start for s in spans), dtype=np.int64)
        ends = np.fromiter((s.end for s in spans), dtype=np.int64)
        start = time.perf_counter()
        for _ in range(KERNEL_REPS):
            batch = index.verify_batch(starts, ends, value)
        batch_seconds = (time.perf_counter() - start) / KERNEL_REPS
        start = time.perf_counter()
        for _ in range(KERNEL_REPS):
            scalar = [index.verify(span, value) for span in spans]
        scalar_seconds = (time.perf_counter() - start) / KERNEL_REPS
        assert [bool(b) for b in batch] == [bool(s) for s in scalar]
        out.append(
            {
                "feature": feature_name,
                "spans": KERNEL_SPANS,
                "scalar_seconds": round(scalar_seconds, 6),
                "batch_seconds": round(batch_seconds, 6),
                "speedup": round(scalar_seconds / batch_seconds, 1),
            }
        )
    return out


def test_constraint_pushdown(benchmark, bench_scale, bench_seed, artifacts):
    from repro.observability.metrics import MetricsRegistry

    registry = MetricsRegistry()

    def body():
        comparisons = [
            pushdown_comparison(
                task_id, size, chain, bench_scale, bench_seed, metrics=registry
            )
            for task_id, size, chain in TASKS
        ]
        cycles = [
            artifact_cycle(task_id, size, bench_scale, bench_seed)
            for task_id, size, _ in TASKS
        ]
        return comparisons, cycles, kernel_microbench()

    comparisons, cycles, kernels = benchmark.pedantic(body, rounds=1, iterations=1)
    rows = []
    for comparison in comparisons:
        for config in CONFIGS:
            point = comparison[config]
            rows.append(
                (
                    comparison["task"],
                    config,
                    "%.3f" % point["seconds"],
                    point["verify_calls"],
                    point["index_verify_calls"],
                    point["verify_batch"],
                    point["refine_batch"],
                    "%.1f%%" % (100.0 * point["cache_hit_rate"]),
                    "yes" if point["identical"] else "NO",
                )
            )
    print_block(
        render_table(HEADERS, rows, title="constraint pushdown — indexed vs unindexed")
    )
    print_block(
        render_table(
            ("feature", "spans", "scalar s", "batch s", "speedup"),
            [
                (k["feature"], k["spans"], "%.6f" % k["scalar_seconds"],
                 "%.6f" % k["batch_seconds"], "%.1fx" % k["speedup"])
                for k in kernels
            ],
            title="batch kernels vs scalar index calls (same index)",
        )
    )
    artifacts.table("constraint_pushdown", HEADERS, rows)
    artifacts.metrics("constraint_pushdown", registry)

    total_naive = sum(c["unindexed"]["verify_calls"] for c in comparisons)
    total_indexed = sum(c["indexed"]["verify_calls"] for c in comparisons)
    aggregate = total_naive / total_indexed if total_indexed else float("inf")
    payload = {
        "tasks": comparisons,
        "artifact_cache": cycles,
        "kernels": kernels,
        "aggregate": {
            "unindexed_verify_calls": total_naive,
            "indexed_verify_calls": total_indexed,
            "verify_call_reduction": round(min(aggregate, 1e9), 2),
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # superset semantics: index and kernels are accelerators, never a change
    for config in CONFIGS:
        assert all(c[config]["identical"] for c in comparisons), config
    # the scalar and batch paths agree on every non-batch counter
    assert all(not c["counter_drift"] for c in comparisons), [
        c["counter_drift"] for c in comparisons
    ]
    # batch kernels actually carry the constraint work on these chains:
    # every span answers from a vectorized kernel, none from the naive
    # feature fallback
    assert all(c["indexed"]["verify_batch"] > 0 for c in comparisons)
    assert all(c["indexed"]["refine_batch"] > 0 for c in comparisons)
    assert all(c["indexed"]["verify_calls"] == 0 for c in comparisons)
    # acceptance: indexes cut naive verify work at least in half
    assert aggregate >= 2.0, aggregate
    assert all(c["indexed"]["index_refine_calls"] > 0 for c in comparisons)
    # the warm engine answers every repeated evaluation from the cache
    assert all(c["indexed_warm"]["cache_hit_rate"] == 1.0 for c in comparisons)
    # acceptance: vectorized kernels beat the scalar calls they replace
    # by >= 5x in isolation (end-to-end wall-clock is dispatch-bound;
    # the JSON records both so the attribution is auditable)
    assert all(k["speedup"] >= 5.0 for k in kernels), kernels
    # a warm artifact cache maps the bundle instead of rebuilding it
    assert all(c["warm_mapped"] and c["warm_built_docs"] == 0 for c in cycles), cycles
