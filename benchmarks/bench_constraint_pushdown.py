"""Index-driven constraint pushdown vs. span-by-span evaluation.

Runs Table 2 tasks with realistic constraint chains (the refinements a
session would push down: ``bold_font`` / ``capitalized`` / length caps)
under two configurations — the naive span-by-span path and the default
indexed + memoized path — and records verify/refine call counts, cache
hit rates, and wall-clock.  Chained constraints are the interesting
case: every refined sub-span re-verifies all prior constraints, so the
naive path re-scans the same document text once per (hint, prior) pair
while the indexed path answers from per-document arrays and the
``EvalCache``.

Both runs must be byte-identical (superset semantics is a correctness
contract, the index an accelerator); the headline acceptance number is
the reduction in *naive* feature ``verify`` calls, which must be >= 2x
in aggregate.

Results land in ``benchmarks/results/constraint_pushdown.json``.
"""

import json
import time
from pathlib import Path

from repro.experiments.report import render_table

from conftest import print_block

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "constraint_pushdown.json"

#: (task, base size, constraint chain) — chains mirror the refinements
#: the paper's sessions converge to: appearance checks on the title
#: attribute plus a length cap on the numeric attribute
TASKS = (
    (
        "T1",
        200,
        (
            # IMDB titles are exactly the bold anchor text: distinct_yes
            # materialises exact spans that every later constraint must
            # re-verify — the verify-heavy case indexes exist for
            ("extractIMDB", "title", "bold_font", "distinct_yes"),
            ("extractIMDB", "title", "hyperlinked", "yes"),
            ("extractIMDB", "title", "capitalized", "yes"),
            ("extractIMDB", "title", "max_length", 60),
            ("extractIMDB", "votes", "max_length", 30),
        ),
    ),
    (
        "T2",
        200,
        (
            # Ebert titles are the italic text
            ("extractEbert", "title", "italic_font", "distinct_yes"),
            ("extractEbert", "title", "capitalized", "yes"),
            ("extractEbert", "title", "max_length", 60),
            ("extractEbert", "year", "max_length", 12),
        ),
    ),
)

HEADERS = (
    "task",
    "config",
    "seconds",
    "verify (naive)",
    "verify (index)",
    "refine (naive)",
    "refine (index)",
    "cache hit rate",
    "identical",
)


def _image(result):
    return {
        name: (table.attrs, [repr(t) for t in table.tuples])
        for name, table in result.tables.items()
    }


def _constrained_task(task_id, size, chain, seed):
    from repro.experiments.tasks import build_task

    task = build_task(task_id, size=size, seed=seed)
    program = task.program
    for predicate, attribute, feature, value in chain:
        program = program.add_constraint(predicate, attribute, feature, value)
    return task, program


def _run_once(program, corpus, config):
    from repro.processor import IFlexEngine

    engine = IFlexEngine(program, corpus, config=config, validate=False)
    start = time.perf_counter()
    result = engine.execute()
    return engine, result, time.perf_counter() - start


def _hit_rate(stats):
    hits = stats.verify_cache_hits + stats.refine_cache_hits
    total = hits + stats.verify_cache_misses + stats.refine_cache_misses
    return hits / total if total else 0.0


def _point(stats, seconds, identical):
    return {
        "seconds": round(seconds, 3),
        "verify_calls": stats.verify_calls,
        "index_verify_calls": stats.index_verify_calls,
        "refine_calls": stats.refine_calls,
        "index_refine_calls": stats.index_refine_calls,
        "verify_cache_hits": stats.verify_cache_hits,
        "verify_cache_misses": stats.verify_cache_misses,
        "refine_cache_hits": stats.refine_cache_hits,
        "refine_cache_misses": stats.refine_cache_misses,
        "cache_hit_rate": round(_hit_rate(stats), 3),
        "identical": identical,
    }


def pushdown_comparison(task_id, size, chain, scale, seed, metrics=None):
    from repro.observability.metrics import record_stats
    from repro.processor import ExecConfig

    size = max(20, int(round(size * scale)))
    task, program = _constrained_task(task_id, size, chain, seed)
    _, naive_result, naive_seconds = _run_once(
        program, task.corpus, ExecConfig(use_index=False, use_eval_cache=False)
    )
    engine, indexed_result, indexed_seconds = _run_once(
        program, task.corpus, ExecConfig()
    )
    # a second execution on the warm engine-level EvalCache — the
    # assistant re-executes candidate programs like this constantly
    start = time.perf_counter()
    warm_result = engine.execute()
    warm_seconds = time.perf_counter() - start
    if metrics is not None:
        record_stats(metrics, naive_result.stats, task=task_id, config="unindexed")
        record_stats(metrics, indexed_result.stats, task=task_id, config="indexed")
        record_stats(metrics, warm_result.stats, task=task_id, config="indexed_warm")
    identical = _image(indexed_result) == _image(naive_result)
    naive = _point(naive_result.stats, naive_seconds, True)
    indexed = _point(indexed_result.stats, indexed_seconds, identical)
    warm = _point(
        warm_result.stats,
        warm_seconds,
        _image(warm_result) == _image(naive_result),
    )
    reduction = (
        naive["verify_calls"] / indexed["verify_calls"]
        if indexed["verify_calls"]
        else float("inf")
    )
    return {
        "task": task_id,
        "size": size,
        "chain": ["%s(%s) %s=%r" % (p, a, f, v) for p, a, f, v in chain],
        "unindexed": naive,
        "indexed": indexed,
        "indexed_warm": warm,
        "verify_call_reduction": round(min(reduction, 1e9), 2),
    }


def test_constraint_pushdown(benchmark, bench_scale, bench_seed, artifacts):
    from repro.observability.metrics import MetricsRegistry

    registry = MetricsRegistry()
    comparisons = benchmark.pedantic(
        lambda: [
            pushdown_comparison(
                task_id, size, chain, bench_scale, bench_seed, metrics=registry
            )
            for task_id, size, chain in TASKS
        ],
        rounds=1,
        iterations=1,
    )
    rows = []
    for comparison in comparisons:
        for config in ("unindexed", "indexed", "indexed_warm"):
            point = comparison[config]
            rows.append(
                (
                    comparison["task"],
                    config,
                    "%.3f" % point["seconds"],
                    point["verify_calls"],
                    point["index_verify_calls"],
                    point["refine_calls"],
                    point["index_refine_calls"],
                    "%.1f%%" % (100.0 * point["cache_hit_rate"]),
                    "yes" if point["identical"] else "NO",
                )
            )
    print_block(
        render_table(HEADERS, rows, title="constraint pushdown — indexed vs unindexed")
    )
    artifacts.table("constraint_pushdown", HEADERS, rows)
    artifacts.metrics("constraint_pushdown", registry)

    total_naive = sum(c["unindexed"]["verify_calls"] for c in comparisons)
    total_indexed = sum(c["indexed"]["verify_calls"] for c in comparisons)
    aggregate = total_naive / total_indexed if total_indexed else float("inf")
    payload = {
        "tasks": comparisons,
        "aggregate": {
            "unindexed_verify_calls": total_naive,
            "indexed_verify_calls": total_indexed,
            "verify_call_reduction": round(min(aggregate, 1e9), 2),
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # superset semantics: the index is an accelerator, never a change
    assert all(c["indexed"]["identical"] for c in comparisons)
    assert all(c["indexed_warm"]["identical"] for c in comparisons)
    # acceptance: indexes cut naive verify work at least in half
    assert aggregate >= 2.0, aggregate
    assert all(c["indexed"]["index_refine_calls"] > 0 for c in comparisons)
    # the warm engine answers every repeated evaluation from the cache
    assert all(c["indexed_warm"]["cache_hit_rate"] == 1.0 for c in comparisons)
