"""Incremental delta execution: cold vs warm vs one-document edit.

Runs T1 three ways against one persistent result cache — a cold run
that populates it, a warm byte-identical re-run on a fresh engine
(cross-run semantics: nothing in memory, only the store), and a
one-document edit — and records wall-clock plus the delta counters.
The interesting assertions are deliberately wall-clock-free so CI can
run them at any scale: the cold run recomputes every partition, the
warm run recomputes **zero** (100% store hits), and the edit recomputes
**exactly one** partition while the folded result stays byte-identical
to a cold run over the edited corpus.

Results land in ``benchmarks/results/incremental.json``.
"""

import json
import tempfile
import time
from pathlib import Path

from repro.experiments.report import render_table

from conftest import print_block

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "incremental.json"

TASK_ID = "T1"
BASE_SIZE = 200
WORKERS = 4

HEADERS = (
    "phase",
    "seconds",
    "recomputed",
    "reused",
    "store hits",
    "store misses",
    "identical",
)


def _image(result):
    return {
        name: (table.attrs, [repr(t) for t in table.tuples])
        for name, table in result.tables.items()
    }


def _edit_one_document(corpus):
    """The edited corpus plus the id of the one rewritten document.

    Appending to the text keeps every markup region valid while moving
    the document's content digest — the minimal "someone fixed a typo
    on one page" delta.
    """
    from repro.text.corpus import Corpus
    from repro.text.document import Document

    tables = {}
    edited_id = None
    for name in corpus.table_names():
        docs = list(corpus.table(name))
        if edited_id is None and docs:
            doc = docs[0]
            docs[0] = Document(
                doc.doc_id,
                doc.text + " (second revision)",
                regions=doc.regions,
                labels=doc.labels,
                meta=doc.meta,
            )
            edited_id = doc.doc_id
        tables[name] = docs
    return Corpus(tables), edited_id


def _run(program, corpus, cache_dir):
    from repro.processor import ExecConfig, IFlexEngine

    config = ExecConfig(
        workers=WORKERS, backend="serial", result_cache=cache_dir
    )
    engine = IFlexEngine(program, corpus, config=config, validate=False)
    start = time.perf_counter()
    result = engine.execute()
    return result, time.perf_counter() - start


def _point(stats, seconds, identical):
    return {
        "seconds": round(seconds, 3),
        "partitions_recomputed": stats.partitions_recomputed,
        "partitions_reused": stats.partitions_reused,
        "result_cache_hits": stats.result_cache_hits,
        "result_cache_misses": stats.result_cache_misses,
        "identical": identical,
    }


def incremental_cycle(scale, seed, metrics=None):
    from repro.experiments.tasks import build_task
    from repro.observability.metrics import record_stats

    size = max(20, int(round(BASE_SIZE * scale)))
    task = build_task(TASK_ID, size=size, seed=seed)
    partitions = len(task.corpus.partition(WORKERS))
    edited_corpus, edited_id = _edit_one_document(task.corpus)
    with tempfile.TemporaryDirectory() as cache_dir, \
            tempfile.TemporaryDirectory() as reference_dir:
        cold, cold_seconds = _run(task.program, task.corpus, cache_dir)
        warm, warm_seconds = _run(task.program, task.corpus, cache_dir)
        delta, delta_seconds = _run(task.program, edited_corpus, cache_dir)
        # the correctness reference: a cold run over the edited corpus
        # against its own empty cache
        reference, reference_seconds = _run(
            task.program, edited_corpus, reference_dir
        )
    if metrics is not None:
        for phase, result in (
            ("cold", cold), ("warm", warm), ("delta", delta)
        ):
            record_stats(metrics, result.stats, task=TASK_ID, phase=phase)
    cold_image = _image(cold)
    points = {
        "cold": _point(cold.stats, cold_seconds, True),
        "warm": _point(warm.stats, warm_seconds, _image(warm) == cold_image),
        "delta": _point(
            delta.stats, delta_seconds, _image(delta) == _image(reference)
        ),
        "reference": _point(reference.stats, reference_seconds, True),
    }
    return {
        "task": TASK_ID,
        "size": size,
        "workers": WORKERS,
        "partitions": partitions,
        "edited_doc": edited_id,
        "warm_speedup": round(
            cold_seconds / warm_seconds if warm_seconds else float("inf"), 2
        ),
        **points,
    }


def test_incremental(benchmark, bench_scale, bench_seed, artifacts):
    from repro.observability.metrics import MetricsRegistry

    registry = MetricsRegistry()
    cycle = benchmark.pedantic(
        lambda: incremental_cycle(bench_scale, bench_seed, metrics=registry),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            phase,
            "%.3f" % point["seconds"],
            point["partitions_recomputed"],
            point["partitions_reused"],
            point["result_cache_hits"],
            point["result_cache_misses"],
            "yes" if point["identical"] else "NO",
        )
        for phase, point in (
            (p, cycle[p]) for p in ("cold", "warm", "delta", "reference")
        )
    ]
    print_block(
        render_table(
            HEADERS,
            rows,
            title="incremental delta execution — %s, %d docs, %d partitions"
            % (cycle["task"], cycle["size"], cycle["partitions"]),
        )
    )
    artifacts.table("incremental", HEADERS, rows)
    artifacts.metrics("incremental", registry)
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(cycle, indent=2) + "\n")

    parts = cycle["partitions"]
    # cold populates: every partition executes, nothing to reuse
    assert cycle["cold"]["partitions_recomputed"] == parts, cycle["cold"]
    assert cycle["cold"]["partitions_reused"] == 0, cycle["cold"]
    # warm identical re-run: zero recompute, 100% reuse, same bytes
    assert cycle["warm"]["partitions_recomputed"] == 0, cycle["warm"]
    assert cycle["warm"]["partitions_reused"] == parts, cycle["warm"]
    assert cycle["warm"]["result_cache_misses"] == 0, cycle["warm"]
    assert cycle["warm"]["identical"], cycle["warm"]
    # one-document edit: exactly one partition re-executes, and the
    # folded result is byte-identical to the cold reference run
    assert cycle["delta"]["partitions_recomputed"] == 1, cycle["delta"]
    assert cycle["delta"]["partitions_reused"] == parts - 1, cycle["delta"]
    assert cycle["delta"]["identical"], cycle["delta"]
