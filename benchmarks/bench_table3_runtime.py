"""Table 3: Manual vs Xlog vs iFlex over the 27 scenarios.

Paper shape to reproduce: Manual grows linearly and DNFs on large
inputs; Xlog is flat (~30-60 modelled minutes of Perl, independent of
size); iFlex is far cheaper and grows slowly with iterations (25-98 %
below Xlog in every scenario).

Also regenerates the section 6.2 convergence statistic ("23 of 27
scenarios converged to 100 %").
"""

from repro.experiments import convergence_stat, render_table, table3

from conftest import print_block


def test_table3_and_convergence(benchmark, bench_scale, bench_seed, artifacts):
    headers, rows, extras = benchmark.pedantic(
        table3,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print_block(
        render_table(
            headers, rows,
            title="Table 3 — run time (minutes) over 27 scenarios "
            "[scale=%.2f]" % bench_scale,
        )
    )
    artifacts.table("table3_runtime", headers, rows, meta={"scale": bench_scale, "seed": bench_seed})
    stat = convergence_stat(extras)
    print_block(
        "Section 6.2 convergence statistic: %d / %d scenarios converged to "
        "100%%; others: %s"
        % (
            stat["exact"],
            stat["scenarios"],
            ", ".join("%d%%" % s for s in stat["non_exact_supersets"]) or "none",
        )
    )
    artifacts.json("convergence_stat", stat)
    assert len(rows) == 27

    # shape assertions, not absolute numbers:
    runs = extras["runs"]
    # (a) iFlex beats the Xlog method in every scenario
    from repro.baselines.xlog_method import run_xlog_baseline

    for task, run in runs:
        xlog = run_xlog_baseline(task)
        assert run.minutes < xlog.minutes, (task.task_id, run.minutes, xlog.minutes)
    # (b) a majority of scenarios converge to the exact result size
    assert stat["exact"] >= stat["scenarios"] * 0.6
    # (c) Manual DNFs somewhere once sizes are real
    if bench_scale >= 0.2:
        assert any(row[2] == "—" for row in rows)
