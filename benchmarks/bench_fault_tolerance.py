"""Fault-tolerance overhead: quarantine-and-rerun vs a clean run.

The ``skip`` policy contains a poisoned document by excluding it and
re-running the whole execution over the reduced corpus (k poisoned
documents → k+1 attempts).  The warm engine-level ``EvalCache`` is what
keeps that affordable: every re-run answers Verify/Refine for the
surviving documents from cache.  This bench measures the realised
overhead — a clean run, a k-poisoned ``skip`` run, and a transient
``retry`` run — and checks the byte-identity contract along the way.

Results land in ``benchmarks/results/fault_tolerance.json``.
"""

import json
import time
from pathlib import Path

from repro.experiments.report import render_table

from conftest import print_block

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "fault_tolerance.json"

BASE_SIZE = 120
POISONED_COUNT = 3

HEADERS = ("run", "seconds", "skipped", "retries", "tuples", "identical")


def _build_corpus(n):
    from repro.text.corpus import Corpus
    from repro.text.html_parser import parse_html

    docs = [
        parse_html(
            "d%d" % i, "<p>Listing %d Price: <b>$%d.00</b></p>" % (i, 100 + 7 * i)
        )
        for i in range(n)
    ]
    return Corpus({"pages": docs})


def _faulting_predicate(poisoned, trip_dir=None, fail_times=None):
    """A cleanup p-predicate that raises on poisoned documents.

    With ``fail_times`` / ``trip_dir`` the fault is transient, counting
    its trips in files (the process backend's forked children share no
    memory with the parent, so an in-memory counter would never trip).
    """
    from repro.xlog.program import PPredicate

    def func(span):
        doc_id = span.doc.doc_id
        if doc_id in poisoned:
            if fail_times is None:
                raise RuntimeError("injected fault on %s" % doc_id)
            path = trip_dir / ("%s.trips" % doc_id)
            count = len(path.read_text().splitlines()) if path.exists() else 0
            if count < fail_times:
                with path.open("a") as fh:
                    fh.write("trip\n")
                raise RuntimeError("injected fault on %s" % doc_id)
        return [(span.text.strip(),)]

    return PPredicate("clean", func, 1, 1)


PROGRAM_SOURCE = """
q(x, <p>, c) :- pages(x), ie(@x, p), clean(@p, c).
ie(@x, p) :- from(@x, p), numeric(p) = yes.
"""


def _build_program(poisoned, **fault_kwargs):
    from repro.xlog.program import Program

    return Program.parse(
        PROGRAM_SOURCE,
        extensional=["pages"],
        p_predicates={"clean": _faulting_predicate(poisoned, **fault_kwargs)},
        query="q",
    )


def _image(result):
    return {
        name: (table.attrs, [repr(t) for t in table.tuples])
        for name, table in result.tables.items()
    }


def _run(program, corpus, **config_kwargs):
    from repro.processor import ExecConfig, IFlexEngine

    engine = IFlexEngine(
        program, corpus, config=ExecConfig(**config_kwargs), validate=False
    )
    start = time.perf_counter()
    result = engine.execute()
    return result, time.perf_counter() - start


def fault_tolerance_comparison(scale, tmp_path):
    size = max(20, int(round(BASE_SIZE * scale)))
    poisoned = frozenset("d%d" % i for i in range(0, POISONED_COUNT * 7, 7))
    corpus = _build_corpus(size)

    clean_result, clean_seconds = _run(_build_program(frozenset()), corpus)
    reference_result, _ = _run(
        _build_program(poisoned), corpus.without(poisoned)
    )
    skip_result, skip_seconds = _run(
        _build_program(poisoned), corpus, on_error="skip"
    )
    retry_result, retry_seconds = _run(
        _build_program(poisoned, trip_dir=tmp_path, fail_times=1),
        corpus,
        on_error="retry",
        max_retries=2,
        retry_backoff=0.0,
    )
    return {
        "corpus_size": size,
        "poisoned": sorted(poisoned),
        "clean": {
            "seconds": round(clean_seconds, 3),
            "tuples": clean_result.tuple_count,
        },
        "skip": {
            "seconds": round(skip_seconds, 3),
            "tuples": skip_result.tuple_count,
            "skipped": len(skip_result.report.records),
            "attempts": len(skip_result.report.records) + 1,
            "identical_to_clean_minus_poisoned": (
                _image(skip_result) == _image(reference_result)
            ),
            "overhead_vs_clean": round(skip_seconds / clean_seconds, 2)
            if clean_seconds
            else None,
        },
        "retry": {
            "seconds": round(retry_seconds, 3),
            "tuples": retry_result.tuple_count,
            "retries": retry_result.report.retries,
            "skipped": len(retry_result.report.records),
            "identical_to_clean": (
                _image(retry_result) == _image(clean_result)
            ),
        },
    }


def test_fault_tolerance(benchmark, bench_scale, bench_seed, artifacts, tmp_path):
    payload = benchmark.pedantic(
        lambda: fault_tolerance_comparison(bench_scale, tmp_path),
        rounds=1,
        iterations=1,
    )
    rows = (
        (
            "clean (fail-fast)",
            "%.3f" % payload["clean"]["seconds"],
            0,
            0,
            payload["clean"]["tuples"],
            "-",
        ),
        (
            "skip, k=%d" % len(payload["poisoned"]),
            "%.3f" % payload["skip"]["seconds"],
            payload["skip"]["skipped"],
            0,
            payload["skip"]["tuples"],
            "yes" if payload["skip"]["identical_to_clean_minus_poisoned"] else "NO",
        ),
        (
            "retry (transient)",
            "%.3f" % payload["retry"]["seconds"],
            payload["retry"]["skipped"],
            payload["retry"]["retries"],
            payload["retry"]["tuples"],
            "yes" if payload["retry"]["identical_to_clean"] else "NO",
        ),
    )
    print_block(
        render_table(
            HEADERS, rows, title="fault tolerance — quarantine/retry overhead"
        )
    )
    artifacts.table("fault_tolerance", HEADERS, rows)
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # the tentpole contract: skip == clean run minus the poisoned docs
    assert payload["skip"]["identical_to_clean_minus_poisoned"]
    assert payload["skip"]["skipped"] == len(payload["poisoned"])
    # a transient fault recovers with the full corpus intact
    assert payload["retry"]["identical_to_clean"]
    assert payload["retry"]["skipped"] == 0
    assert payload["retry"]["retries"] == len(payload["poisoned"])
