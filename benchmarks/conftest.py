"""Benchmark harness configuration.

Every table/figure of the paper's evaluation has one bench module here.
The experiment benches run the actual experiment once (inside the
``benchmark`` fixture so ``pytest benchmarks/ --benchmark-only`` times
them) and print the regenerated table — compare against the paper's
(EXPERIMENTS.md holds the recorded comparison).

``REPRO_SCALE`` (default 0.25 for the benches) scales the per-table
tuple counts; run with ``REPRO_SCALE=1.0`` to reproduce at the paper's
full sizes (slower).
"""

import os

import pytest

#: benches default to quarter scale so the whole suite stays laptop-fast
DEFAULT_BENCH_SCALE = 0.25


@pytest.fixture(scope="session")
def bench_scale():
    raw = os.environ.get("REPRO_SCALE", "")
    return float(raw) if raw else DEFAULT_BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed():
    return int(os.environ.get("REPRO_SEED", "0"))


@pytest.fixture(scope="session")
def artifacts():
    """Session-wide artifact writer (``REPRO_ARTIFACTS``, default

    ``results/``): every regenerated table is also written to disk."""
    from repro.experiments.artifacts import ArtifactWriter

    writer = ArtifactWriter(os.environ.get("REPRO_ARTIFACTS", "results"))
    yield writer
    writer.finish()


#: regenerated tables collected during the run, emitted after the
#: benchmark summary (pytest captures per-test stdout, so printing
#: directly would hide them from ``pytest benchmarks/`` output; they
#: are also persisted under ``results/`` by the artifacts fixture)
_BLOCKS = []


def print_block(text):
    print()
    print(text)
    _BLOCKS.append(text)


def pytest_terminal_summary(terminalreporter):
    if not _BLOCKS:
        return
    terminalreporter.section("regenerated tables")
    for block in _BLOCKS:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
