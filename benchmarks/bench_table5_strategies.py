"""Table 5: Sequential vs Simulation question selection.

Paper shape: Sequential is always faster (no simulation cost), but on
some tasks converges to far larger supersets; Simulation pays more
time and lands on (or much nearer) the exact result — "well worth the
additional cost".
"""

from repro.experiments import render_table, table5

from conftest import print_block


def test_table5_strategies(benchmark, bench_scale, bench_seed, artifacts):
    headers, rows, extras = benchmark.pedantic(
        table5,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print_block(
        render_table(
            headers, rows,
            title="Table 5 — question selection schemes [scale=%.2f]" % bench_scale,
        )
    )
    artifacts.table("table5_strategies", headers, rows, meta={"scale": bench_scale, "seed": bench_seed})
    assert len(rows) == 18

    by_task = {}
    for task, label, run in extras["runs"]:
        by_task.setdefault(task.task_id, {})[label] = run

    # (a) Seq is cheaper in machine time in the vast majority of tasks
    seq_faster = sum(
        1
        for runs in by_task.values()
        if runs["Seq"].trace.machine_seconds <= runs["Sim"].trace.machine_seconds
    )
    assert seq_faster >= 7

    # (b) Sim's superset is never (meaningfully) worse than Seq's, and
    # strictly better somewhere — the paper's 433x case
    sim_better_somewhere = False
    for task_id, runs in by_task.items():
        assert runs["Sim"].superset_pct <= runs["Seq"].superset_pct * 1.5 + 100
        if runs["Sim"].superset_pct < runs["Seq"].superset_pct:
            sim_better_somewhere = True
    assert sim_better_somewhere
