"""Table 1: domain / table inventory (and corpus generation speed)."""

from repro.experiments import render_table, table1
from repro.datagen.movies import generate_movies

from conftest import print_block


def test_table1_domains(benchmark, artifacts):
    headers, rows, _ = benchmark.pedantic(table1, rounds=1, iterations=1)
    print_block(render_table(headers, rows, title="Table 1 — experiment domains"))
    artifacts.table("table1_domains", headers, rows)
    assert len(rows) == 9


def test_corpus_generation_speed(benchmark):
    """Generation throughput for a mid-size movies corpus."""

    def generate():
        return generate_movies({"IMDB": 100, "Ebert": 100, "Prasanna": 100}, seed=1)

    tables = benchmark(generate)
    assert sum(len(v) for v in tables.values()) == 300
