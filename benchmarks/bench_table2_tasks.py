"""Table 2: the nine IE tasks and their initial programs."""

from repro.experiments import render_table, table2

from conftest import print_block


def test_table2_tasks(benchmark, artifacts):
    headers, rows, _ = benchmark.pedantic(table2, rounds=1, iterations=1)
    print_block(render_table(headers, rows, title="Table 2 — IE tasks"))
    artifacts.table("table2_tasks", headers, rows)
    assert [row[0] for row in rows] == [
        "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9",
    ]
