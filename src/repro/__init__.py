"""iFlex — best-effort information extraction.

Reproduction of Shen, DeRose, McCann, Doan, Ramakrishnan,
*Toward Best-Effort Information Extraction*, SIGMOD 2008.

Quickstart::

    from repro import Corpus, Program, IFlexEngine, parse_html

    corpus = Corpus({"housePages": [parse_html("x1", html)]})
    program = Program.parse(source, extensional=["housePages"], query="Q")
    result = IFlexEngine(program, corpus).execute()
    print(result.query_table.pretty())

See README.md for the full tour and DESIGN.md for the system map.
"""

__version__ = "1.0.0"

from repro.analysis import (
    AnalysisResult,
    Diagnostic,
    analyze_program,
    analyze_rules,
    analyze_source,
)
from repro.assistant import (
    ConvergenceMonitor,
    GroundTruth,
    RefinementSession,
    SequentialStrategy,
    SimulatedDeveloper,
    SimulationStrategy,
)
from repro.errors import (
    EnumerationLimitError,
    EvaluationError,
    ParseError,
    ProgramLintError,
    ReproError,
    SafetyError,
    UnknownFeatureError,
    UnknownPredicateError,
)
from repro.features import FeatureRegistry, default_registry
from repro.processor import ExecConfig, IFlexEngine, RuleCache, make_similar
from repro.text import Corpus, Document, Span, doc_span, parse_html
from repro.xlog import PFunction, PPredicate, Program, XlogEngine, parse_rules

__all__ = [
    "AnalysisResult",
    "ConvergenceMonitor",
    "Corpus",
    "Diagnostic",
    "Document",
    "EnumerationLimitError",
    "EvaluationError",
    "ExecConfig",
    "FeatureRegistry",
    "GroundTruth",
    "IFlexEngine",
    "PFunction",
    "PPredicate",
    "ParseError",
    "Program",
    "ProgramLintError",
    "RefinementSession",
    "ReproError",
    "RuleCache",
    "SafetyError",
    "SequentialStrategy",
    "SimulatedDeveloper",
    "SimulationStrategy",
    "Span",
    "UnknownFeatureError",
    "UnknownPredicateError",
    "XlogEngine",
    "__version__",
    "analyze_program",
    "analyze_rules",
    "analyze_source",
    "default_registry",
    "doc_span",
    "make_similar",
    "parse_html",
    "parse_rules",
]
