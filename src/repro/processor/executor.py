"""The approximate program executor ("stitching" + reuse, §4 and §5.2).

:class:`IFlexEngine` evaluates an Alog program over a corpus: it
unfolds description rules, compiles one plan per intensional predicate,
executes them bottom-up over compact tables, and returns the query
predicate's table.

Cross-iteration **reuse** (section 5.2) is keyed on a per-predicate
fingerprint.  When a refinement only *adds* domain constraints to a
predicate's rules — the common case during assistant-driven iteration —
the new constraints are applied directly to the cached table (domain
constraints commute, section 4.2) instead of re-extracting from
scratch; anything downstream re-executes against the updated table.
"""

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.alog.unfold import unfold_program
from repro.errors import (
    EvaluationError,
    ExecutionFailure,
    ExecutionReport,
    PartitionTimeout,
    ProgramLintError,
    SafetyError,
    UnknownFeatureError,
    UnknownPredicateError,
)
from repro.features.index import IndexStore
from repro.observability.logs import get_logger
from repro.processor.context import ERROR_POLICIES, EvalCache, ExecConfig, ExecutionContext
from repro.processor.operators import apply_constraint_to_table
from repro.processor.plan import compile_predicate
from repro.xlog.ast import ConstraintAtom, PredicateAtom, Rule

__all__ = ["IFlexEngine", "ExecutionResult", "RuleCache", "evaluation_order"]

logger = get_logger("processor")

#: diagnostic code -> the exception type API callers historically caught
_LEGACY_ERROR_TYPES = {
    "ALOG001": SafetyError,
    "ALOG002": UnknownPredicateError,
    "ALOG014": UnknownPredicateError,
    "ALOG003": UnknownFeatureError,
    "ALOG016": EvaluationError,
}


def _recursion_error(message, rule=None, node=None):
    """An :class:`EvaluationError` carrying an ``ALOG016`` diagnostic.

    The rendered message includes the offending rule's source span (when
    the parser provided one) and the diagnostic itself rides on the
    exception's ``diagnostic`` attribute for tooling.
    """
    from repro.analysis.diagnostics import CODES, Diagnostic

    span = getattr(node, "span", None) if node is not None else None
    if span is None and rule is not None:
        span = getattr(rule, "span", None)
    diagnostic = Diagnostic(
        severity=CODES["ALOG016"][0],
        code="ALOG016",
        message=message,
        rule_label=(rule.label or rule.head.name) if rule is not None else "",
        line=span.line if span else None,
        column=span.column if span else None,
        end_line=span.end_line if span else None,
        end_column=span.end_column if span else None,
    )
    error = EvaluationError(diagnostic.render())
    error.diagnostic = diagnostic
    return error


def _cycle_message(program, name, fallback):
    """The stratify pass's classification of ``name``'s cycle, or ``fallback``.

    Stratified-safe recursion gets a message saying so (and naming the
    stratum); genuinely unsafe recursion gets the reason.  Any analysis
    failure falls back to the plain refusal.
    """
    try:
        from repro.analysis.stratify import stratify_program

        info = stratify_program(program)
        cycle = info.cycle_for(name)
        if cycle is not None:
            return cycle.message
    except Exception:
        pass
    return fallback


def evaluation_order(program):
    """Topological order of the intensional predicates.

    The bottom-up evaluator computes each predicate exactly once, so a
    recursive program cannot be ordered; recursion raises
    :class:`EvaluationError` through an ``ALOG016`` diagnostic anchored
    at the offending rule (the analyzer's recursion pass reports the
    same code pre-execution).
    """
    deps = {}
    sites = {}  # name -> (rule, atom) that introduced the first dep edge
    for rule in program.skeleton_rules:
        deps.setdefault(rule.head.name, set())
        for atom in rule.body_atoms(PredicateAtom):
            if atom.name == rule.head.name:
                raise _recursion_error(
                    _cycle_message(
                        program,
                        atom.name,
                        "recursive predicate %r: rule body refers to its "
                        "own head" % (atom.name,),
                    ),
                    rule=rule,
                    node=atom,
                )
            if atom.name in program.intensional:
                deps[rule.head.name].add(atom.name)
                sites.setdefault(rule.head.name, (rule, atom))
    order = []
    visiting = set()

    def visit(name):
        if name in order:
            return
        if name in visiting:
            rule, atom = sites.get(name, (None, None))
            raise _recursion_error(
                _cycle_message(
                    program,
                    name,
                    "recursive predicate %r: dependency cycle cannot be "
                    "evaluated bottom-up" % (name,),
                ),
                rule=rule,
                node=atom,
            )
        visiting.add(name)
        for dep in sorted(deps.get(name, ())):
            visit(dep)
        visiting.discard(name)
        order.append(name)

    for name in sorted(deps):
        visit(name)
    return order


@dataclass
class ExecutionResult:
    """What one program execution produced."""

    query_table: object
    tables: dict
    stats: object
    elapsed: float
    reuse_summary: dict = field(default_factory=dict)
    #: :class:`~repro.errors.ExecutionReport` of contained failures
    #: (``None`` only on legacy construction paths)
    report: object = None

    @property
    def tuple_count(self):
        return self.query_table.tuple_count()

    @property
    def assignment_count(self):
        return self.query_table.assignment_count()

    def summary(self):
        return {
            "tuples": self.tuple_count,
            "assignments": self.assignment_count,
            "maybe": self.query_table.maybe_count(),
            "elapsed_s": self.elapsed,
        }


@dataclass
class _Fingerprint:
    bases: tuple          # per-rule repr with constraints stripped
    constraints: tuple    # per-rule sorted (attr, feature, value-repr)
    upstream: tuple       # tokens of referenced intensional tables
    corpus_sig: object

    @property
    def token(self):
        return hash((self.bases, self.constraints, self.upstream, self.corpus_sig))


@dataclass
class _CacheEntry:
    fingerprint: _Fingerprint
    table: object


class RuleCache:
    """Per-predicate compact-table cache for cross-iteration reuse.

    Entries are keyed ``(predicate name, partition id)``.  Partition
    ``None`` holds the whole-corpus table — the only key serial
    execution uses, and always written so results reuse across worker
    configurations.  Parallel execution additionally keys the
    document-local predicates per corpus partition, so the
    constraints-commute incremental path applies partition by partition.
    """

    def __init__(self):
        self._entries = {}
        self.full_hits = 0
        self.incremental_hits = 0
        self.misses = 0

    def get(self, name, partition=None):
        return self._entries.get((name, partition))

    def put(self, name, fingerprint, table, partition=None):
        self._entries[(name, partition)] = _CacheEntry(fingerprint, table)

    def __len__(self):
        return len(self._entries)


def _split_rule(rule):
    """``(base_repr, constraints)`` — constraints in body order."""
    body = tuple(a for a in rule.body if not isinstance(a, ConstraintAtom))
    constraints = tuple(
        (a.var.name, a.feature, repr(a.value))
        for a in rule.body
        if isinstance(a, ConstraintAtom)
    )
    return repr(Rule(rule.head, body)), constraints


class _PolicyDriver:
    """Applies ``ExecConfig.on_error`` around whole-execution attempts.

    Best-effort fault tolerance works by *quarantine and re-run*: when
    an attempt dies on a document-attributable
    :class:`~repro.errors.ExecutionFailure`, the offending document is
    excluded from the engine's active corpus and the execution restarts.
    The surviving result is therefore literally a clean run over the
    corpus minus the quarantined documents — the byte-identical
    invariant holds by construction, on every scheduler backend, for
    global plans and joins included.  Cost is bounded by k+1 attempts
    for k poisoned documents, and the engine-level Verify/Refine caches
    stay warm across attempts, so re-runs mostly replay memoized work.

    ``retry`` re-runs the *same* corpus first: each failure site (doc,
    operator, feature/predicate, exception class) gets up to
    ``max_retries`` attempts with capped exponential backoff before the
    document is quarantined as under ``skip``.  Failures with no
    document attribution — and :class:`PartitionTimeout`, where the
    guilty document is unknown — always surface, whatever the policy.
    """

    def __init__(self, engine):
        config = engine.config
        policy = getattr(config, "on_error", "fail-fast")
        if policy not in ERROR_POLICIES:
            raise ValueError(
                "unknown error policy %r (choose from %s)"
                % (policy, ", ".join(ERROR_POLICIES))
            )
        self.engine = engine
        self.policy = policy
        self.max_retries = max(0, int(getattr(config, "max_retries", 2)))
        self.backoff = getattr(config, "retry_backoff", 0.05)
        self.report = ExecutionReport(policy=policy)
        self._attempts = {}  # failure site_key -> retries consumed

    def run(self, attempt):
        while True:
            try:
                return attempt()
            except ExecutionFailure as failure:
                self._handle(failure)

    def finish(self, result):
        """Stamp the report onto a completed result."""
        result.report = self.report
        result.stats.failures += len(self.report.records)
        result.stats.retries += self.report.retries
        return result

    def _handle(self, failure):
        if self.policy == "fail-fast":
            raise failure
        if failure.doc_id is None or isinstance(failure, PartitionTimeout):
            # not attributable to one document: quarantining cannot help
            raise failure
        retries_used = 0
        if self.policy == "retry":
            key = failure.site_key()
            retries_used = self._attempts.get(key, 0)
            if retries_used < self.max_retries:
                self._attempts[key] = retries_used + 1
                self.report.retries += 1
                if self.backoff:
                    time.sleep(min(self.backoff * (2 ** retries_used), 2.0))
                logger.debug(
                    "retrying after failure at %r (attempt %d/%d)",
                    key,
                    retries_used + 1,
                    self.max_retries,
                )
                return
        self.engine._exclude_document(failure.doc_id)
        self.report.records.append(failure.to_record(retry_count=retries_used))
        logger.warning("quarantined document %r: %s", failure.doc_id, failure)


class IFlexEngine:
    """Approximate executor for one program over one corpus.

    With ``validate=True`` (the default) the static analyzer runs over
    the program before any plan is compiled, so a defective program
    fails up front with the classic exception types instead of half-way
    through an expensive extraction.  Pass ``validate=False`` when the
    program was already linted (the CLI does) or when executing a
    deliberately partial program.
    """

    def __init__(
        self,
        program,
        corpus,
        features=None,
        config=None,
        validate=True,
        index_store=None,
        eval_cache=None,
        tracer=None,
        metrics=None,
    ):
        self.program = program
        self.corpus = corpus
        self.features = features
        self.config = config or ExecConfig()
        #: optional :class:`~repro.observability.spans.Tracer`; when set,
        #: executions run their plans traced and emit engine, plan,
        #: operator, partition, and scheduler spans
        self.tracer = tracer
        #: optional :class:`~repro.observability.metrics.MetricsRegistry`;
        #: every completed execution folds its (backend-deterministic)
        #: counters into it
        self.metrics = metrics
        # Verify/Refine acceleration state, shared by every execution of
        # this engine (and across engines when the caller passes its own
        # — the assistant session shares one pair session-wide).  Both
        # are keyed by immutable document content, so sharing never
        # changes results.
        if getattr(self.config, "use_index", True):
            if index_store is not None:
                self.index_store = index_store
            else:
                self.index_store = IndexStore(columnar=self._make_columnar())
            self._prepare_artifacts()
        else:
            self.index_store = None
        if getattr(self.config, "use_eval_cache", True):
            self.eval_cache = eval_cache if eval_cache is not None else EvalCache()
        else:
            self.eval_cache = None
        self.lint_result = None
        if validate:
            self.lint_result = self._validate()
        self.unfolded = unfold_program(program)
        self.order = evaluation_order(self.unfolded)
        #: documents quarantined by the error policy; the *active*
        #: corpus (what executions actually see) excludes them
        self.excluded_docs = set()
        self._active = self.corpus
        self.physical = self._make_physical()

    @property
    def active_corpus(self):
        """The corpus minus quarantined documents."""
        return self._active

    def _exclude_document(self, doc_id):
        """Quarantine one document and rebuild the partitioned view."""
        self.excluded_docs.add(doc_id)
        self._active = self.corpus.without(self.excluded_docs)
        self.physical = self._make_physical()

    def _make_columnar(self):
        """A columnar store honouring ``config.artifact_cache``."""
        from repro.columnar import ColumnarStore

        return ColumnarStore(
            cache_dir=getattr(self.config, "artifact_cache", None)
        )

    def _prepare_artifacts(self):
        """Build-or-map the corpus's columnar bundle when caching is on.

        Only an explicit ``artifact_cache`` triggers eager preparation:
        it pays one corpus pass up front so warm starts map the bundle
        and forked workers receive ``(path, digest)`` refs instead of
        rebuilding.  Without a cache directory, columns stay lazy —
        built per document on first Verify/Refine, exactly as cheap as
        before.
        """
        store = getattr(self.index_store, "columnar", None)
        if store is None or store.cache_dir is None:
            return
        seen = set()
        docs = []
        for name in self.corpus.table_names():
            for doc in self.corpus.table(name):
                if doc.doc_id not in seen:
                    seen.add(doc.doc_id)
                    docs.append(doc)
        if docs:
            store.prepare(docs)

    def _make_physical(self):
        """The physical execution layer, or None on the serial path.

        With one worker the engine executes plans directly (the original
        single-threaded code path, byte for byte); with more it routes
        every plan through :class:`~repro.processor.physical.PhysicalExecutor`.
        """
        if getattr(self.config, "workers", 1) <= 1:
            return None
        from repro.processor.physical import PhysicalExecutor

        return PhysicalExecutor(
            self.unfolded,
            self._active,
            self.features,
            self.config,
            index_store=self.index_store,
            tracer=self.tracer,
        )

    def _context(self):
        """A fresh whole-corpus execution context on the shared stores."""
        return ExecutionContext(
            self.unfolded,
            self._active,
            self.features,
            self.config,
            index_store=self.index_store,
            eval_cache=self.eval_cache,
            tracer=self.tracer,
        )

    def _span(self, name, category, **attrs):
        """A tracer span, or a no-op context when tracing is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, category, **attrs)

    def _validate(self):
        """Analyze the program; raise on the first error diagnostic.

        Errors map onto the historical exception types so existing
        callers keep their ``except`` clauses: unsafe rules raise
        :class:`SafetyError`, unresolved predicates
        :class:`UnknownPredicateError`, unknown features
        :class:`UnknownFeatureError`; anything else raises
        :class:`ProgramLintError` carrying the full diagnostic list.
        Warnings never block execution — the result is kept on
        ``self.lint_result`` for callers that surface them.
        """
        from repro.analysis import analyze_program

        result = analyze_program(self.program, registry=self.features, plan=True)
        for diagnostic in result.errors:
            exc_type = _LEGACY_ERROR_TYPES.get(diagnostic.code)
            if exc_type is not None:
                raise exc_type(diagnostic.message)
            raise ProgramLintError(diagnostic.message, result.diagnostics)
        return result

    # ------------------------------------------------------------------
    def execute(self, cache=None):
        """Run the program; returns an :class:`ExecutionResult`.

        The configured error policy (``ExecConfig.on_error``) is applied
        around the whole execution: under ``skip`` / ``retry`` a
        document-attributable failure quarantines the document and
        re-runs, and the result carries an
        :class:`~repro.errors.ExecutionReport` describing every
        contained incident (``result.report``).
        """
        driver = _PolicyDriver(self)
        with self._span(
            "execute", "engine", policy=driver.policy, query=self.unfolded.query
        ):
            result = driver.finish(driver.run(lambda: self._execute_attempt(cache)))
        if self.metrics is not None:
            from repro.observability.metrics import record_execution

            record_execution(self.metrics, result)
        return result

    def _execute_attempt(self, cache=None):
        """One uninterrupted execution over the active corpus."""
        start = time.perf_counter()
        context = self._context()
        tokens = {}
        reuse_summary = {}
        for name in self.order:
            fingerprint = self._fingerprint(name, tokens)
            table = None
            kind = None
            with self._span("predicate:%s" % name, "plan", predicate=name):
                if cache is not None:
                    entry = cache.get(name)
                    if entry is not None and entry.fingerprint.token == fingerprint.token:
                        table = entry.table
                        kind = "full"
                    elif (
                        self.physical is not None
                        and self.physical.parallel
                        and self.physical.fully_local(name)
                    ):
                        table, kind = self._execute_partitioned(name, context, cache)
                    elif entry is not None:
                        table = self._incremental(name, entry, fingerprint, context)
                        if table is not None:
                            kind = "incremental"
                if table is None:
                    table = self._execute_plan(name, context)
                    kind = "computed"
            reuse_summary[name] = kind
            context.relations[name] = table
            tokens[name] = fingerprint.token
            if cache is not None:
                if kind == "full":
                    cache.full_hits += 1
                elif kind == "incremental":
                    cache.incremental_hits += 1
                else:
                    cache.misses += 1
                cache.put(name, fingerprint, table)
            logger.debug(
                "%s: %d tuples, %d assignments (%s)",
                name,
                table.tuple_count(),
                table.assignment_count(),
                kind,
            )
        elapsed = time.perf_counter() - start
        return ExecutionResult(
            query_table=context.relations[self.unfolded.query],
            tables=dict(context.relations),
            stats=context.stats,
            elapsed=elapsed,
            reuse_summary=reuse_summary,
        )

    def _execute_plan(self, name, context):
        """One predicate's table: direct on the serial path, partitioned

        through the physical layer when workers > 1.  With a tracer the
        plan runs through the operator-tracing decorator and the
        collected rows become nested operator spans, so ``--trace-out``
        runs carry per-operator timing without the caller asking for
        ``explain_analyze``.
        """
        if self.tracer is not None:
            from repro.observability.spans import spans_from_traces
            from repro.processor.tracing import trace_plan

            if self.physical is not None:
                table, traces = self.physical.execute_plan_traced(name, context)
            else:
                traced = trace_plan(compile_predicate(name, self.unfolded))
                table = traced.execute(context)
                traces = traced.collect()
            spans_from_traces(traces, self.tracer)
            return table
        if self.physical is not None:
            return self.physical.execute_plan(name, context)
        return compile_predicate(name, self.unfolded).execute(context)

    def _execute_partitioned(self, name, context, cache):
        """A fully document-local predicate with a partition-keyed cache.

        Each corpus partition gets its own fingerprint (same rules, the
        partition's corpus signature) and its own full-hit / incremental
        / compute decision; only partitions that could not be reused are
        re-extracted, on the scheduler.  Returns ``(merged table, kind)``
        where ``kind`` summarises the weakest reuse across partitions.

        Fully-local plans never scan intensional tables (joins over them
        are global by construction), so the partition fingerprints need
        no upstream tokens.
        """
        from repro.ctables.ctable import CompactTable

        physical = self.physical
        partitions = physical.partitions
        tables = [None] * len(partitions)
        kinds = [None] * len(partitions)
        fingerprints = []
        missing = []
        for pid, partition in enumerate(partitions):
            fingerprint = self._fingerprint(name, {}, corpus_sig=partition.signature)
            fingerprints.append(fingerprint)
            entry = cache.get(name, partition=pid)
            if entry is not None and entry.fingerprint.token == fingerprint.token:
                tables[pid] = entry.table
                kinds[pid] = "full"
                continue
            if entry is not None:
                table = self._incremental(name, entry, fingerprint, context)
                if table is not None:
                    tables[pid] = table
                    kinds[pid] = "incremental"
                    continue
            missing.append(pid)
        if missing:
            computed = physical.execute_local_partitions(name, missing)
            for pid, (table, stats) in zip(missing, computed):
                tables[pid] = table
                kinds[pid] = "computed"
                context.stats.merge(stats)
        for pid in range(len(partitions)):
            cache.put(name, fingerprints[pid], tables[pid], partition=pid)
        attrs = physical.split(name).root.attrs
        merged = CompactTable.union(tables, attrs=attrs)
        if "computed" in kinds:
            kind = "computed"
        elif "incremental" in kinds:
            kind = "incremental"
        else:
            kind = "full"
        return merged, kind

    def explain(self):
        """The compiled plan for every predicate, as text."""
        parts = []
        for name in self.order:
            plan = compile_predicate(name, self.unfolded)
            parts.append("%s:\n%s" % (name, plan.explain(1)))
        return "\n".join(parts)

    def explain_analyze(self):
        """Execute with operator-level tracing; returns

        ``(ExecutionResult, report_text)`` — EXPLAIN ANALYZE for plans.
        Under parallel execution the per-partition measurements of the
        document-local prefix are merged (counts sum to the serial
        counts) and reported nested under the suffix's gather leaves, so
        cost still attributes to individual operators.  The error policy
        applies exactly as in :meth:`execute`; contained failures are
        appended to the text report.
        """
        from repro.processor.tracing import render_failures

        driver = _PolicyDriver(self)
        with self._span(
            "explain_analyze", "engine", policy=driver.policy, query=self.unfolded.query
        ):
            result, text = driver.run(self._explain_analyze_attempt)
            driver.finish(result)
        if self.metrics is not None:
            from repro.observability.metrics import record_execution

            record_execution(self.metrics, result)
        failure_text = render_failures(result.report)
        if failure_text:
            text = "%s\n\n%s" % (text, failure_text)
        return result, text

    def _explain_analyze_attempt(self):
        from repro.processor.tracing import render_cache_summary, render_traces, trace_plan

        start = time.perf_counter()
        context = self._context()
        reports = []
        for name in self.order:
            with self._span("predicate:%s" % name, "plan", predicate=name):
                if self.physical is not None:
                    table, traces = self.physical.execute_plan_traced(name, context)
                    context.relations[name] = table
                    reports.append("%s:\n%s" % (name, render_traces(traces)))
                else:
                    traced = trace_plan(compile_predicate(name, self.unfolded))
                    context.relations[name] = traced.execute(context)
                    traces = traced.collect()
                    reports.append("%s:\n%s" % (name, render_traces(traces)))
                if self.tracer is not None:
                    from repro.observability.spans import spans_from_traces

                    spans_from_traces(traces, self.tracer)
        reports.append(render_cache_summary(context.stats))
        elapsed = time.perf_counter() - start
        result = ExecutionResult(
            query_table=context.relations[self.unfolded.query],
            tables=dict(context.relations),
            stats=context.stats,
            elapsed=elapsed,
        )
        return result, "\n\n".join(reports)

    # ------------------------------------------------------------------
    def _fingerprint(self, name, tokens, corpus_sig=None):
        """The predicate's reuse fingerprint.

        ``corpus_sig`` overrides the whole-corpus signature for
        partition-keyed entries (the partitioned path fingerprints each
        corpus slice separately).
        """
        rules = self.unfolded.rules_for(name)
        bases = []
        constraints = []
        upstream = []
        for rule in rules:
            base, cons = _split_rule(rule)
            bases.append(base)
            constraints.append(cons)
            for atom in rule.body_atoms(PredicateAtom):
                if atom.name in self.unfolded.intensional:
                    upstream.append((atom.name, tokens[atom.name]))
        return _Fingerprint(
            bases=tuple(bases),
            constraints=tuple(constraints),
            upstream=tuple(sorted(set(upstream))),
            corpus_sig=self._active.signature if corpus_sig is None else corpus_sig,
        )

    def _incremental(self, name, entry, fingerprint, context):
        """Apply added-constraint deltas to a cached table, or None."""
        old, new = entry.fingerprint, fingerprint
        if (
            old.bases != new.bases
            or old.upstream != new.upstream
            or old.corpus_sig != new.corpus_sig
            or len(old.constraints) != len(new.constraints)
        ):
            return None
        rules = self.unfolded.rules_for(name)
        if len(rules) != 1:
            # a multi-rule head unions tables from several rules; one
            # rule's new constraint must not filter another rule's
            # tuples, so fall back to a full recompute
            return None
        annotated = set(rules[0].annotations[1])
        table = entry.table
        table_attrs = set(table.attrs)
        deltas = []
        for old_cons, new_cons in zip(old.constraints, new.constraints):
            old_list = list(old_cons)
            for item in old_list:
                if item not in new_cons:
                    return None  # a constraint was removed: no reuse
            remaining = list(new_cons)
            for item in old_list:
                remaining.remove(item)
            for attr, feature, value_repr in remaining:
                if attr not in table_attrs:
                    return None  # constrained attr was projected away
                priors = [
                    (f, _unrepr(v)) for a, f, v in old_list if a == attr
                ]
                deltas.append((attr, feature, _unrepr(value_repr), priors))
        for attr, feature, value, priors in deltas:
            table = apply_constraint_to_table(
                table,
                attr,
                feature,
                value,
                priors,
                context,
                # constraints commute past psi for annotated attributes
                mark_maybe=attr not in annotated,
            )
        return table


def _unrepr(value_repr):
    """Recover a constraint value from its repr (str/int/float only)."""
    import ast

    return ast.literal_eval(value_repr)
