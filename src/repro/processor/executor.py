"""The approximate program executor ("stitching" + reuse, §4 and §5.2).

:class:`IFlexEngine` evaluates an Alog program over a corpus: it
unfolds description rules, compiles one plan per intensional predicate,
executes them bottom-up over compact tables, and returns the query
predicate's table.

Cross-iteration **reuse** (section 5.2) is keyed on a per-predicate
fingerprint.  When a refinement only *adds* domain constraints to a
predicate's rules — the common case during assistant-driven iteration —
the new constraints are applied directly to the cached table (domain
constraints commute, section 4.2) instead of re-extracting from
scratch; anything downstream re-executes against the updated table.
"""

import logging
import time
from dataclasses import dataclass, field

from repro.alog.unfold import unfold_program
from repro.errors import (
    EvaluationError,
    ProgramLintError,
    SafetyError,
    UnknownFeatureError,
    UnknownPredicateError,
)
from repro.processor.context import ExecConfig, ExecutionContext
from repro.processor.operators import apply_constraint_to_table
from repro.processor.plan import compile_predicate
from repro.xlog.ast import ConstraintAtom, PredicateAtom, Rule

__all__ = ["IFlexEngine", "ExecutionResult", "RuleCache", "evaluation_order"]

logger = logging.getLogger("repro.processor")

#: diagnostic code -> the exception type API callers historically caught
_LEGACY_ERROR_TYPES = {
    "ALOG001": SafetyError,
    "ALOG002": UnknownPredicateError,
    "ALOG014": UnknownPredicateError,
    "ALOG003": UnknownFeatureError,
}


def evaluation_order(program):
    """Topological order of the intensional predicates."""
    deps = {}
    for rule in program.skeleton_rules:
        deps.setdefault(rule.head.name, set())
        for atom in rule.body_atoms(PredicateAtom):
            if atom.name == rule.head.name:
                raise EvaluationError("recursive predicate %r" % (atom.name,))
            if atom.name in program.intensional:
                deps[rule.head.name].add(atom.name)
    order = []
    visiting = set()

    def visit(name):
        if name in order:
            return
        if name in visiting:
            raise EvaluationError("recursive dependency through %r" % (name,))
        visiting.add(name)
        for dep in sorted(deps.get(name, ())):
            visit(dep)
        visiting.discard(name)
        order.append(name)

    for name in sorted(deps):
        visit(name)
    return order


@dataclass
class ExecutionResult:
    """What one program execution produced."""

    query_table: object
    tables: dict
    stats: object
    elapsed: float
    reuse_summary: dict = field(default_factory=dict)

    @property
    def tuple_count(self):
        return self.query_table.tuple_count()

    @property
    def assignment_count(self):
        return self.query_table.assignment_count()

    def summary(self):
        return {
            "tuples": self.tuple_count,
            "assignments": self.assignment_count,
            "maybe": self.query_table.maybe_count(),
            "elapsed_s": self.elapsed,
        }


@dataclass
class _Fingerprint:
    bases: tuple          # per-rule repr with constraints stripped
    constraints: tuple    # per-rule sorted (attr, feature, value-repr)
    upstream: tuple       # tokens of referenced intensional tables
    corpus_sig: object

    @property
    def token(self):
        return hash((self.bases, self.constraints, self.upstream, self.corpus_sig))


@dataclass
class _CacheEntry:
    fingerprint: _Fingerprint
    table: object


class RuleCache:
    """Per-predicate compact-table cache for cross-iteration reuse."""

    def __init__(self):
        self._entries = {}
        self.full_hits = 0
        self.incremental_hits = 0
        self.misses = 0

    def get(self, name):
        return self._entries.get(name)

    def put(self, name, fingerprint, table):
        self._entries[name] = _CacheEntry(fingerprint, table)

    def __len__(self):
        return len(self._entries)


def _split_rule(rule):
    """``(base_repr, constraints)`` — constraints in body order."""
    body = tuple(a for a in rule.body if not isinstance(a, ConstraintAtom))
    constraints = tuple(
        (a.var.name, a.feature, repr(a.value))
        for a in rule.body
        if isinstance(a, ConstraintAtom)
    )
    return repr(Rule(rule.head, body)), constraints


class IFlexEngine:
    """Approximate executor for one program over one corpus.

    With ``validate=True`` (the default) the static analyzer runs over
    the program before any plan is compiled, so a defective program
    fails up front with the classic exception types instead of half-way
    through an expensive extraction.  Pass ``validate=False`` when the
    program was already linted (the CLI does) or when executing a
    deliberately partial program.
    """

    def __init__(self, program, corpus, features=None, config=None, validate=True):
        self.program = program
        self.corpus = corpus
        self.features = features
        self.config = config or ExecConfig()
        self.lint_result = None
        if validate:
            self.lint_result = self._validate()
        self.unfolded = unfold_program(program)
        self.order = evaluation_order(self.unfolded)

    def _validate(self):
        """Analyze the program; raise on the first error diagnostic.

        Errors map onto the historical exception types so existing
        callers keep their ``except`` clauses: unsafe rules raise
        :class:`SafetyError`, unresolved predicates
        :class:`UnknownPredicateError`, unknown features
        :class:`UnknownFeatureError`; anything else raises
        :class:`ProgramLintError` carrying the full diagnostic list.
        Warnings never block execution — the result is kept on
        ``self.lint_result`` for callers that surface them.
        """
        from repro.analysis import analyze_program

        result = analyze_program(self.program, registry=self.features)
        for diagnostic in result.errors:
            exc_type = _LEGACY_ERROR_TYPES.get(diagnostic.code)
            if exc_type is not None:
                raise exc_type(diagnostic.message)
            raise ProgramLintError(diagnostic.message, result.diagnostics)
        return result

    # ------------------------------------------------------------------
    def execute(self, cache=None):
        """Run the program; returns an :class:`ExecutionResult`."""
        start = time.perf_counter()
        context = ExecutionContext(self.unfolded, self.corpus, self.features, self.config)
        tokens = {}
        reuse_summary = {}
        for name in self.order:
            fingerprint = self._fingerprint(name, tokens)
            table = None
            if cache is not None:
                entry = cache.get(name)
                if entry is not None:
                    if entry.fingerprint.token == fingerprint.token:
                        table = entry.table
                        cache.full_hits += 1
                        reuse_summary[name] = "full"
                    else:
                        table = self._incremental(name, entry, fingerprint, context)
                        if table is not None:
                            cache.incremental_hits += 1
                            reuse_summary[name] = "incremental"
            if table is None:
                table = compile_predicate(name, self.unfolded).execute(context)
                reuse_summary[name] = reuse_summary.get(name, "computed")
                if cache is not None:
                    cache.misses += 1
            context.relations[name] = table
            tokens[name] = fingerprint.token
            if cache is not None:
                cache.put(name, fingerprint, table)
            logger.debug(
                "%s: %d tuples, %d assignments (%s)",
                name,
                table.tuple_count(),
                table.assignment_count(),
                reuse_summary.get(name, "computed"),
            )
        elapsed = time.perf_counter() - start
        return ExecutionResult(
            query_table=context.relations[self.unfolded.query],
            tables=dict(context.relations),
            stats=context.stats,
            elapsed=elapsed,
            reuse_summary=reuse_summary,
        )

    def explain(self):
        """The compiled plan for every predicate, as text."""
        parts = []
        for name in self.order:
            plan = compile_predicate(name, self.unfolded)
            parts.append("%s:\n%s" % (name, plan.explain(1)))
        return "\n".join(parts)

    def explain_analyze(self):
        """Execute with operator-level tracing; returns

        ``(ExecutionResult, report_text)`` — EXPLAIN ANALYZE for plans.
        """
        from repro.processor.tracing import trace_plan

        start = time.perf_counter()
        context = ExecutionContext(self.unfolded, self.corpus, self.features, self.config)
        reports = []
        for name in self.order:
            traced = trace_plan(compile_predicate(name, self.unfolded))
            context.relations[name] = traced.execute(context)
            reports.append("%s:\n%s" % (name, traced.report()))
        elapsed = time.perf_counter() - start
        result = ExecutionResult(
            query_table=context.relations[self.unfolded.query],
            tables=dict(context.relations),
            stats=context.stats,
            elapsed=elapsed,
        )
        return result, "\n\n".join(reports)

    # ------------------------------------------------------------------
    def _fingerprint(self, name, tokens):
        rules = self.unfolded.rules_for(name)
        bases = []
        constraints = []
        upstream = []
        for rule in rules:
            base, cons = _split_rule(rule)
            bases.append(base)
            constraints.append(cons)
            for atom in rule.body_atoms(PredicateAtom):
                if atom.name in self.unfolded.intensional:
                    upstream.append((atom.name, tokens[atom.name]))
        return _Fingerprint(
            bases=tuple(bases),
            constraints=tuple(constraints),
            upstream=tuple(sorted(set(upstream))),
            corpus_sig=self.corpus.signature,
        )

    def _incremental(self, name, entry, fingerprint, context):
        """Apply added-constraint deltas to a cached table, or None."""
        old, new = entry.fingerprint, fingerprint
        if (
            old.bases != new.bases
            or old.upstream != new.upstream
            or old.corpus_sig != new.corpus_sig
            or len(old.constraints) != len(new.constraints)
        ):
            return None
        rules = self.unfolded.rules_for(name)
        if len(rules) != 1:
            # a multi-rule head unions tables from several rules; one
            # rule's new constraint must not filter another rule's
            # tuples, so fall back to a full recompute
            return None
        annotated = set(rules[0].annotations[1])
        table = entry.table
        table_attrs = set(table.attrs)
        deltas = []
        for old_cons, new_cons in zip(old.constraints, new.constraints):
            old_list = list(old_cons)
            for item in old_list:
                if item not in new_cons:
                    return None  # a constraint was removed: no reuse
            remaining = list(new_cons)
            for item in old_list:
                remaining.remove(item)
            for attr, feature, value_repr in remaining:
                if attr not in table_attrs:
                    return None  # constrained attr was projected away
                priors = [
                    (f, _unrepr(v)) for a, f, v in old_list if a == attr
                ]
                deltas.append((attr, feature, _unrepr(value_repr), priors))
        for attr, feature, value, priors in deltas:
            table = apply_constraint_to_table(
                table,
                attr,
                feature,
                value,
                priors,
                context,
                # constraints commute past psi for annotated attributes
                mark_maybe=attr not in annotated,
            )
        return table


def _unrepr(value_repr):
    """Recover a constraint value from its repr (str/int/float only)."""
    import ast

    return ast.literal_eval(value_repr)
