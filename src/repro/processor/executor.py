"""The approximate program executor ("stitching" + reuse, §4 and §5.2).

:class:`IFlexEngine` evaluates an Alog program over a corpus: it
unfolds description rules, compiles one plan per intensional predicate,
executes them bottom-up over compact tables, and returns the query
predicate's table.  Stratified-safe recursive components evaluate as
*groups*: a semi-naive fixpoint loop iterates the component's rules
over per-iteration delta tables until no new tuple (by canonical key)
appears; genuinely unsafe cycles — ψ, IE, or procedural predicates in
the cycle — are refused with ``ALOG016`` exactly as before.

Cross-iteration **reuse** (section 5.2) is keyed on a per-predicate
fingerprint.  When a refinement only *adds* domain constraints to a
predicate's rules — the common case during assistant-driven iteration —
the new constraints are applied directly to the cached table (domain
constraints commute, section 4.2) instead of re-extracting from
scratch; anything downstream re-executes against the updated table.
"""

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.alog.unfold import unfold_program
from repro.errors import (
    EvaluationError,
    ExecutionFailure,
    ExecutionReport,
    PartitionTimeout,
    ProgramLintError,
    SafetyError,
    UnknownFeatureError,
    UnknownPredicateError,
)
from repro.features.index import IndexStore
from repro.observability.logs import get_logger
from repro.processor.context import ERROR_POLICIES, EvalCache, ExecConfig, ExecutionContext
from repro.processor.operators import apply_constraint_to_table
from repro.processor.plan import compile_predicate
from repro.xlog.ast import ConstraintAtom, PredicateAtom, Rule

__all__ = ["IFlexEngine", "ExecutionResult", "RuleCache", "evaluation_order"]

logger = get_logger("processor")

#: diagnostic code -> the exception type API callers historically caught
_LEGACY_ERROR_TYPES = {
    "ALOG001": SafetyError,
    "ALOG002": UnknownPredicateError,
    "ALOG014": UnknownPredicateError,
    "ALOG003": UnknownFeatureError,
    "ALOG016": EvaluationError,
}


def _recursion_error(message, rule=None, node=None):
    """An :class:`EvaluationError` carrying an ``ALOG016`` diagnostic.

    The rendered message includes the offending rule's source span (when
    the parser provided one) and the diagnostic itself rides on the
    exception's ``diagnostic`` attribute for tooling.
    """
    from repro.analysis.diagnostics import CODES, Diagnostic

    span = getattr(node, "span", None) if node is not None else None
    if span is None and rule is not None:
        span = getattr(rule, "span", None)
    diagnostic = Diagnostic(
        severity=CODES["ALOG016"][0],
        code="ALOG016",
        message=message,
        rule_label=(rule.label or rule.head.name) if rule is not None else "",
        line=span.line if span else None,
        column=span.column if span else None,
        end_line=span.end_line if span else None,
        end_column=span.end_column if span else None,
    )
    error = EvaluationError(diagnostic.render())
    error.diagnostic = diagnostic
    return error


def _stratification_for(program):
    """The stratify pass's view of ``program``, or ``None``.

    Used only when the caller has no analyzer result to hand (the
    validating engine passes its lint result's stratification instead of
    re-analyzing).  An analysis failure is logged at debug level and
    degrades to ``None`` — the ordering then refuses the cycle with the
    plain fallback message rather than masking the original error.
    """
    try:
        from repro.analysis.stratify import stratify_program

        return stratify_program(program)
    except Exception:
        logger.debug("stratification analysis failed", exc_info=True)
        return None


def _group_anchor(names, sites):
    """The first in-group dependency edge site, for diagnostics."""
    for head in names:
        for dep in names:
            site = sites.get((head, dep))
            if site is not None:
                return site
    return None, None


def evaluation_order(program, stratification=None):
    """Bottom-up evaluation order: a list of predicate *groups*.

    Each group is a sorted tuple of intensional predicate names that
    evaluate together.  Non-recursive predicates form singleton groups
    and are computed exactly once; a recursive strongly connected
    component becomes one multi-member (or self-recursive singleton)
    group, which the engine iterates to fixpoint with its semi-naive
    loop.  Groups come out dependencies-first — for an acyclic program
    the flattened order is identical to the historical depth-first
    postorder.

    Only *stratified-safe* recursion is ordered.  A cycle through a ψ
    annotation, IE extraction, or a procedural predicate has no fixpoint
    semantics and raises :class:`EvaluationError` through the same
    ``ALOG016`` diagnostic the analyzer reports pre-execution.

    ``stratification`` is the caller's already-computed analysis of the
    *original* program (unfolding erases IE atoms, so classifying the
    unfolded rules would mistake an IE cycle for plain relational
    recursion); ``None`` computes one here over the program as given.
    Visited bookkeeping is all hash-based (Tarjan index maps), so
    ordering is linear in the dependency graph.
    """
    from repro.analysis.stratify import tarjan_scc

    deps = {}
    sites = {}  # (head, dep) -> (rule, atom) of the first such edge
    for rule in program.skeleton_rules:
        deps.setdefault(rule.head.name, set())
        for atom in rule.body_atoms(PredicateAtom):
            if atom.name in program.intensional:
                deps[rule.head.name].add(atom.name)
                sites.setdefault((rule.head.name, atom.name), (rule, atom))
    info = stratification
    info_resolved = stratification is not None
    order = []
    for component in tarjan_scc(deps):
        names = tuple(sorted(component))
        recursive = len(names) > 1 or names[0] in deps.get(names[0], ())
        if recursive:
            if not info_resolved:
                info = _stratification_for(program)
                info_resolved = True
            cycle = info.cycle_for(names[0]) if info is not None else None
            rule, atom = _group_anchor(names, sites)
            if cycle is None:
                raise _recursion_error(
                    "recursive predicate %r: dependency cycle cannot be "
                    "evaluated bottom-up (stratification analysis "
                    "unavailable)" % (names[0],),
                    rule=rule,
                    node=atom,
                )
            if not cycle.safe:
                raise _recursion_error(cycle.message, rule=rule, node=atom)
        order.append(names)
    return order


@dataclass
class ExecutionResult:
    """What one program execution produced."""

    query_table: object
    tables: dict
    stats: object
    elapsed: float
    reuse_summary: dict = field(default_factory=dict)
    #: :class:`~repro.errors.ExecutionReport` of contained failures
    #: (``None`` only on legacy construction paths)
    report: object = None

    @property
    def tuple_count(self):
        return self.query_table.tuple_count()

    @property
    def assignment_count(self):
        return self.query_table.assignment_count()

    def summary(self):
        return {
            "tuples": self.tuple_count,
            "assignments": self.assignment_count,
            "maybe": self.query_table.maybe_count(),
            "elapsed_s": self.elapsed,
        }


@dataclass
class _Fingerprint:
    bases: tuple          # per-rule repr with constraints stripped
    constraints: tuple    # per-rule sorted (attr, feature, value-repr)
    upstream: tuple       # tokens of referenced intensional tables
    corpus_sig: object

    @property
    def token(self):
        """A short, *process-stable* hex token over the fingerprint.

        The persistent result store keys files on this, so it must not
        depend on per-process ``PYTHONHASHSEED`` the way ``hash()``
        does.  Every field reprs deterministically (rule reprs, tuples,
        the corpus content digest), so a SHA-256 over the combined repr
        is stable across processes and runs.
        """
        token = self.__dict__.get("_token")
        if token is None:
            import hashlib

            payload = repr(
                (self.bases, self.constraints, self.upstream, self.corpus_sig)
            )
            token = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
            self.__dict__["_token"] = token
        return token


@dataclass
class _CacheEntry:
    fingerprint: _Fingerprint
    table: object


class RuleCache:
    """Per-predicate compact-table cache for cross-iteration reuse.

    Entries are keyed ``(predicate name, partition id)``.  Partition
    ``None`` holds the whole-corpus table — the only key serial
    execution uses, and always written so results reuse across worker
    configurations.  Parallel execution additionally keys the
    document-local predicates per corpus partition, so the
    constraints-commute incremental path applies partition by partition.

    With a ``store`` (a :class:`~repro.columnar.results.ResultStore`),
    entries additionally hydrate from and spill to disk by fingerprint
    token: a fresh process over an unchanged plan and corpus re-serves
    persisted partition tables instead of re-extracting (counted in
    ``store_hits``).
    """

    def __init__(self, store=None):
        self._entries = {}
        #: optional persistent backing store shared across processes
        self.store = store
        self.full_hits = 0
        self.incremental_hits = 0
        self.misses = 0
        self.store_hits = 0

    def get(self, name, partition=None):
        return self._entries.get((name, partition))

    def put(self, name, fingerprint, table, partition=None):
        self._entries[(name, partition)] = _CacheEntry(fingerprint, table)

    def __len__(self):
        return len(self._entries)


def _split_rule(rule):
    """``(base_repr, constraints)`` — constraints in body order."""
    body = tuple(a for a in rule.body if not isinstance(a, ConstraintAtom))
    constraints = tuple(
        (a.var.name, a.feature, repr(a.value))
        for a in rule.body
        if isinstance(a, ConstraintAtom)
    )
    return repr(Rule(rule.head, body)), constraints


class _PolicyDriver:
    """Applies ``ExecConfig.on_error`` around whole-execution attempts.

    Best-effort fault tolerance works by *quarantine and re-run*: when
    an attempt dies on a document-attributable
    :class:`~repro.errors.ExecutionFailure`, the offending document is
    excluded from the engine's active corpus and the execution restarts.
    The surviving result is therefore literally a clean run over the
    corpus minus the quarantined documents — the byte-identical
    invariant holds by construction, on every scheduler backend, for
    global plans and joins included.  Cost is bounded by k+1 attempts
    for k poisoned documents, and the engine-level Verify/Refine caches
    stay warm across attempts, so re-runs mostly replay memoized work.

    ``retry`` re-runs the *same* corpus first: each failure site (doc,
    operator, feature/predicate, exception class) gets up to
    ``max_retries`` attempts with capped exponential backoff before the
    document is quarantined as under ``skip``.  Failures with no
    document attribution — and :class:`PartitionTimeout`, where the
    guilty document is unknown — always surface, whatever the policy.
    """

    def __init__(self, engine):
        config = engine.config
        policy = getattr(config, "on_error", "fail-fast")
        if policy not in ERROR_POLICIES:
            raise ValueError(
                "unknown error policy %r (choose from %s)"
                % (policy, ", ".join(ERROR_POLICIES))
            )
        self.engine = engine
        self.policy = policy
        self.max_retries = max(0, int(getattr(config, "max_retries", 2)))
        self.backoff = getattr(config, "retry_backoff", 0.05)
        self.report = ExecutionReport(policy=policy)
        self._attempts = {}  # failure site_key -> retries consumed

    def run(self, attempt):
        while True:
            try:
                return attempt()
            except ExecutionFailure as failure:
                self._handle(failure)

    def finish(self, result):
        """Stamp the report onto a completed result."""
        result.report = self.report
        result.stats.failures += len(self.report.records)
        result.stats.retries += self.report.retries
        return result

    def _handle(self, failure):
        if self.policy == "fail-fast":
            raise failure
        if failure.doc_id is None or isinstance(failure, PartitionTimeout):
            # not attributable to one document: quarantining cannot help
            raise failure
        retries_used = 0
        if self.policy == "retry":
            key = failure.site_key()
            retries_used = self._attempts.get(key, 0)
            if retries_used < self.max_retries:
                self._attempts[key] = retries_used + 1
                self.report.retries += 1
                if self.backoff:
                    time.sleep(min(self.backoff * (2 ** retries_used), 2.0))
                logger.debug(
                    "retrying after failure at %r (attempt %d/%d)",
                    key,
                    retries_used + 1,
                    self.max_retries,
                )
                return
        self.engine._exclude_document(failure.doc_id)
        self.report.records.append(failure.to_record(retry_count=retries_used))
        logger.warning("quarantined document %r: %s", failure.doc_id, failure)


class IFlexEngine:
    """Approximate executor for one program over one corpus.

    With ``validate=True`` (the default) the static analyzer runs over
    the program before any plan is compiled, so a defective program
    fails up front with the classic exception types instead of half-way
    through an expensive extraction.  Pass ``validate=False`` when the
    program was already linted (the CLI does) or when executing a
    deliberately partial program.
    """

    def __init__(
        self,
        program,
        corpus,
        features=None,
        config=None,
        validate=True,
        index_store=None,
        eval_cache=None,
        tracer=None,
        metrics=None,
    ):
        self.program = program
        self.corpus = corpus
        self.features = features
        self.config = config or ExecConfig()
        #: optional :class:`~repro.observability.spans.Tracer`; when set,
        #: executions run their plans traced and emit engine, plan,
        #: operator, partition, and scheduler spans
        self.tracer = tracer
        #: optional :class:`~repro.observability.metrics.MetricsRegistry`;
        #: every completed execution folds its (backend-deterministic)
        #: counters into it
        self.metrics = metrics
        # Verify/Refine acceleration state, shared by every execution of
        # this engine (and across engines when the caller passes its own
        # — the assistant session shares one pair session-wide).  Both
        # are keyed by immutable document content, so sharing never
        # changes results.
        if getattr(self.config, "use_index", True):
            if index_store is not None:
                self.index_store = index_store
            else:
                self.index_store = IndexStore(columnar=self._make_columnar())
            self._prepare_artifacts()
        else:
            self.index_store = None
        if getattr(self.config, "use_eval_cache", True):
            self.eval_cache = eval_cache if eval_cache is not None else EvalCache()
        else:
            self.eval_cache = None
        self.lint_result = None
        if validate:
            self.lint_result = self._validate()
        self.unfolded = unfold_program(program)
        # recursion safety is classified on the *original* program (the
        # unfolded one has IE atoms inlined away); reuse the analyzer's
        # stratification when validation ran instead of re-analyzing
        stratification = getattr(self.lint_result, "stratification", None)
        if stratification is None:
            stratification = _stratification_for(program)
        self.order = evaluation_order(
            self.unfolded, stratification=stratification
        )
        #: the groups the semi-naive fixpoint loop evaluates (multi-member
        #: components plus self-recursive singletons)
        self.recursive_groups = frozenset(
            group
            for group in self.order
            if len(group) > 1 or self._self_recursive(group[0])
        )
        #: documents quarantined by the error policy; the *active*
        #: corpus (what executions actually see) excludes them
        self.excluded_docs = set()
        self._active = self.corpus
        self.physical = self._make_physical()
        from repro.columnar.results import ResultStore

        #: persistent partition-result store per ``config.result_cache``
        #: (``None`` disables the delta execution path entirely)
        self.result_store = ResultStore.from_config(self.config)
        #: the store-backed cache :meth:`execute` uses when the caller
        #: passes none of its own; created lazily, reused across runs
        self._default_cache = None
        #: predicate -> may its table be persisted?  Procedural atoms
        #: (p-predicates / p-functions) are Python callables invisible
        #: to rule reprs, so any predicate that invokes one — directly
        #: or through an upstream intensional — must never be served
        #: from disk, where the same name may be bound to other code.
        self._persistable = self._persistable_predicates()
        self._docs_map = None

    @property
    def active_corpus(self):
        """The corpus minus quarantined documents."""
        return self._active

    def _exclude_document(self, doc_id):
        """Quarantine one document and rebuild the partitioned view."""
        self.excluded_docs.add(doc_id)
        self._active = self.corpus.without(self.excluded_docs)
        self.physical = self._make_physical()
        self._docs_map = None

    def rebind_corpus(self, corpus=None, edited_docs=()):
        """Re-point this resident engine at a mutated (or new) corpus.

        The engine-as-library entry point the service's ingestion path
        uses: shared acceleration state (index store, eval cache,
        columnar store, result store, the default rule cache) stays
        resident — reuse fingerprints are content-addressed, so stale
        entries simply miss — while everything derived from the corpus
        *view* (active corpus, partitioning, the doc-id decode map) is
        rebuilt.  ``edited_docs`` names documents replaced *in place*
        (same id, new content): their content-keyed cache entries are
        the one thing content addressing cannot age out, so they are
        invalidated explicitly.  Quarantined documents stay quarantined.
        """
        if corpus is not None:
            self.corpus = corpus
        if edited_docs:
            if self.index_store is not None:
                self.index_store.invalidate(edited_docs)
            if self.eval_cache is not None:
                self.eval_cache.invalidate_docs(edited_docs)
        self._active = (
            self.corpus.without(self.excluded_docs)
            if self.excluded_docs
            else self.corpus
        )
        self.physical = self._make_physical()
        self._docs_map = None
        if self.index_store is not None:
            self._prepare_artifacts()
        return self

    def _make_columnar(self):
        """A columnar store honouring ``config.artifact_cache``."""
        from repro.columnar import ColumnarStore

        return ColumnarStore(
            cache_dir=getattr(self.config, "artifact_cache", None)
        )

    def _prepare_artifacts(self):
        """Build-or-map the corpus's columnar bundle when caching is on.

        Only an explicit ``artifact_cache`` triggers eager preparation:
        it pays one corpus pass up front so warm starts map the bundle
        and forked workers receive ``(path, digest)`` refs instead of
        rebuilding.  Without a cache directory, columns stay lazy —
        built per document on first Verify/Refine, exactly as cheap as
        before.
        """
        store = getattr(self.index_store, "columnar", None)
        if store is None or store.cache_dir is None:
            return
        seen = set()
        docs = []
        for name in self.corpus.table_names():
            for doc in self.corpus.table(name):
                if doc.doc_id not in seen:
                    seen.add(doc.doc_id)
                    docs.append(doc)
        if docs:
            store.prepare(docs)

    def _make_physical(self):
        """The physical execution layer, or None on the serial path.

        With one worker the engine executes plans directly (the original
        single-threaded code path, byte for byte); with more — or with
        ``partition_docs`` chunking configured, as the resident service
        does — it routes every plan through
        :class:`~repro.processor.physical.PhysicalExecutor`.
        """
        if getattr(self.config, "workers", 1) <= 1 and not getattr(
            self.config, "partition_docs", None
        ):
            return None
        from repro.processor.physical import PhysicalExecutor

        return PhysicalExecutor(
            self.unfolded,
            self._active,
            self.features,
            self.config,
            index_store=self.index_store,
            tracer=self.tracer,
        )

    def _self_recursive(self, name):
        """Does any of ``name``'s rules reference ``name`` in its body?"""
        return any(
            atom.name == name
            for rule in self.unfolded.rules_for(name)
            for atom in rule.body_atoms(PredicateAtom)
        )

    def _persistable_predicates(self):
        """``{name: bool}`` — which predicates may persist to disk.

        A recursive group shares one verdict: its members derive from
        each other, so if any member touches procedural code the whole
        group must stay off disk.
        """
        procedural = set(self.unfolded.p_predicates) | set(
            self.unfolded.p_functions
        )
        persistable = {}
        for group in self.order:
            clean = True
            for name in group:
                for rule in self.unfolded.rules_for(name):
                    for atom in rule.body_atoms(PredicateAtom):
                        if atom.name in procedural:
                            clean = False
                        elif (
                            atom.name in self.unfolded.intensional
                            and atom.name not in group
                        ):
                            clean = clean and persistable.get(atom.name, True)
            for name in group:
                persistable[name] = clean
        return persistable

    def _docs_by_id(self):
        """``doc_id -> Document`` over the active corpus (decode target)."""
        if self._docs_map is None:
            docs = {}
            for name in self._active.table_names():
                for doc in self._active.table(name):
                    docs[doc.doc_id] = doc
            self._docs_map = docs
        return self._docs_map

    def _partitioned_path(self, name):
        """Does this predicate route through the partition-keyed cache?"""
        return (
            self.physical is not None
            and self.physical.parallel
            and self.physical.fully_local(name)
        )

    def _context(self):
        """A fresh whole-corpus execution context on the shared stores."""
        return ExecutionContext(
            self.unfolded,
            self._active,
            self.features,
            self.config,
            index_store=self.index_store,
            eval_cache=self.eval_cache,
            tracer=self.tracer,
        )

    def _span(self, name, category, **attrs):
        """A tracer span, or a no-op context when tracing is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, category, **attrs)

    def _validate(self):
        """Analyze the program; raise on the first error diagnostic.

        Errors map onto the historical exception types so existing
        callers keep their ``except`` clauses: unsafe rules raise
        :class:`SafetyError`, unresolved predicates
        :class:`UnknownPredicateError`, unknown features
        :class:`UnknownFeatureError`; anything else raises
        :class:`ProgramLintError` carrying the full diagnostic list.
        Warnings never block execution — the result is kept on
        ``self.lint_result`` for callers that surface them.
        """
        from repro.analysis import analyze_program

        result = analyze_program(self.program, registry=self.features, plan=True)
        for diagnostic in result.errors:
            exc_type = _LEGACY_ERROR_TYPES.get(diagnostic.code)
            if exc_type is not None:
                raise exc_type(diagnostic.message)
            raise ProgramLintError(diagnostic.message, result.diagnostics)
        return result

    # ------------------------------------------------------------------
    def execute(self, cache=None):
        """Run the program; returns an :class:`ExecutionResult`.

        The configured error policy (``ExecConfig.on_error``) is applied
        around the whole execution: under ``skip`` / ``retry`` a
        document-attributable failure quarantines the document and
        re-runs, and the result carries an
        :class:`~repro.errors.ExecutionReport` describing every
        contained incident (``result.report``).

        With a configured ``result_cache`` and no caller-supplied
        ``cache``, executions run against an engine-owned store-backed
        :class:`RuleCache`, so warm processes hydrate unchanged
        partition results from disk and recompute only dirty ones.
        """
        if cache is None and self.result_store is not None:
            if self._default_cache is None:
                self._default_cache = RuleCache(store=self.result_store)
            cache = self._default_cache
        driver = _PolicyDriver(self)
        with self._span(
            "execute", "engine", policy=driver.policy, query=self.unfolded.query
        ):
            result = driver.finish(driver.run(lambda: self._execute_attempt(cache)))
        if self.metrics is not None:
            from repro.observability.metrics import record_execution

            record_execution(self.metrics, result)
        return result

    def _execute_attempt(self, cache=None):
        """One uninterrupted execution over the active corpus."""
        start = time.perf_counter()
        context = self._context()
        tokens = {}
        reuse_summary = {}
        for group in self.order:
            if group in self.recursive_groups:
                self._execute_fixpoint(group, context, cache, tokens, reuse_summary)
                continue
            name = group[0]
            fingerprint = self._fingerprint(name, tokens)
            table = None
            kind = None
            with self._span("predicate:%s" % name, "plan", predicate=name):
                if cache is not None:
                    entry = cache.get(name)
                    if entry is not None and entry.fingerprint.token == fingerprint.token:
                        table = entry.table
                        kind = "full"
                    elif self._partitioned_path(name):
                        table, kind = self._execute_partitioned(name, context, cache)
                    else:
                        if cache.store is not None and self._persistable[name]:
                            table = self._store_load(cache, context, fingerprint)
                            if table is not None:
                                kind = "full"
                        if table is None and entry is not None:
                            table = self._incremental(
                                name, entry, fingerprint, context
                            )
                            if table is not None:
                                kind = "incremental"
                if table is None:
                    table = self._execute_plan(name, context)
                    kind = "computed"
            reuse_summary[name] = kind
            context.relations[name] = table
            tokens[name] = fingerprint.token
            if cache is not None:
                if kind == "full":
                    cache.full_hits += 1
                elif kind == "incremental":
                    cache.incremental_hits += 1
                else:
                    cache.misses += 1
                cache.put(name, fingerprint, table)
                if (
                    kind == "computed"
                    and cache.store is not None
                    and self._persistable[name]
                    and not self._partitioned_path(name)
                ):
                    # partitioned predicates persist per partition slice
                    # (inside _execute_partitioned); spilling the merged
                    # table too would short-circuit the delta path on
                    # warm runs
                    cache.store.save(fingerprint.token, table)
            logger.debug(
                "%s: %d tuples, %d assignments (%s)",
                name,
                table.tuple_count(),
                table.assignment_count(),
                kind,
            )
        elapsed = time.perf_counter() - start
        return ExecutionResult(
            query_table=context.relations[self.unfolded.query],
            tables=dict(context.relations),
            stats=context.stats,
            elapsed=elapsed,
            reuse_summary=reuse_summary,
        )

    def _execute_plan(self, name, context):
        """One predicate's table: direct on the serial path, partitioned

        through the physical layer when workers > 1.  With a tracer the
        plan runs through the operator-tracing decorator and the
        collected rows become nested operator spans, so ``--trace-out``
        runs carry per-operator timing without the caller asking for
        ``explain_analyze``.
        """
        if self.tracer is not None:
            from repro.observability.spans import spans_from_traces
            from repro.processor.tracing import trace_plan

            if self.physical is not None:
                table, traces = self.physical.execute_plan_traced(name, context)
            else:
                traced = trace_plan(compile_predicate(name, self.unfolded))
                table = traced.execute(context)
                traces = traced.collect()
            spans_from_traces(traces, self.tracer)
            return table
        if self.physical is not None:
            return self.physical.execute_plan(name, context)
        return compile_predicate(name, self.unfolded).execute(context)

    # -- semi-naive fixpoint over recursive groups ---------------------

    def _group_tokens(self, group, tokens):
        """Content-addressed reuse tokens for one recursive group.

        A predicate's fingerprint normally embeds the tokens of its
        upstream intensionals, which is circular inside a recursive
        component.  The group digest breaks the cycle: one SHA-256 over
        every member's split rules, the tokens of all out-of-group
        upstream intensionals, and the corpus content signature; each
        member's token is that digest salted with its own name, so the
        per-member fingerprints (and the persistent store keys derived
        from them) stay process-stable.
        """
        import hashlib

        payload = []
        upstream = set()
        for member in group:
            for rule in self.unfolded.rules_for(member):
                base, cons = _split_rule(rule)
                payload.append((member, base, cons))
                for atom in rule.body_atoms(PredicateAtom):
                    if (
                        atom.name in self.unfolded.intensional
                        and atom.name not in group
                    ):
                        upstream.add((atom.name, tokens.get(atom.name)))
        digest = hashlib.sha256(
            repr(
                (
                    tuple(payload),
                    tuple(sorted(upstream)),
                    ("content", self._active.content_digest),
                )
            ).encode("utf-8")
        ).hexdigest()
        for member in group:
            tokens[member] = hashlib.sha256(
                ("%s:%s" % (digest, member)).encode("utf-8")
            ).hexdigest()[:24]

    def _execute_fixpoint(self, group, context, cache, tokens, reuse_summary):
        """Evaluate one recursive group, against the caches first.

        Fixpoint results reuse only wholesale: the members of a
        component derive from each other, so either every member's table
        comes back (memory or store) under its current fingerprint, or
        the whole group recomputes.  The constraints-commute incremental
        path deliberately does not apply — a constraint added to a
        recursive rule changes which tuples *feed back*, not merely
        which survive a final filter.  Returns ``(kind, iterations)``
        (iterations is ``None`` on a cache hit).
        """
        self._group_tokens(group, tokens)
        fingerprints = {m: self._fingerprint(m, tokens) for m in group}
        label = "+".join(group)
        with self._span("fixpoint:%s" % label, "plan", predicates=label):
            tables = None
            iterations = None
            if cache is not None:
                tables = self._fixpoint_reuse(group, fingerprints, cache, context)
            if tables is not None:
                kind = "full"
            else:
                kind = "computed"
                tables, iterations = self._run_fixpoint(group, context)
        for member in group:
            reuse_summary[member] = kind
            context.relations[member] = tables[member]
            if cache is not None:
                if kind == "full":
                    cache.full_hits += 1
                else:
                    cache.misses += 1
                cache.put(member, fingerprints[member], tables[member])
                if (
                    kind == "computed"
                    and cache.store is not None
                    and self._persistable[member]
                ):
                    cache.store.save(fingerprints[member].token, tables[member])
            logger.debug(
                "%s: %d tuples, %d assignments (%s, fixpoint group %s)",
                member,
                tables[member].tuple_count(),
                tables[member].assignment_count(),
                kind,
                label,
            )
        return kind, iterations

    def _fixpoint_reuse(self, group, fingerprints, cache, context):
        """Hydrate a whole recursive group from the caches, or ``None``."""
        tables = {}
        for member in group:
            fingerprint = fingerprints[member]
            entry = cache.get(member)
            if entry is not None and entry.fingerprint.token == fingerprint.token:
                tables[member] = entry.table
                continue
            if cache.store is not None and self._persistable[member]:
                table = self._store_load(cache, context, fingerprint)
                if table is not None:
                    tables[member] = table
                    continue
            return None
        return tables

    def _run_fixpoint(self, group, context):
        """The semi-naive loop: iterate one recursive group to fixpoint.

        Iteration 1 evaluates every rule against empty group relations
        (recursive rules contribute nothing; base rules seed the
        totals).  Later iterations evaluate only rules that can derive
        something new: a rule with exactly one in-group atom runs with
        that relation bound to the previous iteration's *delta*
        (semi-naive — every new derivation must use a new tuple there),
        a rule with several in-group atoms re-runs naively whenever any
        of its inputs grew, and base rules never re-run.  Derived tuples
        deduplicate against everything already seen by canonical tuple
        key (:func:`repro.ctables.keys.tuple_key`) — the fixed-point
        test is "this iteration's delta is empty", i.e. the canonical
        table key stopped changing.  Updates install Jacobi-style, after
        the whole iteration, so results never depend on member order;
        iteration over members and tuples follows deterministic list
        order, which is what keeps results byte-identical across
        scheduler backends (the loop runs in the coordinating process on
        every backend — recursive plans scan intensional tables, so they
        are never document-local).

        Returns ``({member: table}, iterations)`` or raises an
        :class:`~repro.errors.ExecutionFailure` (operator ``Fixpoint``,
        no document attribution, so every error policy surfaces it) when
        ``config.max_fixpoint_iterations`` is reached while deltas are
        still non-empty.
        """
        from repro.ctables.ctable import CompactTable
        from repro.ctables.keys import tuple_key
        from repro.processor.plan import compile_rule

        group_set = set(group)
        plans = {}
        attrs = {}
        for member in group:
            rule_plans = []
            for rule in self.unfolded.rules_for(member):
                plan = compile_rule(rule, self.unfolded)
                targets = tuple(
                    atom.name
                    for atom in rule.body_atoms(PredicateAtom)
                    if atom.name in group_set
                )
                rule_plans.append((plan, targets))
            plans[member] = rule_plans
            attrs[member] = rule_plans[0][0].attrs
        totals = {m: CompactTable(attrs[m]) for m in group}
        deltas = dict(totals)
        seen = {m: set() for m in group}
        for member in group:
            context.relations[member] = totals[member]
        limit = max(1, int(getattr(self.config, "max_fixpoint_iterations", 100)))
        iterations = 0
        while True:
            iterations += 1
            context.stats.fixpoint_iterations += 1
            fresh = {}
            for member in group:
                new_table = CompactTable(attrs[member])
                for plan, targets in plans[member]:
                    if iterations == 1:
                        produced = plan.execute(context)
                    elif not targets:
                        continue  # base rule: already accumulated
                    elif all(not deltas[t].tuples for t in set(targets)):
                        continue  # no input grew: nothing new derivable
                    elif len(targets) == 1:
                        produced = self._with_relation(
                            context, targets[0], deltas[targets[0]], plan
                        )
                    else:
                        produced = plan.execute(context)
                    for tup in produced.tuples:
                        key = tuple_key(tup)
                        if key in seen[member]:
                            continue
                        seen[member].add(key)
                        new_table.add(tup)
                fresh[member] = new_table
            # Jacobi update: every rule above ran against the previous
            # totals/deltas; install the new deltas only once the whole
            # iteration is done (Gauss-Seidel would make results depend
            # on member order within the group)
            converged = all(not fresh[m].tuples for m in group)
            for member in group:
                deltas[member] = fresh[member]
                if fresh[member].tuples:
                    totals[member] = CompactTable.union(
                        [totals[member], fresh[member]], attrs=attrs[member]
                    )
                    context.relations[member] = totals[member]
            if converged:
                return totals, iterations
            if iterations >= limit:
                growing = [m for m in group if fresh[m].tuples]
                raise ExecutionFailure(
                    "recursive group (%s) did not reach a fixpoint within "
                    "%d iteration(s) (max_fixpoint_iterations); still "
                    "deriving new tuples for: %s"
                    % (", ".join(group), limit, ", ".join(growing)),
                    operator="Fixpoint",
                    predicate=",".join(group),
                )

    def _with_relation(self, context, name, table, plan):
        """Execute ``plan`` with one relation temporarily rebound."""
        saved = context.relations[name]
        context.relations[name] = table
        try:
            return plan.execute(context)
        finally:
            context.relations[name] = saved

    def _execute_partitioned(self, name, context, cache):
        """A fully document-local predicate with a partition-keyed cache.

        Each corpus partition gets its own fingerprint (same rules, the
        partition's corpus signature) and its own full-hit / incremental
        / compute decision; only partitions that could not be reused are
        re-extracted, on the scheduler.  Returns ``(merged table, kind)``
        where ``kind`` summarises the weakest reuse across partitions.

        Fully-local plans never scan intensional tables (joins over them
        are global by construction), so the partition fingerprints need
        no upstream tokens.
        """
        store, fingerprints, tables, kinds, missing = self._partition_reuse(
            name, context, cache
        )
        if missing:
            computed = self.physical.execute_local_partitions(name, missing)
            for pid, (table, stats) in zip(missing, computed):
                tables[pid] = table
                kinds[pid] = "computed"
                context.stats.merge(stats)
        return self._finish_partitions(
            name, cache, store, fingerprints, tables, kinds
        )

    def _explain_partitioned(self, name, context, cache):
        """The partitioned reuse path under operator tracing.

        Clean partitions hydrate exactly as in :meth:`_execute_partitioned`;
        only the dirty ones execute (traced), so the report measures the
        work a warm run actually performs.  Returns ``(merged table,
        kind, traces-or-None, reused partition count)``.
        """
        from repro.processor.tracing import merge_traces

        store, fingerprints, tables, kinds, missing = self._partition_reuse(
            name, context, cache
        )
        traces = None
        if missing:
            computed = self.physical.execute_local_partitions_traced(name, missing)
            for pid, (table, stats, _) in zip(missing, computed):
                tables[pid] = table
                kinds[pid] = "computed"
                context.stats.merge(stats)
            traces = merge_traces([collected for _, _, collected in computed])
        table, kind = self._finish_partitions(
            name, cache, store, fingerprints, tables, kinds
        )
        return table, kind, traces, len(tables) - len(missing)

    def _partition_reuse(self, name, context, cache):
        """Resolve every partition against the reuse caches.

        Returns ``(store, fingerprints, tables, kinds, missing)`` where
        ``missing`` lists the partition ids the caller must re-execute
        (``tables``/``kinds`` are ``None`` at those slots).
        """
        partitions = self.physical.partitions
        persistable = self._persistable[name]
        store = cache.store if persistable else None
        tables = [None] * len(partitions)
        kinds = [None] * len(partitions)
        fingerprints = []
        missing = []
        for pid, partition in enumerate(partitions):
            fingerprint = self._fingerprint(
                name, {}, corpus_sig=("content", partition.content_digest)
            )
            fingerprints.append(fingerprint)
            entry = cache.get(name, partition=pid)
            if entry is not None and entry.fingerprint.token == fingerprint.token:
                tables[pid] = entry.table
                kinds[pid] = "full"
                continue
            if store is not None:
                table = self._store_load(cache, context, fingerprint)
                if table is not None:
                    tables[pid] = table
                    kinds[pid] = "full"
                    continue
            if entry is not None:
                table = self._incremental(name, entry, fingerprint, context)
                if table is not None:
                    tables[pid] = table
                    kinds[pid] = "incremental"
                    continue
            missing.append(pid)
        # the delta accounting: clean partitions fold in from cache,
        # dirty ones (content digest moved, or cold) re-execute
        context.stats.partitions_reused += len(partitions) - len(missing)
        context.stats.partitions_recomputed += len(missing)
        return store, fingerprints, tables, kinds, missing

    def _finish_partitions(self, name, cache, store, fingerprints, tables, kinds):
        """Cache, spill, and fold the per-partition tables."""
        from repro.ctables.ctable import CompactTable

        for pid in range(len(tables)):
            cache.put(name, fingerprints[pid], tables[pid], partition=pid)
            if store is not None and kinds[pid] == "computed":
                store.save(fingerprints[pid].token, tables[pid])
        attrs = self.physical.split(name).root.attrs
        merged = CompactTable.union(tables, attrs=attrs)
        if "computed" in kinds:
            kind = "computed"
        elif "incremental" in kinds:
            kind = "incremental"
        else:
            kind = "full"
        return merged, kind

    def explain(self):
        """The compiled plan for every predicate, as text."""
        parts = []
        for group in self.order:
            recursive = group in self.recursive_groups
            for name in group:
                plan = compile_predicate(name, self.unfolded)
                header = (
                    "%s (semi-naive fixpoint group: %s)"
                    % (name, " + ".join(group))
                    if recursive
                    else name
                )
                parts.append("%s:\n%s" % (header, plan.explain(1)))
        return "\n".join(parts)

    def explain_analyze(self):
        """Execute with operator-level tracing; returns

        ``(ExecutionResult, report_text)`` — EXPLAIN ANALYZE for plans.
        Under parallel execution the per-partition measurements of the
        document-local prefix are merged (counts sum to the serial
        counts) and reported nested under the suffix's gather leaves, so
        cost still attributes to individual operators.  The error policy
        applies exactly as in :meth:`execute`; contained failures are
        appended to the text report.

        With a configured ``result_cache`` the reuse chain also applies
        exactly as in :meth:`execute`: clean partitions hydrate from the
        store (reported as such, with no operator rows — hydration runs
        no operators) and only dirty partitions execute and are
        measured, so the report describes the work a warm run actually
        performs; computed results spill to the store as usual.  Without
        a result cache the historical cold measurement is unchanged.
        """
        from repro.processor.tracing import render_failures

        driver = _PolicyDriver(self)
        with self._span(
            "explain_analyze", "engine", policy=driver.policy, query=self.unfolded.query
        ):
            result, text = driver.run(self._explain_analyze_attempt)
            driver.finish(result)
        if self.metrics is not None:
            from repro.observability.metrics import record_execution

            record_execution(self.metrics, result)
        failure_text = render_failures(result.report)
        if failure_text:
            text = "%s\n\n%s" % (text, failure_text)
        return result, text

    def _explain_analyze_attempt(self):
        from repro.processor.tracing import render_cache_summary, render_traces, trace_plan

        cache = None
        if self.result_store is not None:
            if self._default_cache is None:
                self._default_cache = RuleCache(store=self.result_store)
            cache = self._default_cache
        start = time.perf_counter()
        context = self._context()
        tokens = {}
        reports = []
        for group in self.order:
            if group in self.recursive_groups:
                kind, iterations = self._execute_fixpoint(
                    group, context, cache, tokens, {}
                )
                label = " + ".join(group)
                if kind == "full":
                    reports.append(
                        "%s: recursive group reused from the result cache"
                        % label
                    )
                else:
                    reports.append(
                        "%s: recursive group evaluated semi-naively to "
                        "fixpoint in %d iteration(s)" % (label, iterations)
                    )
                continue
            name = group[0]
            with self._span("predicate:%s" % name, "plan", predicate=name):
                fingerprint = (
                    self._fingerprint(name, tokens) if cache is not None else None
                )
                table = None
                kind = "computed"
                report = None
                traces = None
                if cache is not None:
                    entry = cache.get(name)
                    if (
                        entry is not None
                        and entry.fingerprint.token == fingerprint.token
                    ):
                        table, kind = entry.table, "full"
                        report = "%s: reused from the in-memory cache" % name
                    elif self._partitioned_path(name):
                        table, kind, traces, reused = self._explain_partitioned(
                            name, context, cache
                        )
                        if traces is None:
                            report = (
                                "%s: all %d partition(s) hydrated from the "
                                "result cache" % (name, reused)
                            )
                        elif reused:
                            report = (
                                "%s:\n%s\n(%d clean partition(s) hydrated from"
                                " the result cache; traces cover the"
                                " recomputed ones)"
                                % (name, render_traces(traces), reused)
                            )
                        else:
                            report = "%s:\n%s" % (name, render_traces(traces))
                    elif cache.store is not None and self._persistable[name]:
                        hydrated = self._store_load(cache, context, fingerprint)
                        if hydrated is not None:
                            table, kind = hydrated, "full"
                            report = "%s: hydrated from the result cache" % name
                if table is None:
                    if self.physical is not None:
                        table, traces = self.physical.execute_plan_traced(
                            name, context
                        )
                    else:
                        traced = trace_plan(compile_predicate(name, self.unfolded))
                        table = traced.execute(context)
                        traces = traced.collect()
                    report = "%s:\n%s" % (name, render_traces(traces))
                context.relations[name] = table
                reports.append(report)
                if cache is not None:
                    tokens[name] = fingerprint.token
                    cache.put(name, fingerprint, table)
                    if (
                        kind == "computed"
                        and cache.store is not None
                        and self._persistable[name]
                        and not self._partitioned_path(name)
                    ):
                        cache.store.save(fingerprint.token, table)
                if self.tracer is not None and traces is not None:
                    from repro.observability.spans import spans_from_traces

                    spans_from_traces(traces, self.tracer)
        reports.append(render_cache_summary(context.stats))
        elapsed = time.perf_counter() - start
        result = ExecutionResult(
            query_table=context.relations[self.unfolded.query],
            tables=dict(context.relations),
            stats=context.stats,
            elapsed=elapsed,
        )
        return result, "\n\n".join(reports)

    def _store_load(self, cache, context, fingerprint):
        """One persistent-store lookup, with hit/miss accounting.

        Returns the hydrated table or ``None``; corrupt and stale
        entries count as misses (the store logs and the caller
        recomputes — same contract as the columnar bundles).
        """
        table = cache.store.load(fingerprint.token, self._docs_by_id())
        if table is None:
            context.stats.result_cache_misses += 1
            return None
        context.stats.result_cache_hits += 1
        cache.store_hits += 1
        return table

    # ------------------------------------------------------------------
    def _fingerprint(self, name, tokens, corpus_sig=None):
        """The predicate's reuse fingerprint.

        The default corpus signature is the active corpus's *content*
        digest — doc ids alone would serve stale results after an
        in-place document edit, which the persistent store must never
        do.  ``corpus_sig`` overrides it for partition-keyed entries
        (the partitioned path fingerprints each corpus slice
        separately).
        """
        rules = self.unfolded.rules_for(name)
        bases = []
        constraints = []
        upstream = []
        for rule in rules:
            base, cons = _split_rule(rule)
            bases.append(base)
            constraints.append(cons)
            for atom in rule.body_atoms(PredicateAtom):
                if atom.name in self.unfolded.intensional:
                    # every upstream token is set by evaluation order;
                    # .get only matters on cacheless explain paths where
                    # the fingerprint is never consulted
                    upstream.append((atom.name, tokens.get(atom.name)))
        return _Fingerprint(
            bases=tuple(bases),
            constraints=tuple(constraints),
            upstream=tuple(sorted(set(upstream))),
            corpus_sig=(
                ("content", self._active.content_digest)
                if corpus_sig is None
                else corpus_sig
            ),
        )

    def _incremental(self, name, entry, fingerprint, context):
        """Apply added-constraint deltas to a cached table, or None."""
        old, new = entry.fingerprint, fingerprint
        if (
            old.bases != new.bases
            or old.upstream != new.upstream
            or old.corpus_sig != new.corpus_sig
            or len(old.constraints) != len(new.constraints)
        ):
            return None
        rules = self.unfolded.rules_for(name)
        if len(rules) != 1:
            # a multi-rule head unions tables from several rules; one
            # rule's new constraint must not filter another rule's
            # tuples, so fall back to a full recompute
            return None
        annotated = set(rules[0].annotations[1])
        table = entry.table
        table_attrs = set(table.attrs)
        deltas = []
        for old_cons, new_cons in zip(old.constraints, new.constraints):
            old_list = list(old_cons)
            for item in old_list:
                if item not in new_cons:
                    return None  # a constraint was removed: no reuse
            remaining = list(new_cons)
            for item in old_list:
                remaining.remove(item)
            for attr, feature, value_repr in remaining:
                if attr not in table_attrs:
                    return None  # constrained attr was projected away
                priors = [
                    (f, _unrepr(v)) for a, f, v in old_list if a == attr
                ]
                deltas.append((attr, feature, _unrepr(value_repr), priors))
        for attr, feature, value, priors in deltas:
            table = apply_constraint_to_table(
                table,
                attr,
                feature,
                value,
                priors,
                context,
                # constraints commute past psi for annotated attributes
                mark_maybe=attr not in annotated,
            )
        return table


def _unrepr(value_repr):
    """Recover a constraint value from its repr (str/int/float only)."""
    import ast

    return ast.literal_eval(value_repr)
