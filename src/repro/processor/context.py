"""Execution context and configuration for the approximate processor."""

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionFailure
from repro.features.index import IndexStore
from repro.features.registry import default_registry
from repro.text.span import Span

__all__ = [
    "ERROR_POLICIES",
    "EvalCache",
    "ExecConfig",
    "ExecutionContext",
    "ExecutionStats",
    "FeatureEvaluator",
]


@dataclass
class ExecConfig:
    """Caps and switches for approximate execution.

    enum_cap:
        Maximum values enumerated out of one cell when a comparison /
        p-function / ψ needs concrete values.  Hitting the cap degrades
        the operator to a conservative keep-as-maybe (superset-safe).
    ppredicate_cap:
        Maximum possible tuples a cleanup p-predicate is invoked over
        per compact tuple (section 4.1).
    blocking_joins:
        Enable token-blocking for similarity joins (the paper's
        approximate-string-join optimisation lives in its full version;
        token blocking is the standard equivalent).
    """

    enum_cap: int = 2_000
    #: Maximum value *combinations* one condition will test on a single
    #: tuple; beyond it the condition degrades to keep-as-maybe.
    pair_cap: int = 1_000
    ppredicate_cap: int = 5_000
    blocking_joins: bool = True
    #: Corpus partitions for the document-local plan prefix; 1 keeps the
    #: engine on the original single-threaded path.
    workers: int = 1
    #: Scheduler for per-partition work: ``serial`` | ``thread`` |
    #: ``process`` (see :mod:`repro.processor.schedulers`).
    backend: str = "serial"
    #: Documents per corpus partition (``Corpus.chunk``) instead of the
    #: default ``workers``-way split (``Corpus.partition``).  Chunk
    #: boundaries are positionally stable under ingestion — appending
    #: documents never moves an existing full chunk — which is what the
    #: resident service needs for "ingest k docs, recompute exactly the
    #: k affected partitions".  ``None`` keeps the historical split.
    partition_docs: object = None
    #: Consult per-document feature indexes for Verify/Refine (see
    #: :mod:`repro.features.index`); ``False`` forces the naive
    #: span-by-span path (the CLI's ``--no-index``).
    use_index: bool = True
    #: Memoize Verify/Refine results across constraint chains, rules and
    #: partitions (the :class:`EvalCache`).
    use_eval_cache: bool = True
    #: Evaluate a constraint over a cell's whole assignment multiset
    #: with the vectorized batch kernels (one array op per table pass)
    #: instead of a per-assignment loop; ``False`` forces the scalar
    #: path (the CLI's ``--no-batch``).  Results and statistics are
    #: identical either way.
    use_batch: bool = True
    #: Directory for persisted columnar artifacts (content-addressed
    #: ``.npy`` bundles, see :mod:`repro.columnar`); ``None`` keeps
    #: columns in memory only (the CLI's ``--artifact-cache``).
    artifact_cache: object = None
    #: Error policy for document-attributable failures (a feature or
    #: p-predicate raising on a malformed document): ``fail-fast``
    #: surfaces the enriched exception, ``skip`` quarantines the
    #: offending document and re-runs (result identical to a clean run
    #: over the corpus minus that document), ``retry`` retries the
    #: failing site with capped exponential backoff before skipping.
    #: See :data:`ERROR_POLICIES` and ``docs/robustness.md``.
    on_error: str = "fail-fast"
    #: Retry attempts per failure site under the ``retry`` policy.
    max_retries: int = 2
    #: Base backoff delay in seconds for ``retry`` (doubles per attempt,
    #: capped at 2s); 0 disables sleeping (deterministic tests).
    retry_backoff: float = 0.05
    #: Seconds one partition may run before the scheduler raises a
    #: :class:`~repro.errors.PartitionTimeout`; ``None`` means no limit.
    partition_timeout: object = None
    #: Directory (or a :class:`~repro.columnar.results.ResultStore`) for
    #: persisted partition results, keyed by (plan fingerprint, corpus
    #: content digest); ``None`` disables persistence (the CLI's
    #: ``--result-cache``).  Warm runs hydrate unchanged partitions from
    #: it instead of re-executing the local plan prefix.
    result_cache: object = None
    #: Master switch for the delta execution path; ``False`` ignores
    #: ``result_cache`` entirely (the CLI's ``--no-incremental``).
    incremental: bool = True
    #: Iteration cap for the semi-naive fixpoint loop over one recursive
    #: predicate group (the CLI's ``--max-fixpoint-iterations``).  Each
    #: iteration re-derives deltas for every group member; proving
    #: convergence costs one final empty iteration, so the cap must
    #: exceed the longest derivation chain by at least one.  Hitting it
    #: raises an :class:`~repro.errors.ExecutionFailure` (operator
    #: ``Fixpoint``) that surfaces under every error policy.
    max_fixpoint_iterations: int = 100


#: Valid ``ExecConfig.on_error`` values.
ERROR_POLICIES = ("fail-fast", "skip", "retry")


@dataclass
class ExecutionStats:
    """Counters the benchmarks and the assistant report on.

    ``verify_calls`` / ``refine_calls`` count *naive* feature
    evaluations actually performed; work answered by a per-document
    index counts under ``index_verify_calls`` / ``index_refine_calls``
    instead, and work answered from the :class:`EvalCache` counts only
    as a hit.  The total number of Verify requests the processor made
    is therefore ``verify_calls + index_verify_calls +
    verify_cache_hits`` (likewise for Refine).
    """

    verify_calls: int = 0
    refine_calls: int = 0
    index_verify_calls: int = 0
    index_refine_calls: int = 0
    #: spans answered through the vectorized batch kernels — a subset
    #: of ``index_verify_calls`` / ``index_refine_calls``, counted per
    #: *span* (not per batch call) so partitioned totals sum exactly to
    #: the serial totals
    verify_batch: int = 0
    refine_batch: int = 0
    verify_cache_hits: int = 0
    verify_cache_misses: int = 0
    refine_cache_hits: int = 0
    refine_cache_misses: int = 0
    tuples_built: int = 0
    values_enumerated: int = 0
    cap_hits: int = 0
    ppredicate_calls: int = 0
    #: documents quarantined by the error policy (``skip`` / exhausted
    #: ``retry``); matches ``len(ExecutionReport.records)``
    failures: int = 0
    #: retry attempts consumed by the ``retry`` policy
    retries: int = 0
    #: partitions whose local-prefix result came from cache (in-memory
    #: or persistent) instead of re-execution; ticks only when a reuse
    #: cache is active, so cacheless runs stay counter-identical across
    #: backends
    partitions_reused: int = 0
    #: partitions actually re-executed through the physical layer while
    #: a reuse cache was active (the delta path's "dirty" count)
    partitions_recomputed: int = 0
    #: persistent-store lookups that produced a usable table
    result_cache_hits: int = 0
    #: persistent-store lookups that missed (absent, stale, or corrupt)
    result_cache_misses: int = 0
    #: semi-naive fixpoint iterations across all recursive groups
    #: (including the final empty iteration that proves convergence);
    #: ticks in the coordinating process only, so the count is
    #: identical across scheduler backends
    fixpoint_iterations: int = 0

    def merge(self, other):
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


class EvalCache:
    """Memoized ``Verify``/``Refine`` results.

    Keys are ``(feature name, value, doc_id, start, end)`` — the span's
    interned identity, matching ``Span.__hash__``.  Results depend only
    on immutable document content, never on the program being executed,
    so one cache is sound across constraint chains, rules, engine runs,
    partitions, and assistant candidate simulations with nothing to
    invalidate.  Refine hints are stored as tuples (an empty result is a
    valid, cacheable answer).
    """

    __slots__ = ("verify", "refine")

    def __init__(self):
        self.verify = {}
        self.refine = {}

    def clear(self):
        self.verify.clear()
        self.refine.clear()

    def invalidate_docs(self, doc_ids):
        """Drop every entry for the given documents.

        The one case where "nothing to invalidate" breaks down: an
        in-place document *edit* (same ``doc_id``, new content), the
        resident service's upsert path.  Keys carry the doc id at
        position 2 (``(feature, value, doc_id, start, end)``).
        """
        doc_ids = set(doc_ids)
        for cache in (self.verify, self.refine):
            stale = [key for key in cache if key[2] in doc_ids]
            for key in stale:
                del cache[key]

    def __len__(self):
        return len(self.verify) + len(self.refine)


#: sentinel distinguishing "not cached" from cached falsy results
_MISSING = object()


class FeatureEvaluator:
    """Verify/Refine dispatch: :class:`EvalCache` → index → naive.

    Owns no policy beyond the lookup order; pass ``index_store`` /
    ``eval_cache`` as ``None`` to disable either layer.  ``stats``
    receives the counters (see :class:`ExecutionStats`).
    """

    __slots__ = ("index_store", "eval_cache", "stats")

    def __init__(self, index_store=None, eval_cache=None, stats=None):
        self.index_store = index_store
        self.eval_cache = eval_cache
        self.stats = stats if stats is not None else ExecutionStats()

    def verify_value(self, feature, value_obj, feature_value):
        """``Verify`` generalised to scalar cell values, accelerated."""
        if isinstance(value_obj, Span):
            return self.verify_span(feature, value_obj, feature_value)
        from repro.processor.constraints import verify_scalar

        self.stats.verify_calls += 1
        return verify_scalar(feature, value_obj, feature_value)

    def _cache_key(self, feature, span, feature_value):
        key = (feature.name, feature_value, span.doc.doc_id, span.start, span.end)
        try:
            hash(key)
        except TypeError:  # unhashable feature value: bypass the cache
            return None
        return key

    def verify_span(self, feature, span, feature_value):
        try:
            cache = self.eval_cache
            key = None
            if cache is not None:
                key = self._cache_key(feature, span, feature_value)
                if key is not None:
                    cached = cache.verify.get(key, _MISSING)
                    if cached is not _MISSING:
                        self.stats.verify_cache_hits += 1
                        return cached
                    self.stats.verify_cache_misses += 1
            result = None
            if self.index_store is not None:
                index = self.index_store.index_for(feature, span.doc)
                if index is not None:
                    result = index.verify(span, feature_value)
            if result is None:
                self.stats.verify_calls += 1
                result = feature.verify(span, feature_value)
            else:
                self.stats.index_verify_calls += 1
            if key is not None:
                cache.verify[key] = result
            return result
        except ExecutionFailure:
            raise
        except Exception as exc:
            # the failure channel: a raising feature (or index build over
            # a malformed document) becomes a document-attributable
            # ExecutionFailure the error policy can act on
            raise ExecutionFailure.wrap(
                exc,
                doc_id=span.doc.doc_id,
                operator="Verify",
                feature=feature.name,
            ) from exc

    def refine_span(self, feature, span, feature_value):
        """Refine hints for ``contain(span)`` as a tuple of
        ``(mode, span)`` pairs."""
        try:
            cache = self.eval_cache
            key = None
            if cache is not None:
                key = self._cache_key(feature, span, feature_value)
                if key is not None:
                    cached = cache.refine.get(key, _MISSING)
                    if cached is not _MISSING:
                        self.stats.refine_cache_hits += 1
                        return cached
                    self.stats.refine_cache_misses += 1
            hints = None
            if self.index_store is not None:
                index = self.index_store.index_for(feature, span.doc)
                if index is not None:
                    hints = index.refine(span, feature_value)
            if hints is None:
                self.stats.refine_calls += 1
                hints = feature.refine(span, feature_value)
            else:
                self.stats.index_refine_calls += 1
            hints = tuple(hints)
            if key is not None:
                cache.refine[key] = hints
            return hints
        except ExecutionFailure:
            raise
        except Exception as exc:
            raise ExecutionFailure.wrap(
                exc,
                doc_id=span.doc.doc_id,
                operator="Refine",
                feature=feature.name,
            ) from exc

    # ------------------------------------------------------------------
    # batch entry points
    # ------------------------------------------------------------------
    #
    # The batch methods answer many spans of one constraint in one pass.
    # They are *counter-exact* re-implementations of the scalar loop:
    # for every span the same evaluation tier is chosen (cache hit /
    # index / naive fallback) and the same counters tick — plus
    # ``verify_batch`` / ``refine_batch`` marking the spans whose answer
    # came from a vectorized kernel.  Two facts make that equivalence
    # hold:
    #
    # * a kernel answers a value iff the scalar index answers it
    #   (``can_*_batch`` is exact), so the index/naive split is
    #   identical;
    # * within one batch, duplicates after the first occurrence count as
    #   cache hits — exactly what the scalar loop does, since its first
    #   occurrence inserts into the cache before the second looks up.
    #
    # Spans over documents whose index cannot batch the value take the
    # scalar path unchanged, so a mixed batch still counts identically.

    def _group_by_doc(self, spans):
        by_doc = {}
        for pos, span in enumerate(spans):
            doc = span.doc
            entry = by_doc.get(doc.doc_id)
            if entry is None:
                by_doc[doc.doc_id] = entry = (doc, [])
            entry[1].append(pos)
        return by_doc

    def verify_span_batch(self, feature, spans, feature_value):
        """``verify_span`` over a span batch; results align with ``spans``."""
        results = [None] * len(spans)
        store = self.index_store
        stats = self.stats
        cache = self.eval_cache
        for doc_id, (doc, positions) in self._group_by_doc(spans).items():
            index = store.index_for(feature, doc) if store is not None else None
            if index is None or not index.can_verify_batch(feature_value):
                for pos in positions:
                    results[pos] = self.verify_span(
                        feature, spans[pos], feature_value
                    )
                continue
            try:
                kernel = []  # (position, cache key) pending the kernel
                first_at = {}  # key -> position of its first occurrence
                copies = []
                for pos in positions:
                    span = spans[pos]
                    key = None
                    if cache is not None:
                        key = self._cache_key(feature, span, feature_value)
                    if key is not None:
                        cached = cache.verify.get(key, _MISSING)
                        if cached is not _MISSING:
                            stats.verify_cache_hits += 1
                            results[pos] = cached
                            continue
                        src = first_at.get(key)
                        if src is not None:
                            stats.verify_cache_hits += 1
                            copies.append((pos, src))
                            continue
                        stats.verify_cache_misses += 1
                        first_at[key] = pos
                    stats.index_verify_calls += 1
                    stats.verify_batch += 1
                    kernel.append((pos, key))
                if kernel:
                    count = len(kernel)
                    starts = np.fromiter(
                        (spans[p].start for p, _ in kernel), np.int64, count
                    )
                    ends = np.fromiter(
                        (spans[p].end for p, _ in kernel), np.int64, count
                    )
                    answers = index.verify_batch(starts, ends, feature_value)
                    for (pos, key), answer in zip(kernel, answers.tolist()):
                        answer = bool(answer)
                        results[pos] = answer
                        if key is not None:
                            cache.verify[key] = answer
                for pos, src in copies:
                    results[pos] = results[src]
            except ExecutionFailure:
                raise
            except Exception as exc:
                raise ExecutionFailure.wrap(
                    exc,
                    doc_id=doc_id,
                    operator="Verify",
                    feature=feature.name,
                ) from exc
        return results

    def refine_span_batch(self, feature, spans, feature_value):
        """``refine_span`` over a span batch; results align with ``spans``."""
        results = [None] * len(spans)
        store = self.index_store
        stats = self.stats
        cache = self.eval_cache
        for doc_id, (doc, positions) in self._group_by_doc(spans).items():
            index = store.index_for(feature, doc) if store is not None else None
            if index is None or not index.can_refine_batch(feature_value):
                for pos in positions:
                    results[pos] = self.refine_span(
                        feature, spans[pos], feature_value
                    )
                continue
            try:
                kernel = []
                first_at = {}
                copies = []
                for pos in positions:
                    span = spans[pos]
                    key = None
                    if cache is not None:
                        key = self._cache_key(feature, span, feature_value)
                    if key is not None:
                        cached = cache.refine.get(key, _MISSING)
                        if cached is not _MISSING:
                            stats.refine_cache_hits += 1
                            results[pos] = cached
                            continue
                        src = first_at.get(key)
                        if src is not None:
                            stats.refine_cache_hits += 1
                            copies.append((pos, src))
                            continue
                        stats.refine_cache_misses += 1
                        first_at[key] = pos
                    stats.index_refine_calls += 1
                    stats.refine_batch += 1
                    kernel.append((pos, key))
                if kernel:
                    count = len(kernel)
                    starts = np.fromiter(
                        (spans[p].start for p, _ in kernel), np.int64, count
                    )
                    ends = np.fromiter(
                        (spans[p].end for p, _ in kernel), np.int64, count
                    )
                    batches = index.refine_batch(doc, starts, ends, feature_value)
                    for (pos, key), hints in zip(kernel, batches):
                        hints = tuple(hints)
                        results[pos] = hints
                        if key is not None:
                            cache.refine[key] = hints
                for pos, src in copies:
                    results[pos] = results[src]
            except ExecutionFailure:
                raise
            except Exception as exc:
                raise ExecutionFailure.wrap(
                    exc,
                    doc_id=doc_id,
                    operator="Refine",
                    feature=feature.name,
                ) from exc
        return results


class ExecutionContext:
    """Everything operators need while a plan runs.

    ``index_store`` / ``eval_cache`` may be passed in to share across
    contexts (the engine shares one store across partitions; the
    assistant session shares both across simulations).  When omitted,
    fresh ones are created per the config switches — so parallel
    partition contexts get *fresh* eval caches, keeping per-partition
    hit/miss counters identical to a serial run over the same documents
    (cache keys are document-scoped and partitions are document-disjoint).
    """

    def __init__(
        self,
        program,
        corpus,
        features=None,
        config=None,
        index_store=None,
        eval_cache=None,
        tracer=None,
    ):
        self.program = program
        self.corpus = corpus
        self.features = features or default_registry()
        self.config = config or ExecConfig()
        self.stats = ExecutionStats()
        #: optional :class:`~repro.observability.spans.Tracer`; operators
        #: that batch feature work record spans on it when present
        self.tracer = tracer
        if not getattr(self.config, "use_index", True):
            index_store = None
        elif index_store is None:
            index_store = IndexStore()
        if not getattr(self.config, "use_eval_cache", True):
            eval_cache = None
        elif eval_cache is None:
            eval_cache = EvalCache()
        self.evaluator = FeatureEvaluator(index_store, eval_cache, self.stats)
        #: name -> CompactTable for already-evaluated intensional preds
        self.relations = {}

    @property
    def index_store(self):
        return self.evaluator.index_store

    @property
    def eval_cache(self):
        return self.evaluator.eval_cache

    def feature(self, name):
        return self.features.get(name)

    def verify_value(self, feature, value_obj, feature_value):
        return self.evaluator.verify_value(feature, value_obj, feature_value)

    def refine_span(self, feature, span, feature_value):
        return self.evaluator.refine_span(feature, span, feature_value)

    def p_function(self, name):
        return self.program.p_functions[name]

    def p_predicate(self, name):
        return self.program.p_predicates[name]
