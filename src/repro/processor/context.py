"""Execution context and configuration for the approximate processor."""

from dataclasses import dataclass

from repro.features.registry import default_registry

__all__ = ["ExecConfig", "ExecutionContext", "ExecutionStats"]


@dataclass
class ExecConfig:
    """Caps and switches for approximate execution.

    enum_cap:
        Maximum values enumerated out of one cell when a comparison /
        p-function / ψ needs concrete values.  Hitting the cap degrades
        the operator to a conservative keep-as-maybe (superset-safe).
    ppredicate_cap:
        Maximum possible tuples a cleanup p-predicate is invoked over
        per compact tuple (section 4.1).
    blocking_joins:
        Enable token-blocking for similarity joins (the paper's
        approximate-string-join optimisation lives in its full version;
        token blocking is the standard equivalent).
    """

    enum_cap: int = 2_000
    #: Maximum value *combinations* one condition will test on a single
    #: tuple; beyond it the condition degrades to keep-as-maybe.
    pair_cap: int = 1_000
    ppredicate_cap: int = 5_000
    blocking_joins: bool = True
    #: Corpus partitions for the document-local plan prefix; 1 keeps the
    #: engine on the original single-threaded path.
    workers: int = 1
    #: Scheduler for per-partition work: ``serial`` | ``thread`` |
    #: ``process`` (see :mod:`repro.processor.schedulers`).
    backend: str = "serial"


@dataclass
class ExecutionStats:
    """Counters the benchmarks and the assistant report on."""

    verify_calls: int = 0
    refine_calls: int = 0
    tuples_built: int = 0
    values_enumerated: int = 0
    cap_hits: int = 0
    ppredicate_calls: int = 0

    def merge(self, other):
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


class ExecutionContext:
    """Everything operators need while a plan runs."""

    def __init__(self, program, corpus, features=None, config=None):
        self.program = program
        self.corpus = corpus
        self.features = features or default_registry()
        self.config = config or ExecConfig()
        self.stats = ExecutionStats()
        #: name -> CompactTable for already-evaluated intensional preds
        self.relations = {}

    def feature(self, name):
        return self.features.get(name)

    def p_function(self, name):
        return self.program.p_functions[name]

    def p_predicate(self, name):
        return self.program.p_predicates[name]
