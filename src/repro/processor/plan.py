"""Compiling unfolded Alog rules into operator plans (section 4, Fig 4).

For one rule the compiler:

1. creates a scan fragment per relational atom (extensional or
   intensional);
2. attaches ``from`` generators, domain-constraint selections and
   single-fragment conditions to the fragment that owns their
   variables, as early as possible;
3. joins fragments — preferring pairs connected by a deferred
   condition — pushing the remaining conditions into the join;
4. projects onto the head variables and appends the ψ annotation
   operator carrying the rule's ``(f, A)``.

Stitching (Figure 4.c) happens in the executor: intensional scans read
the compact tables of already-evaluated rules.
"""

from repro.errors import EvaluationError
from repro.processor.conditions import (
    ComparisonCondition,
    PFunctionCondition,
    make_side,
)
from repro.processor.operators import (
    AnnotateOp,
    ConditionSelect,
    ConstraintSelect,
    FromOp,
    JoinOp,
    PPredicateOp,
    ProjectOp,
    ScanExtensional,
    ScanIntensional,
    UnionOp,
)
from repro.xlog.ast import (
    Arith,
    ComparisonAtom,
    ConstraintAtom,
    Const,
    PredicateAtom,
    Var,
)

__all__ = ["compile_rule", "compile_predicate", "compile_program"]


class _Fragment:
    """A plan fragment plus the set of attrs it provides."""

    def __init__(self, op):
        self.op = op

    @property
    def attrs(self):
        return set(self.op.attrs)


def _term_side(term):
    if isinstance(term, Var):
        return make_side(attr=term.name)
    if isinstance(term, Const):
        return make_side(const=term.value)
    if isinstance(term, Arith):
        return make_side(attr=term.var.name, offset=term.offset)
    raise EvaluationError("unexpected term %r" % (term,))


def _condition_for(atom, program):
    if isinstance(atom, ComparisonAtom):
        return ComparisonCondition(_term_side(atom.left), atom.op, _term_side(atom.right))
    # p-function atom
    spec = program.p_functions[atom.name]
    return PFunctionCondition(atom.name, spec.func, [_term_side(a) for a in atom.args])


def compile_rule(rule, program):
    """Compile one unfolded rule into an operator tree."""
    fragments = []
    pending = []  # atoms not yet placed
    constraint_history = {}  # attr -> [(feature, value), ...] applied so far

    for atom in rule.body:
        if isinstance(atom, PredicateAtom):
            kind = program.atom_kind(atom)
            if kind == "extensional":
                if len(atom.args) != 1 or not isinstance(atom.args[0], Var):
                    raise EvaluationError(
                        "extensional atom %r must have one variable" % (atom,)
                    )
                fragments.append(_Fragment(ScanExtensional(atom.name, atom.args[0].name)))
            elif kind == "intensional":
                names = []
                for arg in atom.args:
                    if not isinstance(arg, Var):
                        raise EvaluationError(
                            "constants in intensional atoms are not supported: %r"
                            % (atom,)
                        )
                    names.append(arg.name)
                if len(set(names)) != len(names):
                    raise EvaluationError("repeated variable in atom %r" % (atom,))
                fragments.append(_Fragment(ScanIntensional(atom.name, names)))
            else:
                pending.append(atom)
        else:
            pending.append(atom)

    if not fragments:
        raise EvaluationError(
            "rule %r has no extensional or intensional atom to drive it"
            % (rule.label or rule.head.name,)
        )

    def attrs_of(atom):
        if isinstance(atom, ConstraintAtom):
            return {atom.var.name}
        if isinstance(atom, ComparisonAtom):
            return {v.name for v in atom.variables}
        return {a.name for a in atom.args if isinstance(a, Var)}

    def owner(names):
        """The single fragment providing all ``names``, else None."""
        for fragment in fragments:
            if names <= fragment.attrs:
                return fragment
        return None

    progress = True
    while pending and progress:
        progress = False
        for atom in list(pending):
            placed = self_place(
                atom, program, fragments, owner, attrs_of, constraint_history
            )
            if placed:
                pending.remove(atom)
                progress = True
        if pending and not progress:
            if len(fragments) < 2:
                raise EvaluationError(
                    "cannot place atoms %r (unbound inputs?)" % (pending,)
                )
            _merge_fragments(fragments, pending, program, attrs_of)
            progress = True

    while len(fragments) > 1:
        _merge_fragments(fragments, pending, program, attrs_of)
    if pending:
        raise EvaluationError("unplaced atoms after join: %r" % (pending,))

    root = fragments[0].op
    head_names = [v.name for v in rule.head.variables]
    missing = [n for n in head_names if n not in set(root.attrs)]
    if missing:
        raise EvaluationError(
            "head variables %r not produced by rule body %r" % (missing, rule)
        )
    root = ProjectOp(root, head_names)
    existence, annotated = rule.annotations
    root = AnnotateOp(root, existence, annotated)
    return root


def self_place(atom, program, fragments, owner, attrs_of, constraint_history):
    """Try to attach ``atom`` to a single fragment; True on success."""
    if isinstance(atom, ConstraintAtom):
        fragment = owner({atom.var.name})
        if fragment is None:
            return False
        priors = tuple(constraint_history.get(atom.var.name, ()))
        fragment.op = ConstraintSelect(
            fragment.op, atom.var.name, atom.feature, atom.value, priors
        )
        constraint_history.setdefault(atom.var.name, []).append(
            (atom.feature, atom.value)
        )
        return True
    if isinstance(atom, ComparisonAtom):
        names = attrs_of(atom)
        fragment = owner(names)
        if fragment is None:
            return False
        fragment.op = ConditionSelect(fragment.op, _condition_for(atom, program))
        return True
    # PredicateAtom: from / p_function / p_predicate (incl. IE procedures)
    kind = program.atom_kind(atom)
    if kind == "from":
        source, out = atom.args
        if not isinstance(source, Var) or not isinstance(out, Var):
            raise EvaluationError("from() arguments must be variables: %r" % (atom,))
        fragment = owner({source.name})
        if fragment is None:
            return False
        if out.name in fragment.attrs:
            raise EvaluationError("from() output %r already bound" % (out.name,))
        fragment.op = FromOp(fragment.op, source.name, out.name)
        return True
    if kind == "p_function":
        names = attrs_of(atom)
        fragment = owner(names)
        if fragment is None:
            return False
        fragment.op = ConditionSelect(fragment.op, _condition_for(atom, program))
        return True
    if kind in ("p_predicate", "ie"):
        spec = program.p_predicates.get(atom.name)
        if spec is None:
            raise EvaluationError(
                "IE predicate %r has neither description rules (it should "
                "have been unfolded) nor a procedure" % (atom.name,)
            )
        input_names = set()
        for arg in atom.input_args:
            if isinstance(arg, Var):
                input_names.add(arg.name)
        fragment = owner(input_names) if input_names else fragments[0]
        if fragment is None:
            return False
        input_attrs = [a.name for a in atom.input_args]
        output_attrs = [a.name for a in atom.output_args]
        fragment.op = PPredicateOp(fragment.op, atom.name, spec, input_attrs, output_attrs)
        return True
    raise EvaluationError("cannot place atom %r" % (atom,))


def _merge_fragments(fragments, pending, program, attrs_of):
    """Join two fragments, preferring a pair linked by a condition."""
    best = None
    for i in range(len(fragments)):
        for j in range(i + 1, len(fragments)):
            combined = fragments[i].attrs | fragments[j].attrs
            linked = [
                atom
                for atom in pending
                if isinstance(atom, (ComparisonAtom, PredicateAtom))
                and not isinstance(atom, ConstraintAtom)
                and attrs_of(atom)
                and attrs_of(atom) <= combined
                and _is_condition_atom(atom, program)
            ]
            score = (len(linked), -len(combined))
            if best is None or score > best[0]:
                best = (score, i, j, linked)
    _, i, j, linked = best
    conditions = [_condition_for(atom, program) for atom in linked]
    join = JoinOp(fragments[i].op, fragments[j].op, conditions)
    for atom in linked:
        pending.remove(atom)
    merged = _Fragment(join)
    for index in sorted((i, j), reverse=True):
        del fragments[index]
    fragments.append(merged)


def _is_condition_atom(atom, program):
    if isinstance(atom, ComparisonAtom):
        return True
    if isinstance(atom, PredicateAtom):
        return program.atom_kind(atom) == "p_function"
    return False


def compile_predicate(name, program):
    """Compile all rules for one intensional predicate, unioned."""
    plans = [compile_rule(rule, program) for rule in program.rules_for(name)]
    if len(plans) == 1:
        return plans[0]
    return UnionOp(plans)


def compile_program(program):
    """Compile every intensional predicate without unioning.

    Returns ``{name: [(rule, plan), ...]}`` so static analysis can
    attribute each sub-plan back to the source rule that produced it;
    execution keeps using :func:`compile_predicate`, whose union is the
    runtime shape.
    """
    return {
        name: [
            (rule, compile_rule(rule, program))
            for rule in program.rules_for(name)
        ]
        for name in sorted(program.intensional)
    }
