"""Approximate query processing over compact tables (paper section 4).

The processor is layered: :mod:`~repro.processor.plan` compiles rules to
operator trees, :mod:`~repro.processor.split` analyzes each tree into a
document-local prefix and a global suffix, and
:mod:`~repro.processor.physical` executes the prefix per corpus
partition on a pluggable :mod:`~repro.processor.schedulers` backend
before running the suffix once.  :class:`IFlexEngine` drives the whole
pipeline with cross-iteration reuse.
"""

from repro.processor.context import ExecConfig, ExecutionContext, ExecutionStats
from repro.processor.executor import (
    ExecutionResult,
    IFlexEngine,
    RuleCache,
    evaluation_order,
)
from repro.processor.library import jaccard, make_similar, token_set
from repro.processor.physical import PhysicalExecutor
from repro.processor.plan import compile_predicate, compile_rule
from repro.processor.schedulers import (
    BACKENDS,
    ProcessBackend,
    Scheduler,
    SerialBackend,
    ThreadBackend,
    make_scheduler,
)
from repro.processor.split import PlanSplit, split_plan

__all__ = [
    "BACKENDS",
    "ExecConfig",
    "ExecutionContext",
    "ExecutionResult",
    "ExecutionStats",
    "IFlexEngine",
    "PhysicalExecutor",
    "PlanSplit",
    "ProcessBackend",
    "RuleCache",
    "Scheduler",
    "SerialBackend",
    "ThreadBackend",
    "compile_predicate",
    "compile_rule",
    "evaluation_order",
    "jaccard",
    "make_scheduler",
    "make_similar",
    "split_plan",
    "token_set",
]
