"""Approximate query processing over compact tables (paper section 4)."""

from repro.processor.context import ExecConfig, ExecutionContext, ExecutionStats
from repro.processor.executor import (
    ExecutionResult,
    IFlexEngine,
    RuleCache,
    evaluation_order,
)
from repro.processor.library import jaccard, make_similar, token_set
from repro.processor.plan import compile_predicate, compile_rule

__all__ = [
    "ExecConfig",
    "ExecutionContext",
    "ExecutionResult",
    "ExecutionStats",
    "IFlexEngine",
    "RuleCache",
    "compile_predicate",
    "compile_rule",
    "evaluation_order",
    "jaccard",
    "make_similar",
    "token_set",
]
