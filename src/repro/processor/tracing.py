"""Operator-level execution tracing (EXPLAIN ANALYZE).

Wraps a compiled plan so each operator records its output cardinality,
wall time, and EvalCache traffic.  Used by ``IFlexEngine.explain_analyze``
and by the benchmarks to attribute cost inside a plan.
"""

import time
from dataclasses import dataclass

__all__ = [
    "TracedPlan",
    "OperatorTrace",
    "trace_plan",
    "merge_traces",
    "render_traces",
    "render_cache_summary",
    "render_failures",
]


@dataclass
class OperatorTrace:
    """One operator's measurements for one execution.

    ``cache_hits`` / ``cache_misses`` are the operator's own EvalCache
    traffic (verify + refine combined), excluding its children — like
    ``elapsed``, which is self time.
    """

    describe: str
    depth: int
    elapsed: float = 0.0
    #: wall time of the whole subtree rooted here (self + descendants);
    #: what the span exporter uses as the operator's window
    subtree_elapsed: float = 0.0
    out_tuples: int = 0
    out_assignments: int = 0
    maybe_tuples: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def row(self):
        return (
            "%s%s" % ("  " * self.depth, self.describe),
            "%.1f ms" % (self.elapsed * 1000.0),
            self.out_tuples,
            self.out_assignments,
            self.maybe_tuples,
            self.cache_hits,
            self.cache_misses,
        )


_TRACE_HEADERS = (
    "operator",
    "self time",
    "tuples",
    "assignments",
    "maybe",
    "cache hits",
    "cache misses",
)


class TracedPlan:
    """A plan decorator measuring every operator in the tree."""

    def __init__(self, operator, depth=0):
        self._operator = operator
        self.attrs = operator.attrs
        self.trace = OperatorTrace(operator.describe(), depth)
        # subtree totals; self values are derived by subtracting the
        # children's *subtree* totals (subtracting their self values
        # would re-attribute grandchild time/traffic to this operator)
        self._subtree_elapsed = 0.0
        self._subtree_hits = 0
        self._subtree_misses = 0
        self._children = [
            TracedPlan(child, depth + 1) for child in operator.children()
        ]
        # rebind the wrapped operator's children to the traced versions
        self._rebind_children()

    def _rebind_children(self):
        op = self._operator
        traced = {id(t._operator): t for t in self._children}
        for attr_name in ("child", "left", "right"):
            child = getattr(op, attr_name, None)
            if child is not None and id(child) in traced:
                setattr(op, attr_name, traced[id(child)])
        if getattr(op, "_children", None):
            op._children = [
                traced.get(id(c), c) for c in op._children
            ]

    # -- Operator protocol -------------------------------------------------
    def children(self):
        return list(self._children)

    def describe(self):
        return self._operator.describe()

    def explain(self, depth=0):
        return self._operator.explain(depth)

    def execute(self, context):
        stats = context.stats
        hits_before = stats.verify_cache_hits + stats.refine_cache_hits
        misses_before = stats.verify_cache_misses + stats.refine_cache_misses
        start = time.perf_counter()
        table = self._operator.execute(context)
        self._subtree_elapsed = time.perf_counter() - start
        self._subtree_hits = (
            stats.verify_cache_hits + stats.refine_cache_hits - hits_before
        )
        self._subtree_misses = (
            stats.verify_cache_misses + stats.refine_cache_misses - misses_before
        )
        trace = self.trace
        trace.subtree_elapsed = self._subtree_elapsed
        trace.elapsed = max(
            0.0,
            self._subtree_elapsed
            - sum(t._subtree_elapsed for t in self._children),
        )
        trace.cache_hits = self._subtree_hits - sum(
            t._subtree_hits for t in self._children
        )
        trace.cache_misses = self._subtree_misses - sum(
            t._subtree_misses for t in self._children
        )
        trace.out_tuples = len(table)
        trace.out_assignments = table.assignment_count()
        trace.maybe_tuples = table.maybe_count()
        return table

    # -- reporting ----------------------------------------------------------
    def collect(self):
        out = [self.trace]
        for child in self._children:
            out.extend(child.collect())
        return out

    def report(self):
        from repro.experiments.report import render_table

        return render_table(_TRACE_HEADERS, [t.row() for t in self.collect()])


def trace_plan(operator):
    """Wrap a compiled plan for measurement."""
    return TracedPlan(operator)


def merge_traces(trace_lists):
    """Combine per-partition traces of *identical* plan copies.

    Plan compilation is deterministic, so each partition's ``collect()``
    output lists the same operators in the same order; rows merge
    positionally — counts sum (matching a serial whole-corpus run) and
    elapsed sums to total self time spent across partitions.
    """
    trace_lists = [list(traces) for traces in trace_lists]
    if not trace_lists:
        return []
    first = trace_lists[0]
    merged = []
    for i, row in enumerate(first):
        out = OperatorTrace(row.describe, row.depth)
        for traces in trace_lists:
            if len(traces) != len(first):
                raise ValueError(
                    "cannot merge traces of different plan shapes: %d vs %d rows"
                    % (len(first), len(traces))
                )
            other = traces[i]
            out.elapsed += other.elapsed
            out.subtree_elapsed += other.subtree_elapsed
            out.out_tuples += other.out_tuples
            out.out_assignments += other.out_assignments
            out.maybe_tuples += other.maybe_tuples
            out.cache_hits += other.cache_hits
            out.cache_misses += other.cache_misses
        merged.append(out)
    return merged


def render_traces(traces):
    """The ``explain_analyze`` table for an already-collected trace list.

    An empty trace list (a plan over an empty corpus, a predicate whose
    every partition was answered from the reuse cache) renders a valid
    placeholder line instead of a headers-only table fragment.
    """
    from repro.experiments.report import render_table

    traces = list(traces)
    if not traces:
        return "(no traced operators)"
    return render_table(_TRACE_HEADERS, [t.row() for t in traces])


def _rate(hits, misses):
    """``"12.3%"``, or ``"n/a"`` when there were no lookups at all.

    Guarding the zero-lookup case here matters twice over: it is the
    division-by-zero hazard, and rendering it as ``0.0%`` (or ``nan%``)
    misreads as "the cache never hit" when the truth is "the cache was
    never consulted" (e.g. ``--no-eval-cache`` runs).
    """
    total = hits + misses
    if total <= 0:
        return "n/a"
    return "%.1f%%" % (100.0 * hits / total)


def render_cache_summary(stats):
    """One-paragraph EvalCache / feature-evaluation summary for a run.

    When the run touched a result cache (partition reuse or the
    persistent store), a second line reports the delta accounting;
    cacheless runs keep the historical single-line form.
    """
    text = (
        "eval cache: verify %d hit / %d miss (%s), "
        "refine %d hit / %d miss (%s); "
        "evaluations: %d verify (%d indexed, %d naive), "
        "%d refine (%d indexed, %d naive)"
        % (
            stats.verify_cache_hits,
            stats.verify_cache_misses,
            _rate(stats.verify_cache_hits, stats.verify_cache_misses),
            stats.refine_cache_hits,
            stats.refine_cache_misses,
            _rate(stats.refine_cache_hits, stats.refine_cache_misses),
            stats.index_verify_calls + stats.verify_calls,
            stats.index_verify_calls,
            stats.verify_calls,
            stats.index_refine_calls + stats.refine_calls,
            stats.index_refine_calls,
            stats.refine_calls,
        )
    )
    delta_counters = (
        stats.partitions_reused,
        stats.partitions_recomputed,
        stats.result_cache_hits,
        stats.result_cache_misses,
    )
    if any(delta_counters):
        text += (
            "\nresult cache: %d partition(s) reused / %d recomputed; "
            "store %d hit / %d miss (%s)"
            % (
                stats.partitions_reused,
                stats.partitions_recomputed,
                stats.result_cache_hits,
                stats.result_cache_misses,
                _rate(stats.result_cache_hits, stats.result_cache_misses),
            )
        )
    return text


def render_failures(report):
    """The ``explain_analyze`` failure section, or ``""`` when clean.

    ``report`` is the execution's :class:`~repro.errors.ExecutionReport`
    (``None`` tolerated for legacy callers).  Clean fail-fast runs —
    the overwhelmingly common case — render nothing, so the analyze
    report only grows a section when there is something to say.
    """
    if report is None or not report:
        return ""
    return report.render()
