"""Operator-level execution tracing (EXPLAIN ANALYZE).

Wraps a compiled plan so each operator records its output cardinality
and wall time.  Used by ``IFlexEngine.explain_analyze`` and by the
benchmarks to attribute cost inside a plan.
"""

import time
from dataclasses import dataclass

__all__ = [
    "TracedPlan",
    "OperatorTrace",
    "trace_plan",
    "merge_traces",
    "render_traces",
]


@dataclass
class OperatorTrace:
    """One operator's measurements for one execution."""

    describe: str
    depth: int
    elapsed: float = 0.0
    out_tuples: int = 0
    out_assignments: int = 0
    maybe_tuples: int = 0

    def row(self):
        return (
            "%s%s" % ("  " * self.depth, self.describe),
            "%.1f ms" % (self.elapsed * 1000.0),
            self.out_tuples,
            self.out_assignments,
            self.maybe_tuples,
        )


class TracedPlan:
    """A plan decorator measuring every operator in the tree."""

    def __init__(self, operator, depth=0):
        self._operator = operator
        self.attrs = operator.attrs
        self.trace = OperatorTrace(operator.describe(), depth)
        self._children = [
            TracedPlan(child, depth + 1) for child in operator.children()
        ]
        # rebind the wrapped operator's children to the traced versions
        self._rebind_children()

    def _rebind_children(self):
        op = self._operator
        traced = {id(t._operator): t for t in self._children}
        for attr_name in ("child", "left", "right"):
            child = getattr(op, attr_name, None)
            if child is not None and id(child) in traced:
                setattr(op, attr_name, traced[id(child)])
        if getattr(op, "_children", None):
            op._children = [
                traced.get(id(c), c) for c in op._children
            ]

    # -- Operator protocol -------------------------------------------------
    def children(self):
        return list(self._children)

    def describe(self):
        return self._operator.describe()

    def explain(self, depth=0):
        return self._operator.explain(depth)

    def execute(self, context):
        start = time.perf_counter()
        table = self._operator.execute(context)
        total = time.perf_counter() - start
        # subtract child time so elapsed is *self* time
        child_time = sum(t.trace.elapsed for t in self._children)
        self.trace.elapsed = max(0.0, total - child_time)
        self.trace.out_tuples = len(table)
        self.trace.out_assignments = table.assignment_count()
        self.trace.maybe_tuples = table.maybe_count()
        return table

    # -- reporting ----------------------------------------------------------
    def collect(self):
        out = [self.trace]
        for child in self._children:
            out.extend(child.collect())
        return out

    def report(self):
        from repro.experiments.report import render_table

        rows = [t.row() for t in self.collect()]
        return render_table(
            ("operator", "self time", "tuples", "assignments", "maybe"), rows
        )


def trace_plan(operator):
    """Wrap a compiled plan for measurement."""
    return TracedPlan(operator)


def merge_traces(trace_lists):
    """Combine per-partition traces of *identical* plan copies.

    Plan compilation is deterministic, so each partition's ``collect()``
    output lists the same operators in the same order; rows merge
    positionally — counts sum (matching a serial whole-corpus run) and
    elapsed sums to total self time spent across partitions.
    """
    trace_lists = [list(traces) for traces in trace_lists]
    if not trace_lists:
        return []
    first = trace_lists[0]
    merged = []
    for i, row in enumerate(first):
        out = OperatorTrace(row.describe, row.depth)
        for traces in trace_lists:
            if len(traces) != len(first):
                raise ValueError(
                    "cannot merge traces of different plan shapes: %d vs %d rows"
                    % (len(first), len(traces))
                )
            other = traces[i]
            out.elapsed += other.elapsed
            out.out_tuples += other.out_tuples
            out.out_assignments += other.out_assignments
            out.maybe_tuples += other.maybe_tuples
        merged.append(out)
    return merged


def render_traces(traces):
    """The ``explain_analyze`` table for an already-collected trace list."""
    from repro.experiments.report import render_table

    rows = [t.row() for t in traces]
    return render_table(
        ("operator", "self time", "tuples", "assignments", "maybe"), rows
    )
