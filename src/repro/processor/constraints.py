"""Applying domain constraints to compact-table cells (section 4.2).

The selection ``σ_k`` for a domain constraint ``k: f(a) = v`` rewrites
each cell of attribute ``a`` assignment by assignment:

* ``exact(s)`` — keep iff ``Verify(s, f, v)``;
* ``contain(s)`` — replace by ``Refine(s, f, v)``'s maximal satisfying
  sub-spans, each an ``exact`` or ``contain`` assignment.

When a chain of constraints ``k1, ..., kn`` applies to one attribute,
a span produced while refining with ``kj`` may violate an earlier
``ki``; the paper mandates rechecking against all previously applied
constraints, which is what ``prior_constraints`` carries.  (Any
application order then yields the same final assignments.)

Both Verify and Refine route through the execution context, which
consults the :class:`~repro.processor.context.EvalCache` and the
per-document feature indexes before falling back to the naive feature
implementations — see :mod:`repro.features.index`.
"""

import functools
import re

from repro.ctables.assignments import Contain, Exact, value_number, value_text
from repro.text.span import Span

__all__ = [
    "apply_constraint_to_cell",
    "apply_constraint_to_cells",
    "verify_constraint_on_value",
    "verify_scalar",
]


@functools.lru_cache(maxsize=256)
def _compiled_pattern(pattern):
    return re.compile(pattern)


def verify_scalar(feature, value_obj, feature_value):
    """``Verify`` for scalar (non-span) cell values.

    Scalars (already cast out of their document) can only be checked
    against content features; context/formatting features cannot reject
    them, so we keep them — conservative, hence superset-safe.
    """
    name = feature.name
    if name == "numeric":
        is_number = value_number(value_obj) is not None
        return is_number if feature_value in ("yes", "distinct_yes") else not is_number
    if name == "max_value":
        number = value_number(value_obj)
        return number is not None and number <= float(feature_value)
    if name == "min_value":
        number = value_number(value_obj)
        return number is not None and number >= float(feature_value)
    if name == "max_length":
        return len(value_text(value_obj)) <= int(feature_value)
    if name == "min_length":
        return len(value_text(value_obj)) >= int(feature_value)
    if name == "pattern":
        return (
            _compiled_pattern(str(feature_value)).fullmatch(value_text(value_obj))
            is not None
        )
    return True  # context/formatting features cannot reject a scalar


def verify_constraint_on_value(feature, value_obj, feature_value, stats=None):
    """``Verify`` generalised to scalar cell values (uncached path).

    Spans go straight to the feature; scalars to :func:`verify_scalar`.
    The execution context's ``verify_value`` is the cached, index-aware
    equivalent — this function remains the plain one-shot entry point.
    """
    if stats is not None:
        stats.verify_calls += 1
    if isinstance(value_obj, Span):
        return feature.verify(value_obj, feature_value)
    return verify_scalar(feature, value_obj, feature_value)


def _passes_all(span, constraints, context):
    for feature_name, feature_value in constraints:
        feature = context.feature(feature_name)
        if not context.verify_value(feature, span, feature_value):
            return False
    return True


def apply_constraint_to_cell(cell, feature_name, feature_value, prior_constraints, context):
    """``A(k, ·)`` over every assignment of ``cell``.

    Returns the transformed cell (possibly empty).  ``prior_constraints``
    is the list of ``(feature, value)`` pairs already applied to this
    attribute; newly materialised spans are rechecked against them.
    """
    feature = context.feature(feature_name)
    out = []
    seen = set()

    def emit(assignment):
        if assignment not in seen:
            seen.add(assignment)
            out.append(assignment)

    for assignment in cell.assignments:
        if isinstance(assignment, Exact):
            if context.verify_value(feature, assignment.value, feature_value):
                emit(assignment)
            continue
        # contain(s): refine, then recheck each produced span
        for mode, span in context.refine_span(feature, assignment.span, feature_value):
            if mode == "exact":
                if _passes_all(span, prior_constraints, context):
                    emit(Exact(span))
            else:
                emit(Contain(span))
    return cell.with_assignments(out)


def apply_constraint_to_cells(cells, feature_name, feature_value, prior_constraints, context):
    """``A(k, ·)`` over many cells at once, via the batch kernels.

    Byte- and counter-identical to :func:`apply_constraint_to_cell`
    applied cell by cell — the evaluation itself routes through
    :meth:`~repro.processor.context.FeatureEvaluator.verify_span_batch`
    / ``refine_span_batch``, so a whole table pass is one array kernel
    per document instead of a Python dispatch per assignment.

    Gather/emit are two phases: phase one walks every assignment in
    order collecting the Verify span batch (``exact``) and the Refine
    span batch (``contain``), evaluating scalar (non-span) values
    inline; phase two replays the same order, consuming the batch
    results and re-running the scalar emit/dedupe/prior-recheck logic
    unchanged.  The caller must not use this when the current
    ``(feature, value)`` also appears in ``prior_constraints`` — the
    prior rechecks of phase two would then interleave with the current
    constraint's cache keys, which only the scalar order gets right.
    """
    feature = context.feature(feature_name)
    evaluator = context.evaluator
    verify_spans = []
    refine_spans = []
    scalar_results = {}
    for ci, cell in enumerate(cells):
        for ai, assignment in enumerate(cell.assignments):
            if isinstance(assignment, Exact):
                if isinstance(assignment.value, Span):
                    verify_spans.append(assignment.value)
                else:
                    scalar_results[(ci, ai)] = context.verify_value(
                        feature, assignment.value, feature_value
                    )
            else:
                refine_spans.append(assignment.span)
    verify_results = iter(
        evaluator.verify_span_batch(feature, verify_spans, feature_value)
    )
    refine_results = iter(
        evaluator.refine_span_batch(feature, refine_spans, feature_value)
    )
    new_cells = []
    for ci, cell in enumerate(cells):
        out = []
        seen = set()

        def emit(assignment, out=out, seen=seen):
            if assignment not in seen:
                seen.add(assignment)
                out.append(assignment)

        for ai, assignment in enumerate(cell.assignments):
            if isinstance(assignment, Exact):
                if isinstance(assignment.value, Span):
                    keep = next(verify_results)
                else:
                    keep = scalar_results[(ci, ai)]
                if keep:
                    emit(assignment)
                continue
            for mode, span in next(refine_results):
                if mode == "exact":
                    if _passes_all(span, prior_constraints, context):
                        emit(Exact(span))
                else:
                    emit(Contain(span))
        new_cells.append(cell.with_assignments(out))
    return new_cells
