"""Built-in p-functions.

The paper's programs use an ``approxMatch`` / ``similar`` string
similarity p-function (TF/IDF there; token Jaccard here — see
DESIGN.md's substitution table).  Functions marked ``blockable`` let
:class:`~repro.processor.operators.JoinOp` prune candidate pairs with
a shared-token index, our stand-in for the approximate-string-join
optimisation of the paper's full version.
"""

import itertools
import re
import threading

from repro.ctables.assignments import value_text

__all__ = ["make_similar", "token_set", "jaccard"]

_WORD_RE = re.compile(r"[A-Za-z0-9]+")

_STOPWORDS = frozenset(
    "a an and for in of on or the to with hs high school".split()
)


_TOKEN_CACHE = {}
_TOKEN_CACHE_MAX = 500_000
#: guards every read and write of ``_TOKEN_CACHE``: the threaded
#: service (ThreadingWSGIServer) runs similarity joins concurrently,
#: and an unguarded resize during iteration would raise (or lose
#: entries) under free-threaded builds
_TOKEN_CACHE_LOCK = threading.Lock()


def _evict_oldest(cache, keep):
    """Drop the oldest entries (dict insertion order) down to ``keep``."""
    for key in list(itertools.islice(iter(cache), max(0, len(cache) - keep))):
        del cache[key]


def token_set(value, drop_stopwords=True):
    """Lower-cased alphanumeric tokens of a value's text (memoised).

    Similarity joins call this millions of times on the same spans; the
    cache keys on the value's canonical key.  The cache is bounded: at
    ``_TOKEN_CACHE_MAX`` entries the oldest half is evicted (insertion
    order approximates recency well enough here — spans of one
    execution cluster together), rather than dropping the whole cache.
    Get and set are race-safe; the tokenisation itself runs unlocked,
    so a concurrent duplicate computation costs time, never correctness
    (both threads produce equal frozensets).
    """
    from repro.ctables.assignments import value_key

    cache_key = (value_key(value), drop_stopwords)
    with _TOKEN_CACHE_LOCK:
        cached = _TOKEN_CACHE.get(cache_key)
    if cached is not None:
        return cached
    tokens = frozenset(t.lower() for t in _WORD_RE.findall(value_text(value)))
    if drop_stopwords:
        tokens = frozenset(t for t in tokens if t not in _STOPWORDS) or tokens
    with _TOKEN_CACHE_LOCK:
        if len(_TOKEN_CACHE) >= _TOKEN_CACHE_MAX:
            _evict_oldest(_TOKEN_CACHE, _TOKEN_CACHE_MAX // 2)
        _TOKEN_CACHE[cache_key] = tokens
    return tokens


def jaccard(left, right):
    """Token Jaccard similarity of two values."""
    left_tokens = token_set(left)
    right_tokens = token_set(right)
    if not left_tokens or not right_tokens:
        return 0.0
    intersection = len(left_tokens & right_tokens)
    union = len(left_tokens | right_tokens)
    return intersection / union


def make_similar(threshold=0.6):
    """A ``similar(a, b)`` p-function at a given Jaccard threshold.

    Any pair it accepts shares at least one token, so token blocking
    is an exact (not lossy) pre-filter.
    """

    def similar(left, right):
        return jaccard(left, right) >= threshold

    similar.blockable = True
    similar.threshold = threshold
    return similar
