"""Built-in p-functions.

The paper's programs use an ``approxMatch`` / ``similar`` string
similarity p-function (TF/IDF there; token Jaccard here — see
DESIGN.md's substitution table).  Functions marked ``blockable`` let
:class:`~repro.processor.operators.JoinOp` prune candidate pairs with
a shared-token index, our stand-in for the approximate-string-join
optimisation of the paper's full version.
"""

import re

from repro.ctables.assignments import value_text

__all__ = ["make_similar", "token_set", "jaccard"]

_WORD_RE = re.compile(r"[A-Za-z0-9]+")

_STOPWORDS = frozenset(
    "a an and for in of on or the to with hs high school".split()
)


_TOKEN_CACHE = {}
_TOKEN_CACHE_MAX = 500_000


def token_set(value, drop_stopwords=True):
    """Lower-cased alphanumeric tokens of a value's text (memoised).

    Similarity joins call this millions of times on the same spans;
    the cache keys on the value's canonical key.
    """
    from repro.ctables.assignments import value_key

    cache_key = (value_key(value), drop_stopwords)
    cached = _TOKEN_CACHE.get(cache_key)
    if cached is not None:
        return cached
    tokens = frozenset(t.lower() for t in _WORD_RE.findall(value_text(value)))
    if drop_stopwords:
        tokens = frozenset(t for t in tokens if t not in _STOPWORDS) or tokens
    if len(_TOKEN_CACHE) >= _TOKEN_CACHE_MAX:
        _TOKEN_CACHE.clear()
    _TOKEN_CACHE[cache_key] = tokens
    return tokens


def jaccard(left, right):
    """Token Jaccard similarity of two values."""
    left_tokens = token_set(left)
    right_tokens = token_set(right)
    if not left_tokens or not right_tokens:
        return 0.0
    intersection = len(left_tokens & right_tokens)
    union = len(left_tokens | right_tokens)
    return intersection / union


def make_similar(threshold=0.6):
    """A ``similar(a, b)`` p-function at a given Jaccard threshold.

    Any pair it accepts shares at least one token, so token blocking
    is an exact (not lossy) pre-filter.
    """

    def similar(left, right):
        return jaccard(left, right) >= threshold

    similar.blockable = True
    similar.threshold = threshold
    return similar
