"""The physical execution layer: partitioned, scheduled plan execution.

:class:`PhysicalExecutor` sits between the engine's per-predicate loop
and the operator trees.  For each predicate it

1. asks the plan-analysis layer (:mod:`repro.processor.split`) for the
   document-local prefix / global suffix split;
2. partitions the corpus (``Corpus.partition``) and executes the prefix
   once per partition on the configured :class:`Scheduler` backend;
3. unions the per-partition compact tables (``CompactTable.union``,
   preserving maybe flags and multiset semantics — and, because
   partitions are contiguous document slices processed in order, the
   exact serial tuple order);
4. executes the global suffix once against the merged tables.

With one worker (the default) every plan executes exactly as the
original single-threaded engine did — same operators, same context,
same statistics — so serial behaviour is the identity baseline the
determinism tests compare the backends against.

Per-partition work re-compiles the predicate's plan from the program:
compilation is deterministic and cheap relative to extraction, and
fresh trees mean no operator state is shared across workers.
"""

from contextlib import nullcontext

from repro.ctables.ctable import CompactTable
from repro.observability.logs import get_logger
from repro.processor.context import ExecutionContext
from repro.processor.plan import compile_predicate
from repro.processor.schedulers import TaskError, make_scheduler
from repro.processor.split import PlanSplit, bind_tables
from repro.processor.tracing import merge_traces, trace_plan

__all__ = ["PhysicalExecutor"]

logger = get_logger("processor")


def _partition_span(tracer, corpus, pid):
    """The per-partition root span (or a no-op without a tracer)."""
    if tracer is None:
        return nullcontext()
    return tracer.span(
        "partition[%d]" % pid,
        category="partition",
        partition=pid,
        documents=sum(corpus.size_of(name) for name in corpus.table_names()),
    )


class PhysicalExecutor:
    """Executes one (unfolded) program's plans over a partitioned corpus.

    With a ``tracer``, every scheduler ``map`` records a scheduler span
    and each partition task builds its *own*
    :class:`~repro.observability.spans.Tracer` whose spans ride back as
    the last element of the task's result tuple — across the process
    backend's fork result pipe exactly like ``ExecutionStats`` — and are
    grafted under the scheduler span on arrival.  Timestamps stay
    comparable because ``time.perf_counter`` is the system-wide
    monotonic clock, shared by forked children.
    """

    def __init__(
        self,
        program,
        corpus,
        features,
        config,
        scheduler=None,
        index_store=None,
        tracer=None,
    ):
        self.program = program
        self.corpus = corpus
        self.features = features
        self.config = config
        self.tracer = tracer
        #: shared per-document feature indexes (thread-shared /
        #: fork-inherited; content-keyed, so sharing is always sound)
        self.index_store = index_store
        self.scheduler = scheduler or make_scheduler(
            getattr(config, "backend", "serial"), getattr(config, "workers", 1)
        )
        workers = getattr(config, "workers", 1)
        partition_docs = getattr(config, "partition_docs", None)
        if partition_docs:
            # fixed-size chunks: boundaries are positionally stable, so
            # a resident engine's partition-keyed reuse survives corpus
            # growth (appends only touch the tail chunks)
            self.partitions = corpus.chunk(partition_docs)
        else:
            self.partitions = corpus.partition(workers) if workers > 1 else [corpus]
        self.timeout = getattr(config, "partition_timeout", None)
        self._splits = {}
        #: fork-inherited objects result spans point into; the process
        #: backend ships these by reference instead of re-pickling the
        #: corpus once per partition
        self._shared = [
            doc for name in corpus.table_names() for doc in corpus.table(name)
        ]
        #: bytes shipped across address-space boundaries by this
        #: executor's scheduler ``map`` calls (the
        #: ``repro.sched.payload_bytes`` metric; 0 in-process)
        self.payload_bytes = 0

    def _artifact_refs(self):
        """Columnar-bundle mmap refs for the fork payload (maybe empty)."""
        store = getattr(self.index_store, "columnar", None)
        if store is None:
            return ()
        return tuple(store.artifact_refs())

    @property
    def parallel(self):
        return len(self.partitions) > 1

    # ------------------------------------------------------------------
    # plan analysis (cached per predicate; used for routing decisions)
    # ------------------------------------------------------------------
    def split(self, name):
        if name not in self._splits:
            self._splits[name] = PlanSplit(compile_predicate(name, self.program))
        return self._splits[name]

    def fully_local(self, name):
        return self.split(name).fully_local

    # ------------------------------------------------------------------
    # partition-level execution
    # ------------------------------------------------------------------
    def _map(self, work, pids, label=""):
        """Scheduler ``map`` with partition-attributed failures.

        The scheduler reports failures by *task index*; this layer knows
        which corpus partition each task was, stamps it onto the
        failure, and re-raises the bare :class:`ExecutionFailure` so the
        engine's error policy sees the same exception type whether the
        plan ran serially or partitioned.

        With a tracer, the whole ``map`` is recorded as a scheduler
        span, and each task's result tuple carries its partition span
        list as the *last* element; that element is stripped here and
        adopted into the tracer, so callers see the untraced result
        shapes.
        """
        if self.tracer is None:
            return self._map_raw(work, pids)
        with self.tracer.span(
            "scheduler.map",
            category="scheduler",
            backend=self.scheduler.name,
            workers=self.scheduler.workers,
            tasks=len(pids),
            predicate=label,
        ) as scheduler_span:
            results = self._map_raw(work, pids)
            stripped = []
            for result in results:
                *rest, spans = result
                self.tracer.adopt(spans, parent=scheduler_span)
                stripped.append(tuple(rest))
            return stripped

    def _map_raw(self, work, pids):
        try:
            return self.scheduler.map(
                work,
                pids,
                shared=self._shared,
                timeout=self.timeout,
                artifacts=self._artifact_refs(),
            )
        except TaskError as error:
            failure = error.failure if error.failure is not None else error
            if failure.partition is None and error.task_index is not None:
                failure.partition = pids[error.task_index]
            if failure.__cause__ is None:
                failure.__cause__ = error.__cause__
            raise failure from error.__cause__
        finally:
            self.payload_bytes += getattr(
                self.scheduler, "last_map_payload_bytes", 0
            )

    def _partition_context(self, pid, tracer=None):
        # The index store is shared (document content never changes);
        # the eval cache is *fresh* per partition so hit/miss counters
        # are backend-independent and sum to the serial counts — cache
        # keys are document-scoped and partitions document-disjoint, so
        # a shared cache could not produce extra hits anyway.
        return ExecutionContext(
            self.program,
            self.partitions[pid],
            self.features,
            self.config,
            index_store=self.index_store,
            tracer=tracer,
        )

    def _worker_tracer(self):
        """A fresh tracer for one partition task, or ``None``.

        Workers never write to the executor's own tracer (thread races;
        fork children mutate a dead copy) — each task records into its
        own and the spans travel home inside the result tuple.
        """
        if self.tracer is None:
            return None
        from repro.observability.spans import Tracer

        return Tracer()

    def execute_local_partitions(self, name, pids=None):
        """Run a *fully local* predicate plan on each requested partition.

        Returns ``[(table, stats)]`` in partition order.  The engine's
        partition-keyed reuse cache calls this with only the partitions
        whose cached tables could not be reused.
        """
        pids = list(range(len(self.partitions)) if pids is None else pids)

        def work(pid):
            tracer = self._worker_tracer()
            context = self._partition_context(pid, tracer)
            with _partition_span(tracer, self.partitions[pid], pid):
                table = compile_predicate(name, self.program).execute(context)
            if tracer is None:
                return table, context.stats
            return table, context.stats, tracer.spans

        return self._map(work, pids, label=name)

    def execute_local_partitions_traced(self, name, pids=None):
        """Like :meth:`execute_local_partitions`, with operator traces.

        Returns ``[(table, stats, traces)]`` in partition order.
        ``explain_analyze`` calls this for the partitions a warm result
        cache could not hydrate, so the report measures exactly the
        recomputed work.
        """
        pids = list(range(len(self.partitions)) if pids is None else pids)

        def work(pid):
            tracer = self._worker_tracer()
            context = self._partition_context(pid, tracer)
            traced = trace_plan(compile_predicate(name, self.program))
            with _partition_span(tracer, self.partitions[pid], pid):
                table = traced.execute(context)
            collected = traced.collect()
            if tracer is None:
                return table, context.stats, collected
            return table, context.stats, collected, tracer.spans

        return self._map(work, pids, label=name)

    # ------------------------------------------------------------------
    # whole-plan execution
    # ------------------------------------------------------------------
    def execute_plan(self, name, context):
        """Execute one predicate's plan over the whole corpus.

        Parallel runs partition the document-local prefix across the
        scheduler; serial runs (or plans with no local work, e.g. pure
        joins over intensional tables) execute the tree directly.
        Partition statistics merge into ``context.stats``, so counters
        match a serial execution exactly.
        """
        info = self.split(name)
        if not self.parallel or not info.has_local_work:
            return compile_predicate(name, self.program).execute(context)

        def work(pid):
            tracer = self._worker_tracer()
            partition_context = self._partition_context(pid, tracer)
            split = PlanSplit(compile_predicate(name, self.program))
            with _partition_span(tracer, self.partitions[pid], pid):
                tables = [op.execute(partition_context) for op in split.local_roots]
            if tracer is None:
                return tables, partition_context.stats
            return tables, partition_context.stats, tracer.spans

        per_partition = self._map(work, list(range(len(self.partitions))), label=name)
        for _, stats in per_partition:
            context.stats.merge(stats)
        gathered = self._gather(info, [tables for tables, _ in per_partition])
        suffix = bind_tables(
            PlanSplit(compile_predicate(name, self.program)),
            gathered,
            partitions=len(self.partitions),
        )
        return suffix.execute(context)

    def execute_plan_traced(self, name, context):
        """Like :meth:`execute_plan`, with operator-level measurements.

        Returns ``(table, traces)`` where ``traces`` is a depth-ordered
        list of :class:`~repro.processor.tracing.OperatorTrace` rows.
        Prefix operators are measured in every partition and merged
        positionally (tuple counts sum to the serial counts; elapsed is
        the summed per-partition self time), nested under the suffix's
        gather leaf so ``explain_analyze`` still attributes cost per
        operator.
        """
        info = self.split(name)
        if not self.parallel or not info.has_local_work:
            traced = trace_plan(compile_predicate(name, self.program))
            table = traced.execute(context)
            return table, traced.collect()

        def work(pid):
            tracer = self._worker_tracer()
            partition_context = self._partition_context(pid, tracer)
            split = PlanSplit(compile_predicate(name, self.program))
            traced = [trace_plan(op) for op in split.local_roots]
            with _partition_span(tracer, self.partitions[pid], pid):
                tables = [t.execute(partition_context) for t in traced]
            collected = [t.collect() for t in traced]
            if tracer is None:
                return tables, collected, partition_context.stats
            return tables, collected, partition_context.stats, tracer.spans

        per_partition = self._map(work, list(range(len(self.partitions))), label=name)
        for _, _, stats in per_partition:
            context.stats.merge(stats)
        gathered = self._gather(info, [tables for tables, _, _ in per_partition])
        merged = [
            merge_traces([collected[i] for _, collected, _ in per_partition])
            for i in range(len(info.local_roots))
        ]
        suffix = bind_tables(
            PlanSplit(compile_predicate(name, self.program)),
            gathered,
            partitions=len(self.partitions),
        )
        traced_suffix = trace_plan(suffix)
        table = traced_suffix.execute(context)
        return table, _collect_with_prefixes(traced_suffix, merged)

    def _gather(self, info, tables_per_partition):
        """Union each local root's per-partition tables, root by root."""
        return [
            CompactTable.union(
                [tables[i] for tables in tables_per_partition],
                attrs=info.local_roots[i].attrs,
            )
            for i in range(len(info.local_roots))
        ]


def _collect_with_prefixes(traced, merged_by_index):
    """Suffix traces with each gather leaf's merged prefix nested under it."""
    from repro.processor.split import GatherOp
    from repro.processor.tracing import OperatorTrace

    out = [traced.trace]
    operator = traced._operator
    if isinstance(operator, GatherOp):
        base_depth = traced.trace.depth + 1
        for row in merged_by_index[operator.index]:
            out.append(
                OperatorTrace(
                    describe=row.describe,
                    depth=row.depth + base_depth,
                    elapsed=row.elapsed,
                    subtree_elapsed=row.subtree_elapsed,
                    out_tuples=row.out_tuples,
                    out_assignments=row.out_assignments,
                    maybe_tuples=row.maybe_tuples,
                    cache_hits=row.cache_hits,
                    cache_misses=row.cache_misses,
                )
            )
    for child in traced.children():
        out.extend(_collect_with_prefixes(child, merged_by_index))
    return out
