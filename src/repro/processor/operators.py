"""Physical operators over compact tables (section 4.1-4.3).

Every operator consumes/produces :class:`CompactTable` under *superset
semantics*: the set of possible relations represented by the output is
a superset of the exact Alog answer.  Certainty claims are the
dangerous direction (marking a tuple certain removes worlds), so all
the maybe-flag logic errs conservative; see
:mod:`repro.processor.conditions` for the exact rule.
"""

from repro.ctables.assignments import Contain
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.errors import EnumerationLimitError, EvaluationError, ExecutionFailure
from repro.processor.bannotate import annotate_table
from repro.processor.constraints import (
    apply_constraint_to_cell,
    apply_constraint_to_cells,
)
from repro.text.span import Span, doc_span


def combo_doc_id(values):
    """The document a value combination is attributable to, or ``None``.

    Best-effort failure isolation quarantines *documents*; a raising
    p-predicate or p-function is attributed to the document of the first
    span among its arguments (document-local plans guarantee all spans
    share one document).
    """
    for value in values:
        if isinstance(value, Span):
            return value.doc.doc_id
    return None


__all__ = [
    "Operator",
    "ScanExtensional",
    "ScanIntensional",
    "TableSource",
    "FromOp",
    "ConstraintSelect",
    "ConditionSelect",
    "JoinOp",
    "ProjectOp",
    "PPredicateOp",
    "AnnotateOp",
    "UnionOp",
    "combo_doc_id",
]


class Operator:
    """Base class; subclasses define ``attrs`` and ``execute``."""

    attrs = ()

    def execute(self, context):
        raise NotImplementedError

    def children(self):
        return []

    def explain(self, depth=0):
        """An EXPLAIN-style rendering of the plan tree."""
        lines = ["  " * depth + self.describe()]
        for child in self.children():
            lines.extend(child.explain(depth + 1).splitlines())
        return "\n".join(lines)

    def describe(self):
        return type(self).__name__


class ScanExtensional(Operator):
    """One row per corpus document, as an ``exact`` whole-doc span."""

    def __init__(self, table_name, attr):
        self.table_name = table_name
        self.attrs = (attr,)

    def execute(self, context):
        table = CompactTable(self.attrs)
        for doc in context.corpus.table(self.table_name):
            table.add(CompactTuple([Cell.exact(doc_span(doc))]))
        context.stats.tuples_built += len(table)
        return table

    def describe(self):
        return "Scan[%s -> %s]" % (self.table_name, self.attrs[0])


class ScanIntensional(Operator):
    """Read an already-computed intensional relation, renaming attrs."""

    def __init__(self, predicate, attrs):
        self.predicate = predicate
        self.attrs = tuple(attrs)

    def execute(self, context):
        source = context.relations.get(self.predicate)
        if source is None:
            raise EvaluationError("relation %r not yet computed" % (self.predicate,))
        if len(source.attrs) != len(self.attrs):
            raise EvaluationError(
                "arity mismatch scanning %r: %r vs %r"
                % (self.predicate, source.attrs, self.attrs)
            )
        table = CompactTable(self.attrs)
        for t in source:
            table.add(t)
        return table

    def describe(self):
        return "ScanRel[%s -> (%s)]" % (self.predicate, ", ".join(self.attrs))


class TableSource(Operator):
    """Wrap an existing compact table as a plan leaf (reuse path)."""

    def __init__(self, table):
        self.table = table
        self.attrs = table.attrs

    def execute(self, context):
        return self.table

    def describe(self):
        return "Table[(%s), %d tuples]" % (", ".join(self.attrs), len(self.table))


class FromOp(Operator):
    """The built-in ``from(@x, y)`` sub-span generator (section 4.2).

    Never enumerates: for an input cell with assignments
    ``{m1(s1), ..., mn(sn)}`` it produces the expansion cell
    ``expand({contain(s1), ..., contain(sn)})``.
    """

    def __init__(self, child, source_attr, out_attr):
        self.child = child
        self.source_attr = source_attr
        self.out_attr = out_attr
        self.attrs = child.attrs + (out_attr,)

    def children(self):
        return [self.child]

    def execute(self, context):
        source_table = self.child.execute(context)
        index = source_table.attr_index(self.source_attr)
        table = CompactTable(self.attrs)
        for t in source_table:
            anchors = []
            for assignment in t.cells[index].assignments:
                span = assignment.anchor_span
                if span is not None:
                    anchors.append(Contain(span))
            new_cell = Cell.expansion(anchors)
            table.add(CompactTuple(t.cells + (new_cell,), maybe=t.maybe))
        context.stats.tuples_built += len(table)
        return table

    def describe(self):
        return "From[%s -> %s]" % (self.source_attr, self.out_attr)


class ConstraintSelect(Operator):
    """``σ_k`` for a domain constraint ``feature(attr) = value``."""

    def __init__(self, child, attr, feature, value, priors=()):
        self.child = child
        self.attr = attr
        self.feature = feature
        self.value = value
        self.priors = tuple(priors)
        self.attrs = child.attrs

    def children(self):
        return [self.child]

    def execute(self, context):
        source = self.child.execute(context)
        return apply_constraint_to_table(
            source, self.attr, self.feature, self.value, self.priors, context
        )

    def describe(self):
        return "Select[%s(%s) = %r]" % (self.feature, self.attr, self.value)


def apply_constraint_to_table(source, attr, feature, value, priors, context, mark_maybe=True):
    """Shared by :class:`ConstraintSelect` and the reuse path.

    ``mark_maybe=False`` is used by the reuse path when ``attr`` is an
    *annotated* attribute of the rule: the new constraint commutes past
    ψ (it trims each group's value pool before the one-per-group
    choice), so a group with any surviving value keeps a certain tuple.

    With a tracer on the context, the whole pass over the table — one
    Verify/Refine *batch* for this constraint — records a feature span
    attributed with the evaluation traffic it caused (stats deltas).
    """
    tracer = getattr(context, "tracer", None)
    if tracer is None:
        return _constraint_pass(source, attr, feature, value, priors, context, mark_maybe)
    stats = context.stats
    before = (
        stats.verify_calls + stats.index_verify_calls,
        stats.refine_calls + stats.index_refine_calls,
        stats.verify_cache_hits + stats.refine_cache_hits,
        stats.verify_cache_misses + stats.refine_cache_misses,
    )
    with tracer.span(
        "verify-batch:%s(%s)" % (feature, attr),
        category="feature",
        feature=str(feature),
        attribute=attr,
        value=str(value),
    ) as span:
        table = _constraint_pass(source, attr, feature, value, priors, context, mark_maybe)
        span.attrs["verify_evals"] = (
            stats.verify_calls + stats.index_verify_calls - before[0]
        )
        span.attrs["refine_evals"] = (
            stats.refine_calls + stats.index_refine_calls - before[1]
        )
        span.attrs["cache_hits"] = (
            stats.verify_cache_hits + stats.refine_cache_hits - before[2]
        )
        span.attrs["cache_misses"] = (
            stats.verify_cache_misses + stats.refine_cache_misses - before[3]
        )
        span.attrs["out_tuples"] = len(table)
    return table


def _constraint_pass(source, attr, feature, value, priors, context, mark_maybe):
    index = source.attr_index(attr)
    table = CompactTable(source.attrs)
    # The batched path hands the whole column to the vectorized batch
    # kernels (one array op per document instead of a per-assignment
    # loop) — byte- and counter-identical to the scalar loop below.  A
    # duplicated (feature, value) in the priors would interleave the
    # prior rechecks with this constraint's own cache keys, which only
    # the scalar order accounts correctly, so that (degenerate) case
    # stays scalar.
    use_batch = getattr(context.config, "use_batch", True) and (
        (feature, value) not in tuple(priors)
    )
    if use_batch:
        tuples = list(source)
        new_cells = apply_constraint_to_cells(
            [t.cells[index] for t in tuples], feature, value, priors, context
        )
        pairs = zip(tuples, new_cells)
    else:
        pairs = (
            (t, apply_constraint_to_cell(t.cells[index], feature, value, priors, context))
            for t in source
        )
    for t, new_cell in pairs:
        if new_cell.is_empty():
            continue
        old_cell = t.cells[index]
        new_tuple = t.with_cell(index, new_cell)
        if mark_maybe and new_cell != old_cell and not old_cell.is_expansion:
            new_tuple = new_tuple.as_maybe()
        table.add(new_tuple)
    context.stats.tuples_built += len(table)
    return table


class ConditionSelect(Operator):
    """``σ_f`` for a comparison or p-function condition."""

    def __init__(self, child, condition):
        self.child = child
        self.condition = condition
        self.attrs = child.attrs

    def children(self):
        return [self.child]

    def execute(self, context):
        source = self.child.execute(context)
        table = CompactTable(self.attrs)
        for t in source:
            new_tuple = apply_condition(t, self.attrs, self.condition, context)
            if new_tuple is not None:
                table.add(new_tuple)
        context.stats.tuples_built += len(table)
        return table

    def describe(self):
        return "Select[%r]" % (self.condition,)


def apply_condition(compact_tuple, attrs, condition, context):
    """Evaluate one condition on one tuple; None means dropped."""
    cells_by_attr = dict(zip(attrs, compact_tuple.cells))
    result = condition.evaluate(cells_by_attr, context)
    if not result.some:
        return None
    new_tuple = compact_tuple
    fully_filtered_expansions = 0
    involved = condition.involved
    for attr, cell in result.filtered.items():
        index = attrs.index(attr)
        if cell.is_expansion:
            fully_filtered_expansions += 1
        new_tuple = new_tuple.with_cell(index, cell)
    if not result.all:
        # Certainty survives only the single-attr expansion-cell case:
        # each surviving expansion value is its own (certain) tuple.
        safe = (
            not result.capped
            and len(involved) == 1
            and involved[0] in result.filtered
            and result.filtered[involved[0]].is_expansion
        )
        if not safe:
            new_tuple = new_tuple.as_maybe()
    return new_tuple


class JoinOp(Operator):
    """θ-join of two fragments with a list of conditions (section 4.1).

    Nested loops over the Cartesian product; when one condition is a
    blockable similarity p-function, a token index over the right side
    prunes pairs that share no token (they cannot satisfy the
    condition, so pruning is exact, not approximate).
    """

    def __init__(self, left, right, conditions=()):
        self.left = left
        self.right = right
        self.conditions = list(conditions)
        overlap = set(left.attrs) & set(right.attrs)
        if overlap:
            raise EvaluationError("join sides share attributes: %r" % (overlap,))
        self.attrs = left.attrs + right.attrs

    def children(self):
        return [self.left, self.right]

    def execute(self, context):
        left_table = self.left.execute(context)
        right_table = self.right.execute(context)
        table = CompactTable(self.attrs)
        blocking = self._blocking_condition(context)
        if blocking is not None:
            pairs = self._blocked_pairs(left_table, right_table, blocking)
        else:
            pairs = (
                (lt, rt) for lt in left_table for rt in right_table
            )
        for lt, rt in pairs:
            combined = CompactTuple(lt.cells + rt.cells, maybe=lt.maybe or rt.maybe)
            for condition in self.conditions:
                combined = apply_condition(combined, self.attrs, condition, context)
                if combined is None:
                    break
            if combined is not None:
                table.add(combined)
        context.stats.tuples_built += len(table)
        return table

    # -- token blocking ---------------------------------------------------
    def _blocking_condition(self, context):
        if not context.config.blocking_joins:
            return None
        for condition in self.conditions:
            func = getattr(condition, "func", None)
            if func is not None and getattr(func, "blockable", False):
                sides = condition.sides
                attr_sides = [s for s in sides if not s.is_const]
                if len(attr_sides) == 2:
                    left_attr = next(
                        (s.attr for s in attr_sides if s.attr in self.left.attrs), None
                    )
                    right_attr = next(
                        (s.attr for s in attr_sides if s.attr in self.right.attrs), None
                    )
                    if left_attr and right_attr:
                        return (condition, left_attr, right_attr)
        return None

    def _blocked_pairs(self, left_table, right_table, blocking):
        _, left_attr, right_attr = blocking
        right_index = {}
        for position, rt in enumerate(right_table):
            for token in _cell_tokens(rt.cells[right_table.attr_index(right_attr)]):
                right_index.setdefault(token, set()).add(position)
        right_tuples = list(right_table)
        left_index = left_table.attr_index(left_attr)
        for lt in left_table:
            candidates = set()
            for token in _cell_tokens(lt.cells[left_index]):
                candidates |= right_index.get(token, set())
            for position in sorted(candidates):
                yield lt, right_tuples[position]

    def describe(self):
        return "Join[%s]" % (", ".join(repr(c) for c in self.conditions) or "cross")


def _cell_tokens(cell):
    """Tokens under any anchor span of a cell (same token definition as

    the ``similar`` p-function, so token blocking is exact: a pair that
    shares no token cannot satisfy a share-a-token similarity).
    """
    from repro.processor.library import token_set

    tokens = set()
    for assignment in cell.assignments:
        span = assignment.anchor_span
        tokens |= token_set(span if span is not None else assignment.value)
    return tokens


class ProjectOp(Operator):
    """π onto a subset/reordering of attributes (duplicates kept)."""

    def __init__(self, child, attrs):
        self.child = child
        self.attrs = tuple(attrs)

    def children(self):
        return [self.child]

    def execute(self, context):
        source = self.child.execute(context)
        indexes = [source.attr_index(a) for a in self.attrs]
        table = CompactTable(self.attrs)
        for t in source:
            table.add(CompactTuple([t.cells[i] for i in indexes], maybe=t.maybe))
        return table

    def describe(self):
        return "Project[%s]" % (", ".join(self.attrs),)


class PPredicateOp(Operator):
    """Evaluate a procedural p-predicate over compact tuples (§4.1).

    For each tuple: expansion cells are expanded away, the possible
    input tuples are enumerated, the procedure runs once per possible
    input, and each produced row becomes an ``exact`` compact tuple —
    flagged maybe when the input represented more than one possible
    tuple (or was itself maybe).
    """

    def __init__(self, child, name, spec, input_attrs, output_attrs):
        self.child = child
        self.name = name
        self.spec = spec
        self.input_attrs = tuple(input_attrs)
        self.output_attrs = tuple(output_attrs)
        self.attrs = child.attrs + self.output_attrs

    def children(self):
        return [self.child]

    def execute(self, context):
        import itertools

        source = self.child.execute(context)
        cap = context.config.ppredicate_cap
        input_indexes = [source.attr_index(a) for a in self.input_attrs]
        table = CompactTable(self.attrs)
        for t in source:
            # only the *input* cells need concrete values; other cells
            # (including wide expansion families) pass through untouched
            value_lists = []
            choice_uncertainty = t.maybe
            total = 1
            for i in input_indexes:
                cell = t.cells[i]
                values, complete = cell.enumerate_values(cap)
                total *= max(1, len(values))
                if not complete or total > cap:
                    raise EnumerationLimitError(
                        "p-predicate %r input cell too wide; add domain "
                        "constraints before the cleanup step" % (self.name,)
                    )
                if not cell.is_expansion and len(values) > 1:
                    choice_uncertainty = True
                value_lists.append(values)
            for combo in itertools.product(*value_lists):
                context.stats.ppredicate_calls += 1
                try:
                    outputs = list(self.spec.func(*combo))
                except Exception as exc:
                    raise ExecutionFailure.wrap(
                        exc,
                        doc_id=combo_doc_id(combo),
                        operator="PPredicate",
                        predicate=self.name,
                    ) from exc
                for output in outputs:
                    cells = list(t.cells)
                    for i, v in zip(input_indexes, combo):
                        cells[i] = Cell.exact(v)
                    cells.extend(Cell.exact(v) for v in output)
                    table.add(CompactTuple(cells, maybe=choice_uncertainty))
        context.stats.tuples_built += len(table)
        return table

    def describe(self):
        return "PPredicate[%s(%s) -> (%s)]" % (
            self.name,
            ", ".join(self.input_attrs),
            ", ".join(self.output_attrs),
        )


class AnnotateOp(Operator):
    """The ψ annotation operator (section 4.3)."""

    def __init__(self, child, existence, annotated_attrs):
        self.child = child
        self.existence = existence
        self.annotated_attrs = tuple(annotated_attrs)
        self.attrs = child.attrs

    def children(self):
        return [self.child]

    def execute(self, context):
        source = self.child.execute(context)
        return annotate_table(source, self.existence, self.annotated_attrs, context)

    def describe(self):
        parts = []
        if self.existence:
            parts.append("?")
        parts.extend("<%s>" % a for a in self.annotated_attrs)
        return "Annotate[%s]" % (", ".join(parts) or "none")


class UnionOp(Operator):
    """Multiset union of same-schema tables (multi-rule predicates)."""

    def __init__(self, children):
        self._children = list(children)
        if not self._children:
            raise EvaluationError("union of zero children")
        self.attrs = self._children[0].attrs
        for child in self._children[1:]:
            # positional alignment: different rules for one predicate may
            # name the same attribute positions differently
            if len(child.attrs) != len(self.attrs):
                raise EvaluationError(
                    "union children have different arities: %r vs %r"
                    % (child.attrs, self.attrs)
                )

    def children(self):
        return list(self._children)

    def execute(self, context):
        table = CompactTable(self.attrs)
        for child in self._children:
            for t in child.execute(context):
                table.add(t)
        return table

    def describe(self):
        return "Union[%d]" % (len(self._children),)
