"""Pluggable schedulers for the physical execution layer.

The plan-analysis layer (:mod:`repro.processor.split`) decides *what*
can run per corpus partition; a :class:`Scheduler` decides *how* those
per-partition tasks run:

``SerialBackend``
    in-process, one task at a time — the reference behaviour;
``ThreadBackend``
    a thread pool.  Extraction is pure Python, so the GIL limits
    speedups, but threads share memory (no result shipping) and keep
    the pipeline responsive around I/O-bound p-predicates;
``ProcessBackend``
    a ``fork``-based process pool.  Programs carry arbitrary Python
    callables (p-functions are often closures), which do not pickle —
    the task payload is therefore published in a module-level registry
    *before* forking so children inherit it, and only ``(token, index)``
    pairs cross the pipe going in.  Results (compact tables, stats)
    come back pickled.

All backends preserve task order: ``map(fn, items)[i] == fn(items[i])``,
which is what makes partitioned execution byte-identical to serial.

Failure transport
-----------------
A raising task never surfaces as a bare, context-free exception from
the pool.  Every backend wraps task execution: the failure reaches the
caller as a :class:`TaskError` carrying the task index and an enriched,
picklable :class:`~repro.errors.ExecutionFailure` (the transport for
the best-effort error policy's ``FailureRecord``).  ``timeout`` bounds
how long one task's result may take; exceeding it raises a
:class:`TaskError` wrapping a :class:`~repro.errors.PartitionTimeout`.

Reentrancy
----------
The fork payload registry is keyed by a per-``map`` token, so nested or
concurrent ``map`` calls (a session simulating candidates while a
partitioned run is in flight; a task that itself maps) never clobber
each other's payloads — each call publishes under its own token and
removes exactly that token when done.
"""

import io
import itertools
import multiprocessing
import pickle
import threading
import time

from repro.errors import ExecutionFailure, PartitionTimeout
from repro.observability.logs import get_logger

__all__ = [
    "Scheduler",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "TaskError",
    "make_scheduler",
    "BACKENDS",
]

logger = get_logger("processor")

#: upper bound on the wait between timeout-deadline checks; detection
#: of a hung task happens within about one such interval of the deadline
_POLL_INTERVAL = 0.05


def _poll_interval(timeout):
    """Bounded wait between deadline checks (~timeout/10, capped)."""
    return max(min(_POLL_INTERVAL, timeout / 10.0), 0.001)


class TaskError(ExecutionFailure):
    """A task of a scheduler ``map`` failed.

    ``task_index`` is the position of the failing item; ``failure`` is
    the enriched :class:`ExecutionFailure` describing what happened in
    the worker (for in-process backends it chains the original
    exception via ``__cause__``; across a process boundary only the
    picklable summary survives).
    """

    def __init__(self, message, task_index=None, failure=None, **context):
        super().__init__(message, **context)
        self.task_index = task_index
        self.failure = failure

    def __reduce__(self):  # pragma: no cover - TaskError stays in-process
        return (_rebuild_task_error, (self.args[0], self.task_index, self.failure))


def _rebuild_task_error(message, task_index, failure):  # pragma: no cover
    return TaskError(message, task_index=task_index, failure=failure)


def _task_error(index, total, exc):
    """Wrap a worker exception with its task position."""
    failure = ExecutionFailure.wrap(exc)
    error = TaskError(
        "task %d (of %d) failed: %s" % (index, total, failure),
        task_index=index,
        failure=failure,
    )
    error.__cause__ = exc if exc is not failure else failure.__cause__
    return error


def _timeout_error(index, total, timeout):
    failure = PartitionTimeout(
        "task %d (of %d) exceeded the partition timeout of %.3gs"
        % (index, total, timeout),
        operator="partition",
        exc_type="PartitionTimeout",
    )
    return TaskError(str(failure), task_index=index, failure=failure)


def _watched_call(fn, item, index, total, timeout):
    """Run one task on a watchdog thread, polling the deadline.

    The caller learns about a hung task within about one polling
    interval of ``timeout`` instead of blocking until (unless) the task
    returns.  Detection is still not enforcement: the stuck thread
    cannot be killed and leaks as a daemon — the process backend is the
    one that terminates hung work.  A task that *completes* past the
    deadline between two polls still raises (after-the-fact detection,
    the historical serial behaviour).
    """
    outcome = {}

    def runner():
        try:
            outcome["result"] = fn(item)
        except BaseException as exc:  # transported to the calling thread
            outcome["error"] = exc

    thread = threading.Thread(
        target=runner, name="repro-task-watchdog-%d" % index, daemon=True
    )
    deadline = time.perf_counter() + timeout
    poll = _poll_interval(timeout)
    thread.start()
    while True:
        thread.join(poll)
        if not thread.is_alive():
            break
        if time.perf_counter() > deadline:
            logger.warning(
                "task %d hung past the %.3gs partition timeout; "
                "abandoning its watchdog thread",
                index,
                timeout,
            )
            raise _timeout_error(index, total, timeout)
    if "error" in outcome:
        exc = outcome["error"]
        raise _task_error(index, total, exc) from exc
    if time.perf_counter() > deadline:
        raise _timeout_error(index, total, timeout)
    return outcome["result"]


def _serial_map(fn, items, timeout=None):
    """In-process, order-preserving map with guarded tasks.

    Without a ``timeout`` every task runs inline.  With one, each task
    runs under :func:`_watched_call`, so even a hung task surfaces as a
    :class:`TaskError` within about one polling interval of the
    deadline (previously the timeout was checked only after the task
    returned, so a hang was never detected at all).
    """
    items = list(items)
    out = []
    for index, item in enumerate(items):
        if timeout is None:
            try:
                out.append(fn(item))
            except Exception as exc:
                raise _task_error(index, len(items), exc) from exc
        else:
            out.append(_watched_call(fn, item, index, len(items), timeout))
    return out


class Scheduler:
    """Protocol: ``map`` a function over items, order-preserving.

    ``shared`` is an optional sequence of objects both sides of a
    process boundary already hold (fork-inherited corpus documents);
    backends that ship results between address spaces send them by
    reference instead of by value.  ``artifacts`` is the columnar
    artifact set as ``(path, digest)`` mmap references (see
    :meth:`~repro.columnar.store.ColumnarStore.artifact_refs`):
    registered in the fork payload so workers map the same read-only
    files instead of receiving unpickled copies.  In-process backends
    ignore both.  ``timeout`` bounds one task's result in seconds (see
    the module docstring for per-backend enforcement strength).

    After every :meth:`map`, ``last_map_payload_bytes`` holds the bytes
    that actually crossed an address-space boundary for that call
    (inbound task references plus outbound pickled results); in-process
    backends report 0.  ``payload_bytes`` accumulates across calls.
    The physical layer folds these into the
    ``repro.sched.payload_bytes`` metric.
    """

    name = "abstract"
    workers = 1
    last_map_payload_bytes = 0
    payload_bytes = 0

    def map(self, fn, items, shared=(), timeout=None, artifacts=()):
        raise NotImplementedError


class SerialBackend(Scheduler):
    """Run every task inline, in order."""

    name = "serial"

    def __init__(self, workers=1):
        # a serial scheduler may still drive >1 logical partition (so
        # partitioned semantics can be tested without concurrency)
        self.workers = max(1, int(workers))

    def map(self, fn, items, shared=(), timeout=None, artifacts=()):
        self.last_map_payload_bytes = 0
        return _serial_map(fn, list(items), timeout)


def _first_overdue(futures, starts, timeout):
    """Index of the first started, unfinished task past its deadline.

    Each task's clock starts when a worker actually picks it up (its
    entry appears in ``starts``), not when it was queued — the timeout
    bounds partition *work*, and queued tasks behind a hung one are
    flagged through the hung task itself.
    """
    now = time.perf_counter()
    for index, future in enumerate(futures):
        started = starts.get(index)
        if started is not None and not future.done() and now - started > timeout:
            return index
    return None


class ThreadBackend(Scheduler):
    """A thread pool; shared memory, order-preserving.

    Timeouts are detected by polling: every task stamps its start time
    when a worker picks it up, and the result loop waits in bounded
    slices, checking *all* running tasks against their own deadlines —
    so a hang anywhere in the batch surfaces within about one polling
    interval of ``timeout``, regardless of which future the loop happens
    to be waiting on (previously each ``future.result(timeout)`` clock
    started only once the loop reached that future, inflating detection
    latency by everything in front of it).  On timeout the pool is
    abandoned without waiting (``cancel_futures`` drops queued tasks);
    already-running threads cannot be killed, only detected — the
    process backend is the one that enforces.
    """

    name = "thread"

    def map(self, fn, items, shared=(), timeout=None, artifacts=()):
        items = list(items)
        self.last_map_payload_bytes = 0
        if self.workers == 1 or len(items) <= 1:
            return _serial_map(fn, items, timeout)
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures import ThreadPoolExecutor

        starts = {}

        def stamped(index, item):
            starts[index] = time.perf_counter()
            return fn(item)

        poll = None if timeout is None else _poll_interval(timeout)
        pool = ThreadPoolExecutor(max_workers=self.workers)
        wait_for_pool = True
        try:
            futures = [
                pool.submit(stamped, index, item)
                for index, item in enumerate(items)
            ]
            results = []
            for index, future in enumerate(futures):
                while True:
                    try:
                        results.append(future.result(poll))
                        break
                    except FutureTimeout:
                        overdue = _first_overdue(futures, starts, timeout)
                        if overdue is not None:
                            wait_for_pool = False
                            raise _timeout_error(overdue, len(items), timeout)
                    except Exception as exc:
                        raise _task_error(index, len(items), exc) from exc
            return results
        finally:
            pool.shutdown(wait=wait_for_pool, cancel_futures=not wait_for_pool)

    def __init__(self, workers):
        self.workers = max(1, int(workers))


#: Fork payload registry: ``map``-call token -> :class:`_ForkPayload`.
#: Children inherit the whole registry at fork time; each ``map`` call
#: publishes under a fresh token and deletes exactly that token when it
#: finishes, so nested or concurrent calls never clobber one another
#: (the regression this replaces: single module-level slots that a
#: second in-flight ``map`` silently overwrote).
_FORK_PAYLOADS = {}
_FORK_TOKENS = itertools.count(1)


class _ForkPayload:
    """One ``map`` call's task closure plus its shared-object table.

    ``shared`` holds objects registered *before* forking, and
    ``shared_index`` maps ``id(obj) -> position`` over them.  Fork gives
    parent and children the same objects at the same positions, so a
    ``(token, position)`` pair is a stable cross-process reference for
    exactly as long as the payload is published — the span of one
    ``map``.

    ``artifacts`` holds columnar-bundle ``(path, digest)`` refs: a few
    strings, not array data.  Workers re-open the referenced read-only
    files with ``mmap`` (:func:`repro.columnar.store.
    attach_process_artifacts`), so the corpus's column tables are never
    pickled across the pipe in either direction.
    """

    __slots__ = ("fn", "items", "shared", "shared_index", "artifacts")

    def __init__(self, fn, items, shared, artifacts=()):
        self.fn = fn
        self.items = items
        self.shared = list(shared)
        self.shared_index = {id(obj): i for i, obj in enumerate(self.shared)}
        self.artifacts = tuple(artifacts)


def _resolve_shared(token, index):
    """Unpickling hook: registry position -> live object."""
    return _FORK_PAYLOADS[token].shared[index]


def _shared_dumps(value, token):
    payload = _FORK_PAYLOADS[token]

    def reduce_shared(obj):
        index = payload.shared_index.get(id(obj))
        if index is not None and payload.shared[index] is obj:
            return (_resolve_shared, (token, index))
        return obj.__reduce_ex__(pickle.HIGHEST_PROTOCOL)

    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
    # dispatch_table is keyed by class, so the per-object hook only
    # fires for shared-object classes (documents); everything else
    # pickles on the C fast path, unlike a persistent_id callback
    pickler.dispatch_table = {type(obj): reduce_shared for obj in payload.shared}
    pickler.dump(value)
    return buffer.getvalue()


def _shared_loads(blob):
    # tokens resolve through the module-level ``_resolve_shared``, so
    # the stock (C) unpickler does all the work
    return pickle.loads(blob)


def _invoke_fork_payload(task):
    """Child-side task runner: ``(ok, blob)`` or ``(err, failure)``.

    Both the task body *and* the result pickling are guarded: a result
    that cannot pickle (or a half-pickled blob abandoned mid-``dump``)
    must surface as a contextful failure in the parent, never as a
    bare pipe error — and must leave no stale module state behind.
    """
    token, index = task
    payload = _FORK_PAYLOADS[token]
    if payload.artifacts:
        try:
            from repro.columnar.store import attach_process_artifacts

            attach_process_artifacts(payload.artifacts)
        except Exception:  # the artifact map is an accelerator only
            logger.warning("worker could not map columnar artifacts")
    try:
        result = payload.fn(payload.items[index])
    except Exception as exc:
        return ("err", ExecutionFailure.wrap(exc))
    try:
        return ("ok", _shared_dumps(result, token))
    except Exception as exc:
        return ("err", ExecutionFailure.wrap(exc, operator="result-pickling"))


class ProcessBackend(Scheduler):
    """A ``fork``-based process pool (CPython GIL-free parallelism).

    Falls back to serial execution on platforms without the ``fork``
    start method (the scheduler protocol promises results, not a
    mechanism).  A fresh pool is forked per :meth:`map` call so the
    children always see the current payload; fork is cheap relative to
    the extraction work a partition represents.  On timeout the pool is
    terminated, killing the hung worker — the only backend that can
    enforce, not just detect.

    ``share_results=False`` disables the shared-object reference table:
    results (and the documents inside their compact tables) come back
    pickled *by value*, the pre-reference-shipping behaviour.  It exists
    for the payload benchmarks — byte-identical answers, orders of
    magnitude more bytes across the pipe — and as a safety hatch should
    a document class ever stop round-tripping by reference.

    Payload accounting: ``last_map_payload_bytes`` after a pooled
    :meth:`map` is the pickled size of the inbound ``(token, index)``
    task references plus every outbound result blob — the bytes that
    actually crossed the pipe, excluding only fixed protocol framing.
    """

    name = "process"

    def __init__(self, workers, share_results=True):
        self.workers = max(1, int(workers))
        self.share_results = bool(share_results)
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._context = None

    def map(self, fn, items, shared=(), timeout=None, artifacts=()):
        items = list(items)
        self.last_map_payload_bytes = 0
        if self.workers == 1 or len(items) <= 1 or self._context is None:
            if self._context is None:  # pragma: no cover
                logger.warning("fork unavailable; process backend running serially")
            return _serial_map(fn, items, timeout)
        token = next(_FORK_TOKENS)
        _FORK_PAYLOADS[token] = _ForkPayload(
            fn, items, shared if self.share_results else (), artifacts
        )
        shipped = 0
        try:
            with self._context.Pool(min(self.workers, len(items))) as pool:
                handles = []
                for i in range(len(items)):
                    task = (token, i)
                    shipped += len(pickle.dumps(task, pickle.HIGHEST_PROTOCOL))
                    handles.append(
                        pool.apply_async(_invoke_fork_payload, (task,))
                    )
                outcomes = []
                for index, handle in enumerate(handles):
                    try:
                        outcomes.append(handle.get(timeout))
                    except multiprocessing.TimeoutError:
                        # leaving the ``with`` terminates the pool, so
                        # the hung child is killed, not leaked
                        raise _timeout_error(index, len(items), timeout)
                results = []
                for index, (status, value) in enumerate(outcomes):
                    if status == "err":
                        error = TaskError(
                            "task %d (of %d) failed: %s" % (index, len(items), value),
                            task_index=index,
                            failure=value,
                        )
                        raise error
                    shipped += len(value)
                    results.append(_shared_loads(value))
                return results
        finally:
            del _FORK_PAYLOADS[token]
            self.last_map_payload_bytes = shipped
            self.payload_bytes += shipped


BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_scheduler(backend="serial", workers=1):
    """Build a scheduler from an :class:`ExecConfig`-style spec.

    ``backend`` may also be a ready :class:`Scheduler` instance, which
    is returned unchanged (tests inject counting schedulers this way).
    """
    if isinstance(backend, Scheduler):
        return backend
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            "unknown backend %r (choose from %s)"
            % (backend, ", ".join(sorted(BACKENDS)))
        )
    return cls(workers)
