"""Pluggable schedulers for the physical execution layer.

The plan-analysis layer (:mod:`repro.processor.split`) decides *what*
can run per corpus partition; a :class:`Scheduler` decides *how* those
per-partition tasks run:

``SerialBackend``
    in-process, one task at a time — the reference behaviour;
``ThreadBackend``
    a thread pool.  Extraction is pure Python, so the GIL limits
    speedups, but threads share memory (no result shipping) and keep
    the pipeline responsive around I/O-bound p-predicates;
``ProcessBackend``
    a ``fork``-based process pool.  Programs carry arbitrary Python
    callables (p-functions are often closures), which do not pickle —
    the task payload is therefore published in a module-level slot
    *before* forking so children inherit it, and only partition indexes
    cross the pipe going in.  Results (compact tables, stats) come back
    pickled.

All backends preserve task order: ``map(fn, items)[i] == fn(items[i])``,
which is what makes partitioned execution byte-identical to serial.
"""

import io
import logging
import multiprocessing
import pickle

__all__ = [
    "Scheduler",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_scheduler",
    "BACKENDS",
]

logger = logging.getLogger("repro.processor")


class Scheduler:
    """Protocol: ``map`` a function over items, order-preserving.

    ``shared`` is an optional sequence of objects both sides of a
    process boundary already hold (fork-inherited corpus documents);
    backends that ship results between address spaces send them by
    reference instead of by value.  In-process backends ignore it.
    """

    name = "abstract"
    workers = 1

    def map(self, fn, items, shared=()):
        raise NotImplementedError


class SerialBackend(Scheduler):
    """Run every task inline, in order."""

    name = "serial"

    def __init__(self, workers=1):
        # a serial scheduler may still drive >1 logical partition (so
        # partitioned semantics can be tested without concurrency)
        self.workers = max(1, int(workers))

    def map(self, fn, items, shared=()):
        return [fn(item) for item in items]


class ThreadBackend(Scheduler):
    """A thread pool; shared memory, order-preserving."""

    name = "thread"

    def __init__(self, workers):
        self.workers = max(1, int(workers))

    def map(self, fn, items, shared=()):
        items = list(items)
        if self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))


#: The payload slot ``ProcessBackend`` children inherit through fork.
_FORK_PAYLOAD = None
#: Objects registered *before* forking, and ``id(obj) -> position``
#: over them.  Fork gives parent and children the same objects at the
#: same positions, so a list index is a stable cross-process reference
#: for exactly as long as the pool lives — the span of one ``map``.
_FORK_SHARED = []
_FORK_SHARED_INDEX = {}


def _resolve_shared(index):
    """Unpickling hook: position in :data:`_FORK_SHARED` -> live object."""
    return _FORK_SHARED[index]


def _reduce_shared(obj):
    """Reduce a registered shared object to a by-reference token.

    Compact tables are mostly spans, and every span drags its source
    document (full text + markup regions) along; shipping those back
    from a worker would pickle the corpus once per partition.  Objects
    registered in :data:`_FORK_SHARED` are fork-inherited, so the
    parent resolves the token to its own copy instead.  Unregistered
    instances of a registered class pickle normally.
    """
    index = _FORK_SHARED_INDEX.get(id(obj))
    if index is not None and _FORK_SHARED[index] is obj:
        return (_resolve_shared, (index,))
    return obj.__reduce_ex__(pickle.HIGHEST_PROTOCOL)


def _shared_dumps(value):
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
    # dispatch_table is keyed by class, so the per-object hook only
    # fires for shared-object classes (documents); everything else
    # pickles on the C fast path, unlike a persistent_id callback
    pickler.dispatch_table = {type(obj): _reduce_shared for obj in _FORK_SHARED}
    pickler.dump(value)
    return buffer.getvalue()


def _shared_loads(blob):
    # tokens resolve through the module-level ``_resolve_shared``, so
    # the stock (C) unpickler does all the work
    return pickle.loads(blob)


def _invoke_fork_payload(index):
    fn, items = _FORK_PAYLOAD
    return _shared_dumps(fn(items[index]))


class ProcessBackend(Scheduler):
    """A ``fork``-based process pool (CPython GIL-free parallelism).

    Falls back to serial execution on platforms without the ``fork``
    start method (the scheduler protocol promises results, not a
    mechanism).  A fresh pool is forked per :meth:`map` call so the
    children always see the current payload; fork is cheap relative to
    the extraction work a partition represents.
    """

    name = "process"

    def __init__(self, workers):
        self.workers = max(1, int(workers))
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._context = None

    def map(self, fn, items, shared=()):
        global _FORK_PAYLOAD, _FORK_SHARED, _FORK_SHARED_INDEX
        items = list(items)
        if self.workers == 1 or len(items) <= 1 or self._context is None:
            if self._context is None:  # pragma: no cover
                logger.warning("fork unavailable; process backend running serially")
            return [fn(item) for item in items]
        _FORK_PAYLOAD = (fn, items)
        _FORK_SHARED = list(shared)
        _FORK_SHARED_INDEX = {id(obj): i for i, obj in enumerate(_FORK_SHARED)}
        try:
            with self._context.Pool(min(self.workers, len(items))) as pool:
                blobs = pool.map(_invoke_fork_payload, range(len(items)))
            return [_shared_loads(blob) for blob in blobs]
        finally:
            _FORK_PAYLOAD = None
            _FORK_SHARED = []
            _FORK_SHARED_INDEX = {}


BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_scheduler(backend="serial", workers=1):
    """Build a scheduler from an :class:`ExecConfig`-style spec.

    ``backend`` may also be a ready :class:`Scheduler` instance, which
    is returned unchanged (tests inject counting schedulers this way).
    """
    if isinstance(backend, Scheduler):
        return backend
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            "unknown backend %r (choose from %s)"
            % (backend, ", ".join(sorted(BACKENDS)))
        )
    return cls(workers)
