"""Plan analysis: splitting a compiled plan at the document boundary.

Document-at-a-time IE is embarrassingly parallel: every operator that
consumes one document's tuples independently of every other document's
can run once per corpus partition, with the per-partition compact
tables unioned afterwards.  This module walks a compiled operator tree
and splits it into

*document-local prefix*
    maximal subtrees whose output over the whole corpus equals the
    union of their outputs over the corpus partitions — extensional
    scans, ``from`` generators, constraint/condition selections,
    projections, per-tuple p-predicates, and ψ whose group keys contain
    a document-anchored attribute;

*global suffix*
    everything above those subtrees — cross-document joins, scans of
    already-merged intensional tables, multi-rule unions, and any ψ
    whose groups may span documents.

The analysis is purely structural, so re-compiling the same predicate
yields the same split: the physical layer relies on this to execute the
prefix per partition from fresh plan copies and align the results.

An attribute is *document-anchored* when every value it can hold is a
span of the tuple's single source document (span identity includes the
``doc_id``, so grouping by such an attribute can never merge tuples
from different documents — or partitions).
"""

from repro.processor.operators import (
    AnnotateOp,
    ConditionSelect,
    ConstraintSelect,
    FromOp,
    Operator,
    PPredicateOp,
    ProjectOp,
    ScanExtensional,
    UnionOp,
)

__all__ = [
    "GatherOp",
    "PlanSplit",
    "split_plan",
    "bind_tables",
    "walk_plan",
    "subtree_locality",
]


def walk_plan(root):
    """Depth-first iterator over every operator of a compiled plan.

    Static analyses (``repro lint --plan``) use this to count and
    classify operators without executing anything.
    """
    yield root
    for child in root.children():
        for op in walk_plan(child):
            yield op


class GatherOp(Operator):
    """Suffix leaf holding the union of per-partition prefix results.

    Takes the place of a document-local subtree when the global suffix
    executes; ``index`` identifies which local root it replaced so
    tracing can attribute the per-partition measurements back to it.
    """

    def __init__(self, table, attrs, partitions, index=0):
        self.table = table
        self.attrs = tuple(attrs)
        self.partitions = partitions
        self.index = index

    def execute(self, context):
        return self.table

    def describe(self):
        return "Gather[(%s), %d partitions, %d tuples]" % (
            ", ".join(self.attrs),
            self.partitions,
            len(self.table),
        )


def _locality(op):
    """``(local, doc_attrs)`` for one subtree.

    ``local`` — executing per partition and unioning equals executing
    whole-corpus; ``doc_attrs`` — output attributes guaranteed to hold
    spans of the tuple's single source document.
    """
    if isinstance(op, ScanExtensional):
        return True, set(op.attrs)
    if isinstance(op, FromOp):
        local, docs = _locality(op.child)
        # the generated cell is expand({contain(s_i)}) over anchors of
        # the source document, so the output attr is doc-anchored too
        return local, docs | {op.out_attr}
    if isinstance(op, (ConstraintSelect, ConditionSelect)):
        # per-tuple filters; surviving cells hold subsets of the input
        # assignments, so doc anchoring is preserved
        return _locality(op.child)
    if isinstance(op, ProjectOp):
        local, docs = _locality(op.child)
        return local, docs & set(op.attrs)
    if isinstance(op, PPredicateOp):
        # the procedure runs once per possible input tuple: per-tuple
        # work.  Input cells are re-written to enumerated values — for a
        # doc-anchored attr those are spans of the same document — while
        # procedure *outputs* are arbitrary and never doc-anchored.
        local, docs = _locality(op.child)
        return local, set(docs)
    if isinstance(op, AnnotateOp):
        local, docs = _locality(op.child)
        effective = [a for a in op.annotated_attrs if a in op.child.attrs]
        if not effective:
            # existence-only ψ flags tuples individually
            return local, docs
        keys = set(op.child.attrs) - set(effective)
        if not (docs & keys):
            # groups may merge tuples from different documents
            return False, set()
        # each group is confined to one document, so grouping per
        # partition produces exactly the serial groups (in scan order)
        return local, docs & keys
    if isinstance(op, UnionOp):
        # per-partition interleaving of the children would reorder the
        # multiset relative to a serial child-by-child union, so unions
        # stay in the suffix (their children may still be local)
        return False, set()
    # JoinOp pairs tuples across documents; ScanIntensional/TableSource/
    # GatherOp read merged tables; unknown operators: conservatively global
    return False, set()


def subtree_locality(op):
    """Public form of the locality judgment for one subtree.

    Returns ``(local, doc_attrs)`` — whether the subtree is
    document-local and which output attributes are doc-anchored; the
    same judgment :func:`split_plan` uses, exposed for static analysis.
    """
    return _locality(op)


def _collect_local_roots(op, out):
    local, _ = _locality(op)
    if local:
        out.append(op)
        return
    for child in op.children():
        _collect_local_roots(child, out)


class PlanSplit:
    """One compiled plan, analyzed into prefix subtrees + suffix."""

    def __init__(self, root):
        self.root = root
        self.local_roots = []
        _collect_local_roots(root, self.local_roots)
        #: the whole plan is document-local (the common shape for an
        #: unfolded single-rule extraction predicate)
        self.fully_local = len(self.local_roots) == 1 and self.local_roots[0] is root

    @property
    def has_local_work(self):
        return bool(self.local_roots)

    def explain(self):
        """The split as text: local roots marked inside the plan tree."""
        marked = {id(op) for op in self.local_roots}

        def render(op, depth):
            flag = " *local*" if id(op) in marked else ""
            lines = ["  " * depth + op.describe() + flag]
            for child in op.children():
                lines.extend(render(child, depth + 1))
            return lines

        return "\n".join(render(self.root, 0))


def split_plan(plan):
    """Analyze one compiled plan; returns a :class:`PlanSplit`."""
    return PlanSplit(plan)


def bind_tables(split, tables, partitions=1):
    """The global suffix with each local root replaced by a gather leaf.

    Mutates ``split``'s (freshly compiled) tree in place; ``tables``
    pairs with ``split.local_roots`` by position.  When the whole plan
    was local the suffix degenerates to the gather leaf itself.
    """
    if len(tables) != len(split.local_roots):
        raise ValueError(
            "expected %d gathered tables, got %d"
            % (len(split.local_roots), len(tables))
        )
    replacements = {
        id(op): GatherOp(table, op.attrs, partitions, index=i)
        for i, (op, table) in enumerate(zip(split.local_roots, tables))
    }
    if id(split.root) in replacements:
        return replacements[id(split.root)]
    _rebind(split.root, replacements)
    return split.root


def _rebind(op, replacements):
    for name in ("child", "left", "right"):
        child = getattr(op, name, None)
        if child is None:
            continue
        if id(child) in replacements:
            setattr(op, name, replacements[id(child)])
        else:
            _rebind(child, replacements)
    if getattr(op, "_children", None):
        op._children = [replacements.get(id(c), c) for c in op._children]
        for child in op._children:
            if not isinstance(child, GatherOp):
                _rebind(child, replacements)
