"""BAnnotate: the ψ annotation operator's algorithm (section 4.3).

Given a table and a rule's annotations ``(f, A)``:

* attribute annotations ``A`` group the table by the non-annotated
  (key) attributes and emit one output tuple per distinct key, whose
  annotated cells are *choice* cells holding every value observed for
  that key (the paper's index construction, Figure 5);
* the existence annotation ``f`` then flags every output tuple maybe.

An output tuple for key *n* escapes the maybe flag only when some
input tuple certainly contributes key *n* in every world: the input
tuple is not maybe, and each of its key cells either is an expansion
cell (all values certainly present) or holds a single value.

We work on compact tables directly (the optimisation the paper defers
to its full version): keys are enumerated — they are typically
documents, i.e. ``exact`` — while annotated cells are unioned at the
*assignment* level, so wide ``contain`` families never get expanded.
"""

import itertools

from repro.ctables.assignments import value_key
from repro.ctables.ctable import Cell, CompactTable, CompactTuple
from repro.errors import EnumerationLimitError

__all__ = ["annotate_table"]


def annotate_table(source, existence, annotated_attrs, context):
    """Apply ψ with annotations ``(existence, annotated_attrs)``."""
    annotated_attrs = tuple(a for a in annotated_attrs if a in source.attrs)
    if annotated_attrs:
        source = _apply_attribute_annotations(source, annotated_attrs, context)
    if not existence:
        return source
    table = CompactTable(source.attrs)
    for t in source:
        table.add(t.as_maybe())
    return table


def _apply_attribute_annotations(source, annotated_attrs, context):
    attrs = source.attrs
    annotated_indexes = [i for i, a in enumerate(attrs) if a in annotated_attrs]
    key_indexes = [i for i, a in enumerate(attrs) if a not in annotated_attrs]
    cap = context.config.enum_cap

    index = {}  # key values -> _GroupEntry
    order = []  # insertion order of keys, for deterministic output
    for t in source:
        key_value_lists = []
        certain_choice_keys = True
        for i in key_indexes:
            cell = t.cells[i]
            values, complete = cell.enumerate_values(cap)
            if not complete:
                raise EnumerationLimitError(
                    "BAnnotate key attribute %r is too approximate to "
                    "enumerate; constrain it first" % (attrs[i],)
                )
            key_value_lists.append(values)
            if not cell.is_expansion and len(values) > 1:
                certain_choice_keys = False
        certain = not t.maybe and certain_choice_keys
        for combo in itertools.product(*key_value_lists):
            key = tuple(value_key(v) for v in combo)
            entry = index.get(key)
            if entry is None:
                entry = _GroupEntry(combo)
                index[key] = entry
                order.append(key)
            entry.certain = entry.certain or certain
            for i in annotated_indexes:
                for assignment in t.cells[i].assignments:
                    entry.add(i, assignment)

    table = CompactTable(attrs)
    for key in order:
        entry = index[key]
        cells = [None] * len(attrs)
        for position, i in enumerate(key_indexes):
            cells[i] = Cell.exact(entry.key_values[position])
        for i in annotated_indexes:
            cells[i] = Cell(entry.assignments_for(i))
        table.add(CompactTuple(cells, maybe=not entry.certain))
    context.stats.tuples_built += len(table)
    return table


class _GroupEntry:
    __slots__ = ("key_values", "certain", "_assignments", "_seen")

    def __init__(self, key_values):
        self.key_values = key_values
        self.certain = False
        self._assignments = {}
        self._seen = {}

    def add(self, attr_index, assignment):
        bucket = self._seen.setdefault(attr_index, set())
        if assignment not in bucket:
            bucket.add(assignment)
            self._assignments.setdefault(attr_index, []).append(assignment)

    def assignments_for(self, attr_index):
        return tuple(self._assignments.get(attr_index, ()))
