"""Three-valued evaluation of selection/join conditions over cells.

A condition over a compact tuple can hold for *some* of the possible
tuples, for *all* of them, or for none (section 4.1).  Operators use
the triple ``(some, all, filtered-cells)`` as follows:

* ``not some``  → drop the tuple;
* ``filtered``  → tighten involved cells to the satisfying values
  (possible only when the cell is made of ``exact`` assignments);
* ``not all``   → keep, but the tuple must be flagged maybe **unless**
  the condition involves a single attribute whose cell is an expansion
  cell that was fully filtered (each surviving value is its own,
  certain, tuple).  Claiming certainty anywhere else would remove
  worlds and break the superset guarantee (see DESIGN.md).

Enumeration of ``contain`` assignments is avoided whenever the
condition shape allows: ordering comparisons only ever hold for
numeric values, and equality against a constant only for occurrences
of that constant — both enumerable in linear time.  The generic
fallback enumerates up to ``enum_cap`` values and degrades to
keep-as-maybe beyond it.
"""

import re
from dataclasses import dataclass

from repro.ctables.assignments import Contain, Exact, value_key, value_number
from repro.errors import ExecutionFailure
from repro.text.span import Span
from repro.text.tokenize import NUMBER
from repro.xlog.comparisons import comparison_holds

__all__ = ["ComparisonCondition", "PFunctionCondition", "ConditionResult"]

_ORDERING_OPS = ("<", "<=", ">", ">=")


@dataclass
class ConditionResult:
    some: bool
    all: bool
    #: attr -> replacement Cell, only for cells that were *fully*
    #: filtered to exactly the satisfying values
    filtered: dict
    #: True when an enumeration cap was hit (forces conservative maybe)
    capped: bool = False


class _Side:
    """One side of a condition: a constant, or an attribute with an

    optional numeric offset (``firstPage + 5``).
    """

    def __init__(self, attr=None, const=None, offset=0):
        self.attr = attr
        self.const = const
        self.offset = offset

    @property
    def is_const(self):
        return self.attr is None


def _effective(value, offset):
    """Apply a side's numeric offset; non-numeric values become null."""
    if not offset:
        return value
    number = value_number(value)
    return None if number is None else number + offset


def _numeric_candidates(assignment):
    """Values of an assignment that can satisfy a numeric comparison."""
    if isinstance(assignment, Exact):
        return [assignment.value]
    spans = []
    for token in assignment.span.tokens:
        if token.kind == NUMBER:
            spans.append(Span(assignment.span.doc, token.start, token.end))
    return spans


def _occurrence_candidates(assignment, text):
    """Sub-span values of an assignment whose text equals ``text``."""
    if isinstance(assignment, Exact):
        return [assignment.value]
    span = assignment.span
    out = []
    for match in re.finditer(re.escape(text), span.text):
        out.append(Span(span.doc, span.start + match.start(), span.start + match.end()))
    return out


def _enumerate_side(cell, context, op, other_const):
    """``(values, complete, exhaustive)`` for one attribute side.

    ``complete`` means every *possibly satisfying* value is included;
    ``exhaustive`` means every possible value of the cell is included
    (needed to conclude ``all``).
    """
    cap = context.config.enum_cap
    has_contain = any(isinstance(a, Contain) for a in cell.assignments)
    if has_contain and op in _ORDERING_OPS:
        values = []
        for a in cell.assignments:
            values.extend(_numeric_candidates(a))
        context.stats.values_enumerated += len(values)
        return _dedup(values), True, False
    if (
        has_contain
        and op in ("=",)
        and other_const is not None
    ):
        values = []
        text = other_const.text if isinstance(other_const, Span) else str(other_const)
        for a in cell.assignments:
            values.extend(_occurrence_candidates(a, text))
            # a numeric constant may also match differently-formatted
            # numbers ("500,000"); add numeric candidates to be safe
            if value_number(other_const) is not None:
                values.extend(_numeric_candidates(a))
        context.stats.values_enumerated += len(values)
        return _dedup(values), True, False
    values, full = cell.enumerate_values(cap)
    context.stats.values_enumerated += len(values)
    if not full:
        context.stats.cap_hits += 1
    return values, full, full


def _dedup(values):
    return list({value_key(v): v for v in values}.values())


def _filterable(cell):
    return all(isinstance(a, Exact) for a in cell.assignments)


def _filtered_cell(cell, keep_values):
    keep = {value_key(v) for v in keep_values}
    assignments = [a for a in cell.assignments if value_key(a.value) in keep]
    return cell.with_assignments(assignments)


class ComparisonCondition:
    """``left op right`` where each side is an attribute or constant."""

    def __init__(self, left, op, right):
        self.left = left
        self.op = op
        self.right = right

    @property
    def involved(self):
        return tuple(s.attr for s in (self.left, self.right) if not s.is_const)

    def __repr__(self):
        def show(side):
            return side.attr if not side.is_const else repr(side.const)

        return "%s %s %s" % (show(self.left), self.op, show(self.right))

    def _too_wide(self, cells_by_attr, context):
        """Cheap pre-check: would enumeration blow the pair cap?

        Uses ``value_count`` upper bounds so no values are materialised
        on the (common, early-iteration) conservative path.  Ordering
        and equal-to-constant shapes enumerate linearly, so they are
        exempt.
        """
        product = 1
        for side, other in ((self.left, self.right), (self.right, self.left)):
            if side.is_const:
                continue
            cell = cells_by_attr[side.attr]
            has_contain = any(isinstance(a, Contain) for a in cell.assignments)
            if has_contain and (
                self.op in _ORDERING_OPS
                or (self.op == "=" and other.is_const)
            ):
                # the linear (numeric / occurrence) path; bound by tokens
                product *= max(
                    1,
                    sum(
                        len(a.anchor_span.tokens) if isinstance(a, Contain) else 1
                        for a in cell.assignments
                    ),
                )
            else:
                product *= max(1, cell.value_count())
        return product > context.config.pair_cap

    def evaluate(self, cells_by_attr, context):
        if self._too_wide(cells_by_attr, context):
            context.stats.cap_hits += 1
            return ConditionResult(some=True, all=False, filtered={}, capped=True)
        sides = []
        capped = False
        exhaustive_all = True
        for side, other in ((self.left, self.right), (self.right, self.left)):
            if side.is_const:
                sides.append(([side.const], True, True))
                continue
            other_const = other.const if other.is_const else None
            cell = cells_by_attr[side.attr]
            values, complete, exhaustive = _enumerate_side(
                cell, context, self.op, other_const
            )
            if not complete:
                capped = True
            exhaustive_all = exhaustive_all and exhaustive
            sides.append((values, complete, exhaustive))
        if capped:
            return ConditionResult(some=True, all=False, filtered={}, capped=True)
        left_values = sides[0][0]
        right_values = sides[1][0]
        if len(left_values) * len(right_values) > context.config.pair_cap:
            context.stats.cap_hits += 1
            return ConditionResult(some=True, all=False, filtered={}, capped=True)
        sat_left, sat_right = set(), set()
        some = False
        all_combos_satisfy = bool(left_values) and bool(right_values)
        left_offset = 0 if self.left.is_const else self.left.offset
        right_offset = 0 if self.right.is_const else self.right.offset
        for lv in left_values:
            for rv in right_values:
                if comparison_holds(
                    _effective(lv, left_offset), self.op, _effective(rv, right_offset)
                ):
                    some = True
                    sat_left.add(value_key(lv))
                    sat_right.add(value_key(rv))
                else:
                    all_combos_satisfy = False
        all_flag = some and all_combos_satisfy and exhaustive_all
        filtered = {}
        if some:
            for side, sat in ((self.left, sat_left), (self.right, sat_right)):
                if side.is_const:
                    continue
                cell = cells_by_attr[side.attr]
                if _filterable(cell):
                    keep = [
                        a.value
                        for a in cell.assignments
                        if value_key(a.value) in sat
                    ]
                    filtered[side.attr] = _filtered_cell(cell, keep)
        return ConditionResult(some=some, all=all_flag, filtered=filtered, capped=False)


class PFunctionCondition:
    """A p-function used as a filter, e.g. ``similar(@t1, @t2)``."""

    def __init__(self, name, func, sides):
        self.name = name
        self.func = func
        self.sides = list(sides)  # list of _Side

    @property
    def involved(self):
        return tuple(s.attr for s in self.sides if not s.is_const)

    def __repr__(self):
        return "%s(%s)" % (
            self.name,
            ", ".join(s.attr if not s.is_const else repr(s.const) for s in self.sides),
        )

    def _side_tokens(self, side, cells_by_attr):
        """Union of token sets over a side's anchor spans / values.

        A superset of the tokens of every value the side can take, so
        an empty cross-side intersection *proves* a share-a-token
        similarity function cannot hold.
        """
        from repro.processor.library import token_set

        if side.is_const:
            return token_set(side.const)
        tokens = set()
        for assignment in cells_by_attr[side.attr].assignments:
            span = assignment.anchor_span
            tokens |= token_set(span if span is not None else assignment.value)
        return tokens

    def evaluate(self, cells_by_attr, context):
        import itertools

        # A procedural function needs concrete values.  ``contain``
        # families are kept approximate — except that for share-a-token
        # similarity functions an empty token overlap is an exact
        # refutation, which is what makes one-sided refinements shrink
        # the result before both sides are exact.
        has_contain = False
        for side in self.sides:
            if side.is_const:
                continue
            if any(isinstance(a, Contain) for a in cells_by_attr[side.attr].assignments):
                has_contain = True
                break
        if has_contain:
            if getattr(self.func, "blockable", False) and len(self.sides) == 2:
                left_tokens = self._side_tokens(self.sides[0], cells_by_attr)
                if left_tokens:
                    right_tokens = self._side_tokens(self.sides[1], cells_by_attr)
                    if not (left_tokens & right_tokens):
                        return ConditionResult(some=False, all=False, filtered={})
            context.stats.cap_hits += 1
            return ConditionResult(some=True, all=False, filtered={}, capped=True)
        product = 1
        for side in self.sides:
            if side.is_const:
                continue
            product *= max(1, cells_by_attr[side.attr].value_count())
        if product > context.config.pair_cap:
            context.stats.cap_hits += 1
            return ConditionResult(some=True, all=False, filtered={}, capped=True)

        per_side = []
        capped = False
        for side in self.sides:
            if side.is_const:
                per_side.append(([side.const], True))
                continue
            cell = cells_by_attr[side.attr]
            values, full = cell.enumerate_values(context.config.enum_cap)
            context.stats.values_enumerated += len(values)
            if not full:
                context.stats.cap_hits += 1
                capped = True
            per_side.append((values, full))
        if capped:
            return ConditionResult(some=True, all=False, filtered={}, capped=True)
        combo_count = 1
        for values, _ in per_side:
            combo_count *= len(values)
        if combo_count > context.config.pair_cap:
            context.stats.cap_hits += 1
            return ConditionResult(some=True, all=False, filtered={}, capped=True)
        combos = itertools.product(*[values for values, _ in per_side])
        sat_per_side = [set() for _ in per_side]
        some = False
        all_flag = True
        for combo in combos:
            try:
                truth = bool(self.func(*combo))
            except Exception as exc:
                from repro.processor.operators import combo_doc_id

                raise ExecutionFailure.wrap(
                    exc,
                    doc_id=combo_doc_id(combo),
                    operator="p-function",
                    predicate=self.name,
                ) from exc
            if truth:
                some = True
                for sat, v in zip(sat_per_side, combo):
                    sat.add(value_key(v))
            else:
                all_flag = False
        filtered = {}
        if some:
            for side, sat in zip(self.sides, sat_per_side):
                if side.is_const:
                    continue
                cell = cells_by_attr[side.attr]
                if _filterable(cell):
                    keep = [a.value for a in cell.assignments if value_key(a.value) in sat]
                    filtered[side.attr] = _filtered_cell(cell, keep)
        return ConditionResult(
            some=some, all=some and all_flag, filtered=filtered, capped=False
        )


def make_side(attr=None, const=None, offset=0):
    """Factory used by the plan compiler."""
    return _Side(attr=attr, const=const, offset=offset)
