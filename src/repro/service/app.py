"""The service's WSGI application: routing, JSON bodies, NDJSON streams.

Plain WSGI (no framework) so the app runs under the stdlib server, any
WSGI container, or a test harness that calls it directly with a fake
``environ`` — no sockets required.

Routes
------

==========  =================================  =========================
method      path                               purpose
==========  =================================  =========================
GET         /health                            liveness + object counts
GET         /metrics                           MetricsRegistry snapshot
GET         /corpus                            table sizes + digest
POST        /documents                         ingest (append/upsert)
DELETE      /documents/<doc_id>                remove one document
POST        /programs                          submit an Alog program
GET         /programs                          list hosted programs
GET         /programs/<id>                     one program's detail
DELETE      /programs/<id>                     drop a hosted program
POST        /programs/<id>/run                 execute; stream NDJSON
POST        /sessions                          start a refinement session
GET         /sessions                          list sessions
GET         /sessions/<id>                     session status + question
POST        /sessions/<id>/answer              answer pending question
GET         /sessions/<id>/results             stream refined results
DELETE      /sessions/<id>                     cancel a session
==========  =================================  =========================

Result streams are NDJSON (``application/x-ndjson``): a ``header``
line, one ``tuple`` line per result tuple — the structure-preserving
export, maybe flags and all — and a closing ``summary`` line carrying
the run's timing and partition-reuse counters.  Streaming happens
*outside* the service lock; only the execution itself serialises.
"""

import json
import re

from repro.ctables.export import cell_to_dict
from repro.service.state import ServiceError
from repro.text.html_parser import parse_html

__all__ = ["ServiceApp", "build_app"]

_STATUS_TEXT = {
    200: "200 OK",
    201: "201 Created",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    429: "429 Too Many Requests",
    500: "500 Internal Server Error",
}

_MAX_BODY = 64 * 1024 * 1024  # refuse absurd uploads before reading them


class NDJSONStream:
    """A handler result that streams newline-delimited JSON objects."""

    def __init__(self, lines):
        self.lines = lines  # iterable of dicts

    def __iter__(self):
        for obj in self.lines:
            yield (json.dumps(obj, ensure_ascii=False) + "\n").encode("utf-8")


def stream_result(meta, result):
    """The NDJSON lines for one execution result (header/tuples/summary)."""
    table = result.query_table

    def lines():
        header = {"type": "header", "attrs": list(table.attrs)}
        header.update(meta)
        yield header
        for row in table:
            yield {
                "type": "tuple",
                "maybe": row.maybe,
                "cells": {
                    attr: cell_to_dict(cell)
                    for attr, cell in zip(table.attrs, row.cells)
                },
            }
        summary = {"type": "summary"}
        from repro.service.state import ExtractionService

        summary.update(ExtractionService.result_summary(result))
        yield summary

    return NDJSONStream(lines())


class ServiceApp:
    """Routes WSGI requests onto one :class:`ExtractionService`."""

    def __init__(self, service):
        self.service = service
        self.routes = [
            ("GET", re.compile(r"^/health/?$"), self._health),
            ("GET", re.compile(r"^/metrics/?$"), self._metrics),
            ("GET", re.compile(r"^/corpus/?$"), self._corpus),
            ("POST", re.compile(r"^/documents/?$"), self._ingest),
            (
                "DELETE",
                re.compile(r"^/documents/(?P<doc_id>[^/]+)$"),
                self._remove_document,
            ),
            ("POST", re.compile(r"^/programs/?$"), self._submit_program),
            ("GET", re.compile(r"^/programs/?$"), self._list_programs),
            (
                "GET",
                re.compile(r"^/programs/(?P<program_id>[^/]+)$"),
                self._get_program,
            ),
            (
                "DELETE",
                re.compile(r"^/programs/(?P<program_id>[^/]+)$"),
                self._drop_program,
            ),
            (
                "POST",
                re.compile(r"^/programs/(?P<program_id>[^/]+)/run$"),
                self._run_program,
            ),
            ("POST", re.compile(r"^/sessions/?$"), self._create_session),
            ("GET", re.compile(r"^/sessions/?$"), self._list_sessions),
            (
                "GET",
                re.compile(r"^/sessions/(?P<session_id>[^/]+)$"),
                self._session_status,
            ),
            (
                "POST",
                re.compile(r"^/sessions/(?P<session_id>[^/]+)/answer$"),
                self._session_answer,
            ),
            (
                "GET",
                re.compile(r"^/sessions/(?P<session_id>[^/]+)/results$"),
                self._session_results,
            ),
            (
                "DELETE",
                re.compile(r"^/sessions/(?P<session_id>[^/]+)$"),
                self._session_cancel,
            ),
        ]

    # ------------------------------------------------------------------
    # WSGI plumbing
    # ------------------------------------------------------------------
    def __call__(self, environ, start_response):
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        try:
            handler, params = self._match(method, path)
            body = self._read_json(environ)
            result = handler(body, **params)
        except ServiceError as exc:
            return self._json(
                start_response, exc.status, {"error": str(exc)}
            )
        except Exception as exc:  # defensive: a bug must not kill the worker
            return self._json(start_response, 500, {"error": str(exc)})
        if isinstance(result, NDJSONStream):
            start_response(
                _STATUS_TEXT[200], [("Content-Type", "application/x-ndjson")]
            )
            return iter(result)
        status, payload = result
        return self._json(start_response, status, payload)

    def _match(self, method, path):
        allowed = set()
        for route_method, pattern, handler in self.routes:
            match = pattern.match(path)
            if match is None:
                continue
            if route_method != method:
                allowed.add(route_method)
                continue
            return handler, match.groupdict()
        if allowed:
            raise ServiceError(
                "%s not allowed on %s (try %s)"
                % (method, path, "/".join(sorted(allowed))),
                status=405,
            )
        raise ServiceError("no route %s" % path, status=404)

    @staticmethod
    def _read_json(environ):
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except (TypeError, ValueError):
            length = 0
        if length <= 0:
            return {}
        if length > _MAX_BODY:
            raise ServiceError("request body too large")
        raw = environ["wsgi.input"].read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError("request body is not valid JSON: %s" % exc)
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    @staticmethod
    def _json(start_response, status, payload):
        body = (json.dumps(payload, ensure_ascii=False) + "\n").encode("utf-8")
        start_response(
            _STATUS_TEXT.get(status, "%d Error" % status),
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(body))),
            ],
        )
        return [body]

    @staticmethod
    def _field(body, name, kind=str, required=True, default=None):
        value = body.get(name, default)
        if value is None:
            if required:
                raise ServiceError("missing required field %r" % name)
            return default
        if not isinstance(value, kind):
            raise ServiceError(
                "field %r must be %s" % (name, kind.__name__)
            )
        return value

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _health(self, body):
        return 200, {
            "status": "ok",
            "programs": len(self.service.programs),
            "sessions": len(self.service.sessions),
            "documents": sum(
                self.service.corpus.size_of(name)
                for name in self.service.corpus.table_names()
            ),
        }

    def _metrics(self, body):
        return 200, self.service.metrics_snapshot()

    def _corpus(self, body):
        return 200, self.service.corpus_info()

    def _ingest(self, body):
        table = self._field(body, "table")
        raw_docs = self._field(body, "documents", kind=list)
        documents = []
        for i, entry in enumerate(raw_docs):
            if not isinstance(entry, dict):
                raise ServiceError("documents[%d] must be an object" % i)
            doc_id = entry.get("doc_id")
            html = entry.get("html", entry.get("text"))
            if not doc_id or not isinstance(doc_id, str):
                raise ServiceError("documents[%d] needs a string doc_id" % i)
            if html is None or not isinstance(html, str):
                raise ServiceError(
                    "documents[%d] needs html (or text) content" % i
                )
            documents.append(parse_html(doc_id, html))
        added, replaced = self.service.ingest(table, documents)
        return 201, {
            "table": table,
            "added": added,
            "replaced": sorted(replaced),
        }

    def _remove_document(self, body, doc_id):
        removed = self.service.remove([doc_id])
        return 200, {"removed": sorted(removed)}

    def _submit_program(self, body):
        source = self._field(body, "source")
        query = self._field(body, "query", required=False)
        tables = self._field(body, "tables", kind=list, required=False)
        host, resubmitted = self.service.submit_program(
            source, query=query, tables=tables
        )
        payload = host.describe()
        payload["resubmitted"] = resubmitted
        return (200 if resubmitted else 201), payload

    def _list_programs(self, body):
        hosts = self.service.programs
        return 200, {
            "programs": [hosts[pid].describe() for pid in sorted(hosts)]
        }

    def _get_program(self, body, program_id):
        return 200, self.service.get_program(program_id).describe()

    def _drop_program(self, body, program_id):
        self.service.drop_program(program_id)
        return 200, {"dropped": program_id}

    def _run_program(self, body, program_id):
        result = self.service.run_program(program_id)
        return stream_result({"program_id": program_id}, result)

    def _create_session(self, body):
        program_id = self._field(body, "program_id")
        wrapped = self.service.sessions.create(
            program_id,
            max_iterations=body.get("max_iterations"),
            questions_per_iteration=body.get("questions_per_iteration"),
            subset_fraction=body.get("subset_fraction"),
            answer_timeout=body.get("answer_timeout"),
        )
        return 201, wrapped.status()

    def _list_sessions(self, body):
        return 200, {"sessions": self.service.sessions.describe()}

    def _session_status(self, body, session_id):
        return 200, self.service.sessions.get(session_id).status()

    def _session_answer(self, body, session_id):
        if "answer" not in body:
            raise ServiceError("missing required field 'answer'")
        wrapped = self.service.sessions.get(session_id)
        wrapped.submit_answer(body["answer"])
        return 200, {"session_id": session_id, "state": wrapped.state}

    def _session_results(self, body, session_id):
        wrapped = self.service.sessions.get(session_id)
        if wrapped.trace is None:
            raise ServiceError(
                "session %s is %s; results stream once finished"
                % (session_id, wrapped.state),
                status=409,
            )
        return stream_result(
            {"session_id": session_id, "program_id": wrapped.program_id},
            wrapped.trace.final_result,
        )

    def _session_cancel(self, body, session_id):
        wrapped = self.service.sessions.cancel(session_id)
        return 200, {"session_id": session_id, "state": wrapped.state}


def build_app(service, rate_limit=None, rate_burst=None):
    """The full middleware stack around one service.

    ``rate_limit`` (requests/second, ``None`` = unlimited) installs the
    token bucket; logging/metrics middleware always wraps outermost so
    throttled requests are still visible.
    """
    from repro.service.middleware import (
        RateLimitMiddleware,
        RequestLogMiddleware,
        TokenBucket,
    )

    app = ServiceApp(service)
    if rate_limit:
        bucket = TokenBucket(rate_limit, capacity=rate_burst)
        app = RateLimitMiddleware(app, bucket)
    return RequestLogMiddleware(app, metrics=service.metrics)
