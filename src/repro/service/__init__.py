"""The resident extraction service (``repro serve``).

Engine-as-library: one process-resident :class:`ExtractionService`
holds the corpus, the shared acceleration stores, and one persistent
engine per submitted program, behind a small stdlib-WSGI HTTP API —
submit programs, ingest documents incrementally, stream result tuples
(maybe flags preserved), drive refinement sessions, scrape metrics.
"""

from repro.service.app import ServiceApp, build_app
from repro.service.middleware import (
    RateLimitMiddleware,
    RequestLogMiddleware,
    TokenBucket,
)
from repro.service.server import ThreadingWSGIServer, make_service_server
from repro.service.sessions import QueueDeveloper, ServiceSession, SessionManager
from repro.service.state import ExtractionService, ProgramHost, ServiceError

__all__ = [
    "ExtractionService",
    "ProgramHost",
    "QueueDeveloper",
    "RateLimitMiddleware",
    "RequestLogMiddleware",
    "ServiceApp",
    "ServiceError",
    "ServiceSession",
    "SessionManager",
    "ThreadingWSGIServer",
    "TokenBucket",
    "build_app",
    "make_service_server",
]
