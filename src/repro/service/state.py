"""The resident extraction service core (engine-as-library).

One :class:`ExtractionService` owns the state every request shares:

* one mutable :class:`~repro.text.corpus.Corpus` documents are ingested
  into and removed from;
* one :class:`~repro.features.index.IndexStore` (with its
  :class:`~repro.columnar.store.ColumnarStore`), one
  :class:`~repro.processor.context.EvalCache`, and one
  :class:`~repro.columnar.results.ResultStore` — shared by *every*
  submitted program, exactly as a single batch run shares them across
  partitions;
* one resident :class:`~repro.processor.executor.IFlexEngine` per
  submitted program, each with a persistent
  :class:`~repro.processor.executor.RuleCache` so re-submitting an
  unchanged program recomputes **zero** partitions;
* one :class:`~repro.observability.metrics.MetricsRegistry` every
  execution folds its counters into (the ``/metrics`` endpoint).

There is deliberately no per-call process state: document ingestion
mutates the corpus in place, invalidates exactly the content-keyed
cache entries an in-place edit stales, and rebinds every resident
engine (:meth:`IFlexEngine.rebind_corpus`) — so the next execution's
delta path recomputes only the partitions whose content digests moved.
The default configuration partitions by fixed-size document chunks
(``ExecConfig.partition_docs``), whose boundaries are positionally
stable under ingestion: appending k documents dirties exactly the
chunks they land in.

Thread safety: every corpus mutation and every execution runs under one
service lock (executions share mutable rule caches); streaming a
finished result happens outside it.
"""

import hashlib
import threading

from repro.errors import ReproError
from repro.observability.logs import get_logger
from repro.observability.metrics import MetricsRegistry
from repro.processor.context import EvalCache, ExecConfig
from repro.processor.executor import IFlexEngine, RuleCache
from repro.processor.library import make_similar
from repro.text.corpus import Corpus
from repro.xlog.program import PFunction, Program

__all__ = ["ExtractionService", "ProgramHost", "ServiceError"]

logger = get_logger("service")

#: documents per partition when the caller's config does not choose —
#: small enough that single-document ingestion dirties one partition
DEFAULT_PARTITION_DOCS = 1


class ServiceError(ReproError):
    """A request-attributable failure, carrying its HTTP status."""

    def __init__(self, message, status=400):
        super().__init__(message)
        self.status = status


class ProgramHost:
    """One submitted program's resident execution state."""

    __slots__ = (
        "program_id",
        "source",
        "query",
        "tables",
        "program",
        "engine",
        "cache",
        "warnings",
        "runs",
        "last_summary",
    )

    def __init__(self, program_id, source, query, tables, program, engine, warnings):
        self.program_id = program_id
        self.source = source
        self.query = query
        self.tables = tables
        self.program = program
        self.engine = engine
        #: the persistent rule cache every run of this program reuses —
        #: what makes a warm re-submission recompute zero partitions
        self.cache = RuleCache(store=engine.result_store)
        self.warnings = warnings
        self.runs = 0
        self.last_summary = None

    def describe(self):
        info = {
            "program_id": self.program_id,
            "query": self.program.query,
            "tables": sorted(self.program.extensional),
            "runs": self.runs,
            "warnings": list(self.warnings),
        }
        if self.last_summary is not None:
            info["last_summary"] = dict(self.last_summary)
        return info


class ExtractionService:
    """Resident engines plus shared stores behind one lock."""

    def __init__(
        self,
        corpus=None,
        features=None,
        config=None,
        metrics=None,
        similar_threshold=0.6,
    ):
        self.lock = threading.RLock()
        self.corpus = corpus if corpus is not None else Corpus()
        self.features = features
        self.config = config or ExecConfig()
        if not getattr(self.config, "partition_docs", None):
            self.config.partition_docs = DEFAULT_PARTITION_DOCS
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.similar_threshold = similar_threshold
        # one persistent result store instance shared by every engine:
        # ExecConfig.result_cache accepts a ResultStore, so normalising
        # the config here means each engine's from_config() resolves to
        # this same object (shared eviction counters, shared live set)
        from repro.columnar.results import ResultStore

        self.result_store = ResultStore.from_config(self.config)
        if self.result_store is not None:
            self.config.result_cache = self.result_store
        # corpus-wide acceleration state, shared across programs and
        # sessions exactly as one engine shares it across partitions
        if getattr(self.config, "use_index", True):
            from repro.columnar import ColumnarStore
            from repro.features.index import IndexStore

            self.index_store = IndexStore(
                columnar=ColumnarStore(
                    cache_dir=getattr(self.config, "artifact_cache", None)
                )
            )
        else:
            self.index_store = None
        self.eval_cache = (
            EvalCache() if getattr(self.config, "use_eval_cache", True) else None
        )
        self.programs = {}
        from repro.service.sessions import SessionManager

        self.sessions = SessionManager(self)

    # ------------------------------------------------------------------
    # programs
    # ------------------------------------------------------------------
    def _p_functions(self):
        similar = make_similar(self.similar_threshold)
        return {
            "similar": PFunction("similar", similar),
            "approxMatch": PFunction("approxMatch", similar),
        }

    @staticmethod
    def program_digest(source, query, tables):
        payload = repr((source, query, tuple(sorted(tables))))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def submit_program(self, source, query=None, tables=None):
        """Parse, lint, and host one Alog program; idempotent.

        Returns ``(host, resubmitted)``.  The program id is a digest of
        (source, query, declared tables), so re-submitting an unchanged
        program resolves to the *same* resident engine and rule cache —
        the warm path.  A defective program raises :class:`ServiceError`
        (HTTP 400) carrying the analyzer's message.
        """
        if not source or not source.strip():
            raise ServiceError("empty program source")
        with self.lock:
            declared = (
                tuple(tables) if tables else tuple(self.corpus.table_names())
            )
            program_id = self.program_digest(source, query, declared)
            host = self.programs.get(program_id)
            if host is not None:
                return host, True
            try:
                program = Program.parse(
                    source,
                    extensional=declared,
                    p_functions=self._p_functions(),
                    query=query,
                )
                engine = IFlexEngine(
                    program,
                    self.corpus,
                    features=self.features,
                    config=self.config,
                    validate=True,
                    index_store=self.index_store,
                    eval_cache=self.eval_cache,
                    metrics=self.metrics,
                )
            except ReproError as exc:
                raise ServiceError(str(exc)) from exc
            warnings = []
            lint = engine.lint_result
            if lint is not None:
                warnings = [d.render() for d in lint.warnings]
            host = ProgramHost(
                program_id, source, query, declared, program, engine, warnings
            )
            self.programs[program_id] = host
            self._count("programs_submitted")
            logger.info("program %s submitted (query=%s)", program_id, program.query)
            return host, False

    def get_program(self, program_id):
        host = self.programs.get(program_id)
        if host is None:
            raise ServiceError("no program %r" % (program_id,), status=404)
        return host

    def drop_program(self, program_id):
        with self.lock:
            self.get_program(program_id)
            del self.programs[program_id]

    def run_program(self, program_id):
        """Execute one hosted program; returns its ExecutionResult.

        Runs under the service lock (rule caches are not concurrency
        safe); the caller streams the finished result outside it.
        """
        with self.lock:
            host = self.get_program(program_id)
            missing = sorted(
                name
                for name in host.program.extensional
                if name not in self.corpus
            )
            if missing:
                raise ServiceError(
                    "extensional table(s) not ingested: %s" % ", ".join(missing),
                    status=409,
                )
            try:
                result = host.engine.execute(cache=host.cache)
            except ReproError as exc:
                raise ServiceError(str(exc), status=500) from exc
            host.runs += 1
            host.last_summary = self.result_summary(result)
            self._count("executions")
            return result

    @staticmethod
    def result_summary(result):
        stats = result.stats
        summary = result.summary()
        summary.update(
            reuse=dict(result.reuse_summary),
            partitions_reused=stats.partitions_reused,
            partitions_recomputed=stats.partitions_recomputed,
            result_cache_hits=stats.result_cache_hits,
            result_cache_misses=stats.result_cache_misses,
        )
        return summary

    # ------------------------------------------------------------------
    # documents
    # ------------------------------------------------------------------
    def ingest(self, table, documents):
        """Add (or in-place replace) documents; rebind every engine.

        Returns ``(added, replaced_ids)``.  Replaced documents — same
        ``doc_id``, new content — are the one mutation content-addressed
        caches cannot age out by missing, so their index / eval-cache /
        columnar entries are invalidated explicitly before the engines
        rebind.
        """
        if not table or not str(table).strip():
            raise ServiceError("ingest needs a table name")
        documents = list(documents)
        if not documents:
            raise ServiceError("ingest needs at least one document")
        with self.lock:
            try:
                replaced = self.corpus.add_documents(
                    table, documents, replace=True
                )
            except ValueError as exc:
                raise ServiceError(str(exc)) from exc
            self._invalidate(replaced)
            self._rebind()
            self._count("documents_ingested", len(documents))
            logger.info(
                "ingested %d document(s) into %r (%d replaced)",
                len(documents),
                table,
                len(replaced),
            )
            return len(documents) - len(replaced), replaced

    def remove(self, doc_ids):
        """Remove documents from every table; rebind every engine."""
        with self.lock:
            removed = self.corpus.remove_documents(doc_ids)
            if not removed:
                raise ServiceError(
                    "no such document(s): %s" % ", ".join(sorted(doc_ids)),
                    status=404,
                )
            self._invalidate(removed)
            self._rebind()
            self._count("documents_removed", len(removed))
            return removed

    def _invalidate(self, doc_ids):
        if not doc_ids:
            return
        if self.index_store is not None:
            self.index_store.invalidate(doc_ids)
        if self.eval_cache is not None:
            self.eval_cache.invalidate_docs(doc_ids)

    def _rebind(self):
        for host in self.programs.values():
            host.engine.rebind_corpus()

    def corpus_info(self):
        with self.lock:
            tables = {
                name: self.corpus.size_of(name)
                for name in self.corpus.table_names()
            }
            return {
                "tables": tables,
                "documents": sum(tables.values()),
                "content_digest": self.corpus.content_digest,
            }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _count(self, name, amount=1):
        self.metrics.counter(
            "repro.service.%s" % name,
            help="resident-service lifecycle counter",
        ).inc(amount)

    def metrics_snapshot(self):
        with self.lock:
            if self.result_store is not None:
                from repro.observability.metrics import record_evictions

                # gauge-like: rewrite the eviction counter's absolute
                # value is wrong for a counter, so track the delta
                already = self.metrics.counter("repro.cache.evicted").value()
                delta = self.result_store.evicted - already
                if delta > 0:
                    record_evictions(self.metrics, delta)
            return self.metrics.snapshot()
