"""WSGI middleware for the resident service: logging and rate limiting.

Both are plain WSGI wrappers so they compose with any app and test
without sockets.  The token bucket takes an injectable clock so tests
control time instead of sleeping.
"""

import json
import threading
import time

from repro.observability.logs import get_logger

__all__ = ["RateLimitMiddleware", "RequestLogMiddleware", "TokenBucket"]

logger = get_logger("service")


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, ``capacity`` burst.

    ``clock`` is any monotonic ``() -> float``; tests pass a fake to
    step time deterministically.
    """

    def __init__(self, rate, capacity=None, clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive, got %r" % (rate,))
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else max(1.0, rate)
        if self.capacity <= 0:
            raise ValueError("capacity must be positive, got %r" % (capacity,))
        self._clock = clock
        self._tokens = self.capacity
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, amount=1.0):
        """Take ``amount`` tokens if available; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.capacity, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    def retry_after(self, amount=1.0):
        """Seconds until ``amount`` tokens will have refilled (>= 0)."""
        with self._lock:
            deficit = amount - self._tokens
            return max(0.0, deficit / self.rate)


class RateLimitMiddleware:
    """Reject requests beyond the bucket with 429 + ``Retry-After``.

    Operational endpoints in ``exempt`` (health probes, metrics
    scrapes) always pass — throttling them would blind the operator
    exactly when the service is saturated.
    """

    def __init__(self, app, bucket, exempt=("/health", "/metrics")):
        self.app = app
        self.bucket = bucket
        self.exempt = frozenset(exempt)

    def __call__(self, environ, start_response):
        path = environ.get("PATH_INFO", "/")
        if path in self.exempt or self.bucket.try_acquire():
            return self.app(environ, start_response)
        retry = self.bucket.retry_after()
        body = json.dumps({"error": "rate limit exceeded"}).encode("utf-8")
        start_response(
            "429 Too Many Requests",
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(body))),
                ("Retry-After", "%d" % max(1, int(retry + 0.999))),
            ],
        )
        return [body]


class RequestLogMiddleware:
    """Log each request and fold it into the service metrics.

    Placed *outside* the rate limiter so throttled requests are still
    logged and counted (status label ``429``).
    """

    def __init__(self, app, metrics=None):
        self.app = app
        self.metrics = metrics

    def __call__(self, environ, start_response):
        method = environ.get("REQUEST_METHOD", "-")
        path = environ.get("PATH_INFO", "/")
        started = time.monotonic()
        captured = {}

        def capture(status, headers, exc_info=None):
            captured["status"] = status
            return start_response(status, headers, exc_info)

        try:
            response = self.app(environ, capture)
        except Exception:
            self._record(method, path, "500", started)
            logger.exception("%s %s failed", method, path)
            raise
        self._record(method, path, captured.get("status", "-"), started)
        return response

    def _record(self, method, path, status, started):
        elapsed_ms = (time.monotonic() - started) * 1000.0
        code = status.split(" ", 1)[0] if status else "-"
        logger.info("%s %s -> %s (%.1fms)", method, path, code, elapsed_ms)
        if self.metrics is not None:
            self.metrics.counter(
                "repro.service.requests",
                help="HTTP requests handled, by method and status",
            ).inc(method=method, status=code)
            if code == "429":
                self.metrics.counter(
                    "repro.service.rate_limited",
                    help="requests rejected by the token bucket",
                ).inc()
