"""The stdlib HTTP server hosting the service app.

``wsgiref`` plus ``ThreadingMixIn``: one thread per connection, daemon
threads so a long-lived stream never blocks shutdown.  The handler's
per-request stderr logging is rerouted through the observability
logger (the middleware already logs at info; the raw access lines go
to debug).
"""

import socketserver
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer

from repro.observability.logs import get_logger

__all__ = ["ThreadingWSGIServer", "make_service_server"]

logger = get_logger("service")


class ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
    """wsgiref's server, one daemon thread per request."""

    daemon_threads = True
    allow_reuse_address = True


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        logger.debug("%s %s", self.address_string(), format % args)


def make_service_server(host, port, app):
    """A ready-to-``serve_forever`` server; ``port=0`` binds ephemeral.

    The caller reads ``server.server_address`` for the real port —
    that is how the CI smoke test (and any supervisor) discovers an
    ephemerally bound service.
    """
    server = ThreadingWSGIServer((host, port), _QuietHandler)
    server.set_app(app)
    return server
