"""Refinement sessions over HTTP: queue-backed developer + manager.

A :class:`~repro.assistant.session.RefinementSession` is a synchronous
loop that blocks on ``developer.answer(...)``.  To expose it over HTTP
the service runs each session on a background thread and bridges the
developer protocol through queues: the session thread parks in
:meth:`QueueDeveloper.answer` until a client POSTs an answer (or
cancels), and the pending question is readable from the session's
status at any time.

Sessions run over a *snapshot* of the service corpus taken at creation
(``corpus.without(())`` copies the table lists while sharing the
immutable Document objects), so concurrent ingestion never mutates a
corpus an engine is mid-scan on.  They share the service's result
store — a session's partition spills warm later batch runs and vice
versa — but build their own in-memory index/eval caches, which a
snapshot cannot stale.
"""

import itertools
import queue
import threading

from repro.assistant.session import RefinementSession
from repro.observability.logs import get_logger
from repro.service.state import ServiceError

__all__ = ["QueueDeveloper", "ServiceSession", "SessionManager"]

logger = get_logger("service")

#: sentinel an HTTP cancel pushes through the answer queue
_CANCEL = object()


class SessionCancelled(Exception):
    """Raised inside the session thread when a client cancels."""


class QueueDeveloper:
    """The developer protocol, bridged through a queue for HTTP clients.

    ``answer`` publishes the pending question and blocks until
    :meth:`push` delivers a value — ``None`` meaning "I don't know",
    which the session treats as a declined question, exactly like an
    empty reply at the interactive prompt.
    """

    def __init__(self, answer_timeout=None):
        self.answer_timeout = answer_timeout
        self.questions_seen = 0
        self.questions_answered = 0
        self.diagnostics = []
        self.pending = None
        self._answers = queue.Queue()
        self._lock = threading.Lock()

    def answer(self, question, registry):
        self.questions_seen += 1
        with self._lock:
            self.pending = {
                "predicate": question.ie_predicate,
                "attribute": question.attribute,
                "feature": question.feature_name,
                "text": question.text(registry),
            }
        try:
            value = self._answers.get(timeout=self.answer_timeout)
        except queue.Empty:
            value = None  # unattended timeout counts as "I don't know"
        finally:
            with self._lock:
                self.pending = None
        if value is _CANCEL:
            raise SessionCancelled()
        if value is None:
            return None
        self.questions_answered += 1
        return value

    def notify_diagnostics(self, diagnostics):
        with self._lock:
            self.diagnostics.extend(d.render() for d in diagnostics)

    def push(self, value):
        """Deliver one answer (or ``None`` for IDK) to the session thread."""
        self._answers.put(value)

    def cancel(self):
        self._answers.put(_CANCEL)

    def pending_question(self):
        with self._lock:
            return dict(self.pending) if self.pending else None


class ServiceSession:
    """One refinement session running on a daemon thread."""

    def __init__(self, session_id, program_id, session, developer):
        self.session_id = session_id
        self.program_id = program_id
        self.session = session
        self.developer = developer
        self.state = "running"
        self.error = None
        self.trace = None
        self._thread = threading.Thread(
            target=self._run, name="repro-session-%s" % session_id, daemon=True
        )

    def start(self):
        self._thread.start()
        return self

    def _run(self):
        try:
            self.trace = self.session.run()
            self.state = "finished"
        except SessionCancelled:
            self.state = "cancelled"
        except Exception as exc:  # surfaced via status, not lost to the thread
            logger.exception("session %s failed", self.session_id)
            self.error = str(exc)
            self.state = "failed"

    def wait(self, timeout=None):
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def submit_answer(self, value):
        if self.state != "running":
            raise ServiceError(
                "session %s is %s, not awaiting answers"
                % (self.session_id, self.state),
                status=409,
            )
        self.developer.push(value)

    def cancel(self):
        if self.state == "running":
            self.developer.cancel()

    def status(self):
        info = {
            "session_id": self.session_id,
            "program_id": self.program_id,
            "state": self.state,
            "questions_seen": self.developer.questions_seen,
            "questions_answered": self.developer.questions_answered,
            "pending_question": self.developer.pending_question(),
            "diagnostics": list(self.developer.diagnostics),
        }
        if self.error is not None:
            info["error"] = self.error
        trace = self.trace
        if trace is not None:
            info["converged"] = trace.converged
            info["iterations"] = len(trace.records)
            info["tuples"] = trace.final_result.tuple_count
            info["maybe"] = trace.final_result.query_table.maybe_count()
            info["refined_source"] = trace.program.source()
        return info


class SessionManager:
    """Creates, indexes, and cancels the service's refinement sessions."""

    def __init__(self, service):
        self.service = service
        self.sessions = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def create(
        self,
        program_id,
        max_iterations=None,
        questions_per_iteration=None,
        subset_fraction=None,
        answer_timeout=None,
    ):
        service = self.service
        with service.lock:
            host = service.get_program(program_id)
            missing = sorted(
                name
                for name in host.program.extensional
                if name not in service.corpus
            )
            if missing:
                raise ServiceError(
                    "extensional table(s) not ingested: %s" % ", ".join(missing),
                    status=409,
                )
            snapshot = service.corpus.without(())
            developer = QueueDeveloper(answer_timeout=answer_timeout)
            kwargs = {}
            if max_iterations is not None:
                kwargs["max_iterations"] = max_iterations
            if questions_per_iteration is not None:
                kwargs["questions_per_iteration"] = questions_per_iteration
            if subset_fraction is not None:
                kwargs["subset_fraction"] = subset_fraction
            try:
                session = RefinementSession(
                    host.program,
                    snapshot,
                    developer,
                    features=service.features,
                    config=service.config,
                    metrics=service.metrics,
                    **kwargs
                )
            except Exception as exc:
                raise ServiceError(str(exc)) from exc
        with self._lock:
            session_id = "s%d" % next(self._ids)
            wrapped = ServiceSession(session_id, program_id, session, developer)
            self.sessions[session_id] = wrapped
        service._count("sessions_started")
        wrapped.start()
        return wrapped

    def get(self, session_id):
        wrapped = self.sessions.get(session_id)
        if wrapped is None:
            raise ServiceError("no session %r" % (session_id,), status=404)
        return wrapped

    def describe(self):
        with self._lock:
            return [
                self.sessions[sid].status() for sid in sorted(self.sessions)
            ]

    def cancel(self, session_id):
        wrapped = self.get(session_id)
        wrapped.cancel()
        return wrapped

    def __len__(self):
        return len(self.sessions)
