"""Offset-preserving noise injection.

Real crawled pages are messier than clean generator output.  This
module perturbs record documents *without moving any ground-truth
offsets*: characters are substituted in place (same length) and only in
regions that touch neither a truth span nor a markup region — so the
same `Record` ground truth stays valid and the whole experiment stack
can be re-run on noisy corpora (robustness tests do exactly that).
"""

import random

from repro.datagen.base import Record
from repro.text.document import Document

__all__ = ["noisy_record", "noisy_tables"]

_SUBSTITUTABLE = "abcdefghijklmnopqrstuvwxyz"


def _protected_intervals(record):
    doc = record.doc
    intervals = []
    for spans in record.spans.values():
        if spans is None:
            continue
        if not isinstance(spans, (list, tuple)):
            spans = [spans]
        for span in spans:
            if span is not None:
                intervals.append((span.start, span.end))
    for kind_intervals in doc.regions.values():
        intervals.extend(kind_intervals)
    for label in doc.labels:
        intervals.append((label.start, label.end))
    return intervals


def _is_protected(position, intervals, pad=1):
    for start, end in intervals:
        if start - pad <= position < end + pad:
            return True
    return False


def noisy_record(record, rate=0.02, seed=0):
    """A copy of ``record`` with in-place character substitutions.

    ``rate`` is the per-character substitution probability over
    unprotected lowercase letters.  Ground-truth spans, markup regions,
    and labels (± one guard character) are never touched, and the text
    length never changes, so every offset in the record stays valid.
    """
    rng = random.Random((seed, record.doc.doc_id).__repr__())
    doc = record.doc
    protected = _protected_intervals(record)
    chars = list(doc.text)
    for i, ch in enumerate(chars):
        if ch not in _SUBSTITUTABLE:
            continue
        if _is_protected(i, protected):
            continue
        if rng.random() < rate:
            chars[i] = rng.choice(_SUBSTITUTABLE)
    noisy_doc = Document(
        doc.doc_id,
        "".join(chars),
        regions={k: list(v) for k, v in doc.regions.items()},
        labels=list(doc.labels),
        meta=dict(doc.meta),
    )
    from repro.text.span import Span

    new_spans = {}
    for attr, span in record.spans.items():
        if span is None:
            new_spans[attr] = None
        elif isinstance(span, (list, tuple)):
            new_spans[attr] = [
                None if s is None else Span(noisy_doc, s.start, s.end) for s in span
            ]
        else:
            new_spans[attr] = Span(noisy_doc, span.start, span.end)
    return Record(noisy_doc, dict(record.values), new_spans, html=record.html)


def noisy_tables(tables, rate=0.02, seed=0):
    """Apply :func:`noisy_record` to every record of every table."""
    return {
        name: [noisy_record(r, rate=rate, seed=seed) for r in records]
        for name, records in tables.items()
    }
