"""Shared plumbing for the synthetic page generators.

Each generator emits :class:`Record` objects: one document (a page
fragment describing one entity, as in the paper's experimental setup)
plus the ground-truth value and span of every attribute.  Spans are
located *after* HTML parsing, by searching the flattened text with the
surrounding context the generator knows it emitted — so ground truth
always refers to real offsets in the document the engine sees.
"""

import re
from dataclasses import dataclass, field

from repro.text.html_parser import parse_html
from repro.text.span import Span

__all__ = ["Record", "build_record", "find_span", "corpus_tag"]


def corpus_tag(seed, sizes):
    """A short deterministic tag for one generation run.

    Document ids embed it so two corpora generated with different
    parameters can never collide — id collisions would poison every
    doc-id-keyed cache (token memoisation, the executor's reuse cache).
    """
    import zlib

    blob = repr((seed, sorted(dict(sizes).items()))).encode()
    return "%06x" % (zlib.crc32(blob) & 0xFFFFFF)


@dataclass
class Record:
    """One record document with its ground truth."""

    doc: object
    values: dict = field(default_factory=dict)  # attr -> scalar value
    spans: dict = field(default_factory=dict)   # attr -> Span
    html: str = ""                              # the source markup

    def value(self, attr):
        return self.values.get(attr)

    def span(self, attr):
        return self.spans.get(attr)


def find_span(doc, text, after=None):
    """The span of ``text`` in ``doc``, optionally anchored by context.

    ``after`` is literal text that must immediately precede the match
    (whitespace-tolerant).  Raises if the span cannot be located —
    silent ground-truth gaps would corrupt every experiment downstream.
    """
    if after is not None:
        pattern = re.escape(after) + r"\s*(" + re.escape(text) + r")"
        match = re.search(pattern, doc.text)
        if match is None:
            raise ValueError(
                "ground truth %r (after %r) not found in %s" % (text, after, doc.doc_id)
            )
        return Span(doc, match.start(1), match.end(1))
    match = re.search(re.escape(text), doc.text)
    if match is None:
        raise ValueError("ground truth %r not found in %s" % (text, doc.doc_id))
    return Span(doc, match.start(), match.end())


def build_record(doc_id, html, truths, meta=None):
    """Parse ``html`` and resolve ground truth.

    ``truths`` maps attribute name to ``(value, text, after)`` — the
    scalar value, the exact text to locate, and optional anchoring
    context.  A ``None`` entry records an attribute that this record
    genuinely lacks (e.g. journalYear of a conference paper).
    """
    doc = parse_html(doc_id, html, meta=meta)
    record = Record(doc, html=html)
    for attr, truth in truths.items():
        if truth is None:
            record.values[attr] = None
            record.spans[attr] = None
            continue
        value, text, after = truth
        record.values[attr] = value
        record.spans[attr] = find_span(doc, text, after)
    return record
