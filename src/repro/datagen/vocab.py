"""Word pools for the synthetic page generators.

Everything is generated from these pools with a seeded RNG, so corpora
are deterministic, reasonably diverse, and free of real-world text.
"""

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "TITLE_ADJECTIVES",
    "TITLE_NOUNS",
    "TECH_TERMS",
    "CITIES",
    "person_name",
    "movie_title",
    "book_title",
    "paper_title",
    "unique_choices",
]

FIRST_NAMES = (
    "Alice Robert Carol David Erin Frank Grace Henry Irene James Karen Louis "
    "Maria Nathan Olivia Peter Quinn Rachel Samuel Teresa Ulrich Victor Wendy "
    "Xavier Yvonne Zachary Anna Boris Clara Dmitri Elena Felix Gina Hugo "
    "Ingrid Jorge Keiko Lars Mona Nils"
).split()

LAST_NAMES = (
    "Anderson Baker Chen Dawson Evans Fischer Gupta Hoffman Ivanov Johnson "
    "Kim Larson Miller Novak Olsen Patel Quentin Rossi Schmidt Tanaka "
    "Ullman Vogel Watson Xu Yang Zhang Abbott Burke Castillo Dunn Ellis "
    "Ferrara Goldman Hayes Iyer Jensen Kowalski Lindqvist Moreau Nakamura"
).split()

TITLE_ADJECTIVES = (
    "Silent Crimson Hidden Broken Golden Distant Burning Frozen Midnight "
    "Scarlet Electric Savage Gentle Hollow Iron Lonely Painted Quiet Rising "
    "Shattered Velvet Wandering Winter Ancient Bitter Clever Daring Eternal "
    "Fearless Glorious"
).split()

TITLE_NOUNS = (
    "River Garden Empire Shadow Horizon Letter Voyage Kingdom Mirror Station "
    "Harvest Fortress Lantern Meadow Orchard Passage Quarry Reef Summit "
    "Tides Valley Willow Archive Beacon Canyon Delta Ember Falcon Glacier "
    "Harbor"
).split()

TECH_TERMS = (
    "Query Index Stream Schema Join Transaction Cache Cluster Graph Ranking "
    "Sampling Provenance Workflow Crawler Wrapper Extraction Integration "
    "Optimization Replication Partitioning Privacy Mining Warehouse Sensor "
    "Skyline Sketch Lineage Mediator Ontology Annotation"
).split()

CITIES = (
    "Champaign Madison Seattle Austin Boulder Ithaca Berkeley Cambridge "
    "Princeton Evanston Tucson Raleigh Columbus Annarbor Lafayette"
).split()


def person_name(rng, with_middle=False):
    """A generated person name, optionally with a middle initial."""
    first = rng.choice(FIRST_NAMES)
    last = rng.choice(LAST_NAMES)
    if with_middle and rng.random() < 0.3:
        middle = rng.choice("ABCDEFGHJKLMNPRST")
        return "%s %s. %s" % (first, middle, last)
    return "%s %s" % (first, last)


def movie_title(rng):
    pattern = rng.random()
    adjective = rng.choice(TITLE_ADJECTIVES)
    noun = rng.choice(TITLE_NOUNS)
    if pattern < 0.4:
        return "The %s %s" % (adjective, noun)
    if pattern < 0.7:
        return "%s %s" % (adjective, noun)
    return "%s of the %s %s" % (rng.choice(TITLE_NOUNS), adjective, noun)


def book_title(rng):
    pattern = rng.random()
    term = rng.choice(TECH_TERMS)
    other = rng.choice(TECH_TERMS)
    if pattern < 0.4:
        return "Database %s in Practice" % (term,)
    if pattern < 0.7:
        return "%s and %s Systems" % (term, other)
    return "Foundations of %s %s" % (term, other)


def paper_title(rng):
    first = rng.choice(TECH_TERMS)
    second = rng.choice(TECH_TERMS)
    adjective = rng.choice(TITLE_ADJECTIVES)
    pattern = rng.random()
    if pattern < 0.4:
        return "Efficient %s for %s Processing" % (first, second)
    if pattern < 0.7:
        return "%s-Aware %s Evaluation" % (first, second)
    return "On %s %s over %s Data" % (adjective, first, second)


def unique_choices(rng, factory, count, max_tries=5):
    """``count`` distinct values from a generator function.

    After a few collisions a roman-numeral-style suffix disambiguates
    immediately — the pools are finite, so demanding more values than
    the pool holds must stay linear, not rejection-sample forever.
    """
    seen = set()
    out = []
    tries = 0
    while len(out) < count:
        value = factory(rng)
        if value in seen:
            tries += 1
            if tries <= max_tries:
                continue
            suffix = 2
            while "%s %d" % (value, suffix) in seen:
                suffix += 1
            value = "%s %d" % (value, suffix)
        tries = 0
        seen.add(value)
        out.append(value)
    return out
