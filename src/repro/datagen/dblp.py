"""The DBLP domain (paper Table 1: Garcia-Molina / SIGMOD / ICDE / VLDB).

Publication-list pages divided into one record per publication:

* **GarciaMolina** — mixed journal and conference publications; journal
  records carry a "... Journal, <year>." venue line (T4 extracts the
  journal year);
* **VLDB** — records with page ranges "pp. <first>-<last>." (T5 finds
  short papers);
* **SIGMOD** / **ICDE** — records with "by <authors>" lines, with a
  planted set of authors who publish in both venues (T6's similarity
  join on author lists).
"""

import random

from repro.datagen.base import build_record, corpus_tag
from repro.datagen.vocab import paper_title, person_name, unique_choices

__all__ = ["generate_dblp", "DBLP_TABLE_SIZES"]

DBLP_TABLE_SIZES = {
    "GarciaMolina": 312,
    "VLDB": 2136,
    "SIGMOD": 1787,
    "ICDE": 1798,
}

_JOURNALS = (
    "TODS",
    "VLDB",
    "TKDE",
    "Information Systems",
    "Data Engineering",
)
_CONFERENCES = ("SIGMOD", "VLDB", "ICDE", "PODS", "EDBT", "KDD")


def generate_dblp(sizes=None, seed=0, shared_author_teams=60):
    """Generate the four DBLP tables as ``{name: [Record]}``."""
    sizes = dict(DBLP_TABLE_SIZES, **(sizes or {}))
    tag = corpus_tag(seed, sizes)
    rng = random.Random(seed + 1)
    total = sum(sizes.values())
    titles = unique_choices(rng, paper_title, total)
    cursor = 0

    def next_title():
        nonlocal cursor
        title = titles[cursor]
        cursor += 1
        return title

    tables = {}
    tables["GarciaMolina"] = [
        _gm_record(rng, "gm-%s" % tag, i, next_title())
        for i in range(1, sizes["GarciaMolina"] + 1)
    ]
    tables["VLDB"] = [
        _vldb_record(rng, "vldb-%s" % tag, i, next_title())
        for i in range(1, sizes["VLDB"] + 1)
    ]
    # author teams planted in exactly one SIGMOD and one ICDE pub each,
    # so T6's ground truth is a clean one-to-one match set
    teams = [
        ", ".join(person_name(rng, with_middle=True) for _ in range(rng.randint(2, 4)))
        for _ in range(shared_author_teams)
    ]
    tables["SIGMOD"] = _venue_table(rng, "sigmod-%s" % tag, sizes["SIGMOD"], next_title, teams)
    tables["ICDE"] = _venue_table(rng, "icde-%s" % tag, sizes["ICDE"], next_title, teams)
    return tables


def _venue_table(rng, prefix, size, next_title, teams):
    planted = {}
    if size:
        team_count = min(len(teams), size)
        positions = rng.sample(range(size), team_count)
        planted = {pos: teams[k] for k, pos in enumerate(positions)}
    return [
        _venue_record(rng, prefix, i + 1, next_title(), planted.get(i))
        for i in range(size)
    ]


def _authors(rng):
    return ", ".join(
        person_name(rng, with_middle=True) for _ in range(rng.randint(1, 4))
    )


def _gm_record(rng, prefix, index, title):
    year = rng.randint(1978, 2006)
    authors = _authors(rng)
    is_journal = rng.random() < 0.35
    if is_journal:
        venue_line = "In {journal} Journal, {year}.".format(
            journal=rng.choice(_JOURNALS), year=year
        )
        journal_truth = (year, str(year), "Journal,")
    else:
        venue_line = "In Proceedings of {conf} {year}.".format(
            conf=rng.choice(_CONFERENCES), year=year
        )
        journal_truth = None
    html = (
        "<div><p><b>{title}</b></p>"
        "<p>{authors}. {venue_line}</p></div>"
    ).format(title=title, authors=authors, venue_line=venue_line)
    return build_record(
        "%s-%04d" % (prefix, index),
        html,
        {
            "title": (title, title, None),
            "journalYear": journal_truth,
        },
        meta={"table": "GarciaMolina", "journal": is_journal},
    )


def _vldb_record(rng, prefix, index, title):
    year = rng.randint(1975, 2005)
    first = rng.randint(1, 600)
    length = rng.choice([rng.randint(1, 4), rng.randint(8, 24)])
    last = first + length
    authors = _authors(rng)
    html = (
        "<div><p><b>{title}</b></p>"
        "<p>{authors}. VLDB {year}, pp. {first}-{last}.</p></div>"
    ).format(title=title, authors=authors, year=year, first=first, last=last)
    return build_record(
        "%s-%04d" % (prefix, index),
        html,
        {
            "title": (title, title, None),
            "firstPage": (first, str(first), "pp."),
            "lastPage": (last, str(last), "-"),
        },
        meta={"table": "VLDB", "pages": length + 1},
    )


def _venue_record(rng, prefix, index, title, planted_team):
    if planted_team is not None:
        authors = planted_team
        shared = True
    else:
        authors = _authors(rng)
        shared = False
    year = rng.randint(1984, 2005)
    html = (
        "<div><p><a href='#'><b>{title}</b></a></p>"
        "<p>by <i>{authors}</i>, {year}</p></div>"
    ).format(title=title, authors=authors, year=year)
    return build_record(
        "%s-%04d" % (prefix, index),
        html,
        {
            "title": (title, title, None),
            "authors": (authors, authors, "by"),
        },
        meta={"table": prefix.split("-")[0].upper(), "shared_team": shared},
    )
