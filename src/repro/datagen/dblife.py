"""The DBLife domain (paper section 6.3).

A heterogeneous snapshot of database-community Web pages: conference
homepages (with panels, chairs, accepted papers), project pages (with
member lists), and personal homepages (pure noise for the IE tasks).
The paper's snapshot was 10,007 crawled pages; we default to a few
hundred generated ones — same heterogeneity, laptop-scale (recorded as
a deviation in EXPERIMENTS.md).

Ground truth covers the three Table 6 tasks:

* **Panel**  — (person, conference) pairs where the person is a panelist;
* **Project** — (person, project) membership pairs;
* **Chair**  — (person, type, conference) chair triples.
"""

import random

from repro.datagen.base import build_record, corpus_tag, find_span
from repro.datagen.vocab import TECH_TERMS, person_name

__all__ = ["generate_dblife", "DBLIFE_DEFAULT_PAGES"]

DBLIFE_DEFAULT_PAGES = {"conference": 120, "project": 100, "homepage": 80}

_CHAIR_TYPES = ("PC", "General", "Demo", "Industrial")
_CONF_NAMES = ("SIGMOD", "VLDB", "ICDE", "PODS", "EDBT", "CIKM", "SSDBM", "WEBDB")


def generate_dblife(pages=None, seed=0):
    """Generate the snapshot.

    Returns ``(records, truth_rows)`` where ``records`` is the list of
    page records (one table, ``docs``) and ``truth_rows`` maps task
    name ('panel' / 'project' / 'chair') to the correct answer rows
    (as text tuples).
    """
    pages = dict(DBLIFE_DEFAULT_PAGES, **(pages or {}))
    tag = corpus_tag(seed, pages)
    rng = random.Random(seed + 3)
    records = []
    truth_rows = {"panel": [], "project": [], "chair": []}

    for i in range(pages["conference"]):
        record, panel_rows, chair_rows = _conference_page(rng, "conf-%s" % tag, i)
        records.append(record)
        truth_rows["panel"].extend(panel_rows)
        truth_rows["chair"].extend(chair_rows)
    for i in range(pages["project"]):
        record, member_rows = _project_page(rng, "proj-%s" % tag, i)
        records.append(record)
        truth_rows["project"].extend(member_rows)
    for i in range(pages["homepage"]):
        records.append(_homepage(rng, "home-%s" % tag, i))
    return records, truth_rows


def _conference_page(rng, prefix, index):
    conf = "%s %d" % (rng.choice(_CONF_NAMES), rng.randint(1999, 2008))
    has_panel = rng.random() < 0.6
    panelists = (
        [person_name(rng) for _ in range(rng.randint(2, 5))] if has_panel else []
    )
    chairs = [
        (rng.choice(_CHAIR_TYPES), person_name(rng))
        for _ in range(rng.randint(1, 3))
    ]
    papers = [
        "%s over %s Streams" % (rng.choice(TECH_TERMS), rng.choice(TECH_TERMS))
        for _ in range(rng.randint(2, 5))
    ]
    parts = [
        "<html><title>%s: International Conference on Data Management</title><body>" % conf,
        "<h2>Organization</h2><ul>",
    ]
    for chair_type, person in chairs:
        parts.append("<li>%s Chair: %s</li>" % (chair_type, person))
    parts.append("</ul>")
    if has_panel:
        parts.append("<h2>Panel Discussion</h2><ul>")
        for person in panelists:
            parts.append("<li>%s (panelist)</li>" % person)
        parts.append("</ul>")
    parts.append("<h2>Accepted Papers</h2><ul>")
    for paper in papers:
        parts.append("<li>%s</li>" % paper)
    parts.append("</ul></body></html>")

    truths = {"conference": (conf, conf, None)}
    record = build_record(
        "%s-%04d" % (prefix, index), "".join(parts), truths, meta={"kind": "conference"}
    )
    # resolve per-person ground-truth spans after parsing
    panel_spans = [find_span(record.doc, p) for p in panelists]
    chair_spans = [find_span(record.doc, p, after="Chair:") for _, p in chairs]
    record.values["panelists"] = panelists
    record.spans["panelists"] = panel_spans
    record.values["chairs"] = chairs
    record.spans["chairs"] = chair_spans
    panel_rows = [(p, conf) for p in panelists]
    chair_rows = [(p, t, conf) for t, p in chairs]
    return record, panel_rows, chair_rows


def _project_page(rng, prefix, index):
    project = "%s%s" % (rng.choice(TECH_TERMS), rng.choice(("Base", "Lab", "Hub", "DB")))
    members = [person_name(rng) for _ in range(rng.randint(2, 6))]
    funding = rng.randint(100, 900)
    parts = [
        "<html><title>%s Project</title><body>" % project,
        "<p>%s is a research project on %s management.</p>"
        % (project, rng.choice(TECH_TERMS).lower()),
        "<h2>Project Members</h2><ul>",
    ]
    for member in members:
        parts.append("<li>%s</li>" % member)
    parts.append("</ul><h2>Funding</h2><p>Supported by grant IIS-%07d ($%dK).</p>" % (
        rng.randint(10 ** 6, 10 ** 7 - 1), funding,
    ))
    parts.append("</body></html>")
    record = build_record(
        "%s-%04d" % (prefix, index),
        "".join(parts),
        {"project": (project + " Project", project + " Project", None)},
        meta={"kind": "project"},
    )
    record.values["members"] = members
    record.spans["members"] = [find_span(record.doc, m) for m in members]
    return record, [(m, project + " Project") for m in members]


def _homepage(rng, prefix, index):
    owner = person_name(rng)
    interests = ", ".join(rng.choice(TECH_TERMS).lower() for _ in range(3))
    html = (
        "<html><title>Home page of {owner}</title><body>"
        "<p>I am a researcher interested in {interests}.</p>"
        "<h2>Teaching</h2><p>CS {num}: Introduction to Databases.</p>"
        "</body></html>"
    ).format(owner=owner, interests=interests, num=rng.randint(100, 799))
    return build_record(
        "%s-%04d" % (prefix, index), html, {}, meta={"kind": "homepage"}
    )
