"""The Books domain (paper Table 1: Amazon / Barnes & Noble searches).

Search-result pages divided into one record per book.  Barnes records
carry a single "Our Price: $..." figure plus numeric distractors (ISBN,
year, savings percentage) so the initial approximate program for T7
over-matches heavily.  Amazon records carry three labelled prices
("List: $", "New: $", "Used: $") for T8's equality/ordering filters.
A planted overlap of titles sold on both sites, with correlated but
different prices, drives the T9 cross-site comparison join.
"""

import random

from repro.datagen.base import build_record, corpus_tag
from repro.datagen.vocab import book_title, person_name, unique_choices

__all__ = ["generate_books", "BOOK_TABLE_SIZES"]

BOOK_TABLE_SIZES = {"Amazon": 2490, "Barnes": 5000}


def _price(rng, lo=8.0, hi=260.0):
    return round(rng.uniform(lo, hi), 2)


def _isbn(rng):
    return "%010d" % rng.randint(10 ** 9, 10 ** 10 - 1)


def generate_books(sizes=None, seed=0, overlap=120):
    """Generate the two book tables as ``{name: [Record]}``."""
    sizes = dict(BOOK_TABLE_SIZES, **(sizes or {}))
    tag = corpus_tag(seed, sizes)
    rng = random.Random(seed + 2)
    overlap = min(overlap, sizes["Amazon"], sizes["Barnes"])
    total = sizes["Amazon"] + sizes["Barnes"] - overlap
    titles = unique_choices(rng, book_title, total)
    shared = titles[:overlap]
    amazon_only = titles[overlap : sizes["Amazon"]]
    barnes_only = titles[sizes["Amazon"] :]

    shared_prices = {title: _price(rng) for title in shared}

    amazon = []
    for i, title in enumerate(shared + amazon_only, start=1):
        base = shared_prices.get(title)
        amazon.append(_amazon_record(rng, "amazon-%s" % tag, i, title, base))
    barnes = []
    for i, title in enumerate(shared + barnes_only, start=1):
        base = shared_prices.get(title)
        barnes.append(_barnes_record(rng, "barnes-%s" % tag, i, title, base))
    rng.shuffle(amazon)
    rng.shuffle(barnes)
    return {"Amazon": amazon, "Barnes": barnes}


def _amazon_record(rng, prefix, index, title, base_price):
    list_price = base_price if base_price is not None else _price(rng)
    # T8 plants records where list == new and used < new
    if rng.random() < 0.25:
        new_price = list_price
        used_price = round(list_price * rng.uniform(0.3, 0.8), 2)
    else:
        new_price = round(list_price * rng.uniform(0.75, 0.97), 2)
        used_price = round(list_price * rng.uniform(0.2, 1.1), 2)
    author = person_name(rng)
    year = rng.randint(1995, 2007)
    html = (
        "<div><p><a href='#'><b>{title}</b></a></p>"
        "<p>by {author} ({year})</p>"
        "<p>List: ${lp} New: ${np} Used: ${up}</p>"
        "<p>ISBN: {isbn}. Usually ships in 2 days.</p></div>"
    ).format(
        title=title,
        author=author,
        year=year,
        lp="%.2f" % list_price,
        np="%.2f" % new_price,
        up="%.2f" % used_price,
        isbn=_isbn(rng),
    )
    return build_record(
        "%s-%05d" % (prefix, index),
        html,
        {
            "title": (title, title, None),
            "listPrice": (list_price, "%.2f" % list_price, "List: $"),
            "newPrice": (new_price, "%.2f" % new_price, "New: $"),
            "usedPrice": (used_price, "%.2f" % used_price, "Used: $"),
        },
        meta={"table": "Amazon"},
    )


def _barnes_record(rng, prefix, index, title, base_price):
    if base_price is not None:
        # correlated with Amazon's list price: sometimes above, sometimes below
        price = round(base_price * rng.uniform(0.85, 1.25), 2)
    else:
        price = _price(rng)
    author = person_name(rng)
    year = rng.randint(1995, 2007)
    save_pct = rng.randint(5, 40)
    html = (
        "<div><p><a href='#'><b>{title}</b></a></p>"
        "<p>by {author} ({year})</p>"
        "<p>Our Price: <b>${price}</b>. You save {save}%.</p>"
        "<p>ISBN: {isbn}. In stock.</p></div>"
    ).format(
        title=title,
        author=author,
        year=year,
        price="%.2f" % price,
        save=save_pct,
        isbn=_isbn(rng),
    )
    return build_record(
        "%s-%05d" % (prefix, index),
        html,
        {
            "title": (title, title, None),
            "price": (price, "%.2f" % price, "Our Price: $"),
        },
        meta={"table": "Barnes"},
    )
