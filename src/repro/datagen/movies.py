"""The Movies domain (paper Table 1: IMDB / Ebert / Prasanna lists).

Three "top movies" pages, each divided into one record per movie, with
the formatting quirks the tasks rely on: IMDB titles are bold
hyperlinks with a vote count behind a "Votes:" label; Ebert titles are
italic with the year in parentheses; Prasanna entries are hyperlinked
list items.  A configurable core of movies appears on all three lists
(with small title variations) so the T3 three-way similarity join has
real answers.
"""

import random

from repro.datagen.base import build_record, corpus_tag
from repro.datagen.vocab import movie_title, unique_choices

__all__ = ["generate_movies", "MOVIE_TABLE_SIZES"]

#: Default sizes, matching the paper's Table 1 / Table 3 scenarios.
MOVIE_TABLE_SIZES = {"IMDB": 250, "Ebert": 242, "Prasanna": 517}


def _variant(rng, title):
    """A slightly different rendering of a shared movie title.

    Variations stay within the similarity threshold of the tasks'
    ``similar`` p-function (dropping a leading article, one extra
    token), as cross-site title renderings do in practice.
    """
    roll = rng.random()
    if roll < 0.6:
        return title
    if roll < 0.8 and title.startswith("The "):
        return title[4:]
    if roll < 0.9:
        return title + " Remastered"
    return title


def generate_movies(sizes=None, seed=0, overlap=40):
    """Generate the three movie tables.

    Returns ``{"IMDB": [Record], "Ebert": [...], "Prasanna": [...]}``.
    ``overlap`` movies are planted on all three lists.
    """
    sizes = dict(MOVIE_TABLE_SIZES, **(sizes or {}))
    tag = corpus_tag(seed, sizes)
    rng = random.Random(seed)
    total_needed = sum(sizes.values())
    titles = unique_choices(rng, movie_title, total_needed + overlap)
    shared = [(t, rng.randint(1935, 2005)) for t in titles[:overlap]]
    cursor = overlap

    def take(count):
        nonlocal cursor
        out = [(t, rng.randint(1935, 2005)) for t in titles[cursor : cursor + count]]
        cursor += count
        return out

    tables = {}
    for name, size in sizes.items():
        shared_here = min(overlap, size)
        movies = [( _variant(rng, t), y) for t, y in shared[:shared_here]]
        movies += take(max(0, size - shared_here))
        rng.shuffle(movies)
        builder = {"IMDB": _imdb_record, "Ebert": _ebert_record, "Prasanna": _prasanna_record}[name]
        prefix = "%s-%s" % (name.lower(), tag)
        tables[name] = [
            builder(rng, prefix, rank, title, year)
            for rank, (title, year) in enumerate(movies, start=1)
        ]
    return tables


def _imdb_record(rng, prefix, rank, title, year):
    rating = round(rng.uniform(7.0, 9.3), 1)
    votes = rng.choice(
        [rng.randint(800, 24_000), rng.randint(26_000, 400_000)]
    )
    votes_text = "{:,}".format(votes)
    html = (
        "<div><p>{rank}. <a href='#'><b>{title}</b></a> <i>({year})</i></p>"
        "<p>Rating: {rating} out of 10. Votes: {votes}</p></div>"
    ).format(rank=rank, title=title, year=year, rating=rating, votes=votes_text)
    return build_record(
        "%s-%04d" % (prefix, rank),
        html,
        {
            "title": (title, title, None),
            "year": (year, str(year), "("),
            "votes": (votes, votes_text, "Votes:"),
        },
        meta={"table": "IMDB", "rank": rank},
    )


def _ebert_record(rng, prefix, rank, title, year):
    comments = (
        "A luminous, unhurried masterpiece.",
        "Still astonishing on every viewing.",
        "The rare sequel that deepens the original.",
        "Flawed but unforgettable.",
        "A triumph of mood over plot.",
    )
    html = (
        "<div><p>{rank}. <i>{title}</i> ({year})</p>"
        "<p>{comment}</p></div>"
    ).format(rank=rank, title=title, year=year, comment=rng.choice(comments))
    return build_record(
        "%s-%04d" % (prefix, rank),
        html,
        {
            "title": (title, title, None),
            "year": (year, str(year), "("),
        },
        meta={"table": "Ebert", "rank": rank},
    )


def _prasanna_record(rng, prefix, rank, title, year):
    html = (
        "<ul><li><a href='#'>{title}</a> ({year})</li></ul>"
    ).format(title=title, year=year)
    return build_record(
        "%s-%04d" % (prefix, rank),
        html,
        {
            "title": (title, title, None),
            "year": (year, str(year), "("),
        },
        meta={"table": "Prasanna", "rank": rank},
    )
