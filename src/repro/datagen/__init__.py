"""Synthetic corpora with ground truth (substitute for crawled pages)."""

from repro.datagen.base import Record, build_record, find_span
from repro.datagen.books import BOOK_TABLE_SIZES, generate_books
from repro.datagen.dblife import DBLIFE_DEFAULT_PAGES, generate_dblife
from repro.datagen.dblp import DBLP_TABLE_SIZES, generate_dblp
from repro.datagen.movies import MOVIE_TABLE_SIZES, generate_movies

__all__ = [
    "BOOK_TABLE_SIZES",
    "DBLIFE_DEFAULT_PAGES",
    "DBLP_TABLE_SIZES",
    "MOVIE_TABLE_SIZES",
    "Record",
    "build_record",
    "find_span",
    "generate_books",
    "generate_dblife",
    "generate_dblp",
    "generate_movies",
]
