"""Writing generated corpora to disk.

The generators produce in-memory records; this module materialises
them as directories of ``.html`` files (one per record, exactly the
markup the record was built from) plus a ``ground_truth.json`` per
table — so the CLI (``python -m repro run --table name=dir``) and any
external tool can consume the same corpora the experiments use.
"""

import json
import pathlib

__all__ = ["emit_tables", "load_ground_truth"]


def _truth_entry(record):
    entry = {"values": {}, "spans": {}}
    for attr, value in record.values.items():
        if isinstance(value, (list, tuple)):
            continue  # aggregate truths (e.g. panelist lists) are per-task
        entry["values"][attr] = value
    for attr, span in record.spans.items():
        if span is None or isinstance(span, (list, tuple)):
            continue
        entry["spans"][attr] = {
            "start": span.start,
            "end": span.end,
            "text": span.text,
        }
    return entry


def emit_tables(tables, directory):
    """Write ``{table: [Record]}`` under ``directory``.

    Layout::

        directory/<table>/<doc_id>.html
        directory/<table>/ground_truth.json

    Returns the list of written file paths.
    """
    root = pathlib.Path(directory)
    written = []
    for name, records in tables.items():
        table_dir = root / name
        table_dir.mkdir(parents=True, exist_ok=True)
        truth = {}
        for record in records:
            if not record.html:
                raise ValueError(
                    "record %s has no source HTML to emit" % (record.doc.doc_id,)
                )
            path = table_dir / ("%s.html" % record.doc.doc_id)
            path.write_text(record.html, encoding="utf-8")
            written.append(path)
            truth[record.doc.doc_id] = _truth_entry(record)
        truth_path = table_dir / "ground_truth.json"
        truth_path.write_text(
            json.dumps(truth, indent=1, ensure_ascii=False), encoding="utf-8"
        )
        written.append(truth_path)
    return written


def load_ground_truth(table_dir):
    """Read a table's ``ground_truth.json`` back as a dict."""
    path = pathlib.Path(table_dir) / "ground_truth.json"
    return json.loads(path.read_text(encoding="utf-8"))
