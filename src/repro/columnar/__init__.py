"""The columnar storage tier: numpy-backed per-document artifacts.

The feature indexes in :mod:`repro.features.index` answer
``Verify``/``Refine`` from sorted position tables.  This package owns
the *storage* of those tables: every document's token offsets,
word/capitalised-run tables, number-token positions, and region
interval arrays live as ``int64`` numpy columns
(:class:`~repro.columnar.arrays.DocColumns`), buildable once per
corpus, packed into a single flat buffer
(:class:`~repro.columnar.store.CorpusArtifacts`) and persisted/loaded
via ``.npy`` + ``np.memmap`` under a content-addressed cache directory
(:class:`~repro.columnar.store.ColumnarStore`).

Splitting storage from index logic buys three things:

* **vectorized evaluation** — the batch ``verify_batch``/``refine_batch``
  kernels operate directly on the columns with ``np.searchsorted``;
* **warm starts** — a second engine over the same corpus maps the
  on-disk artifact instead of re-tokenizing every document;
* **zero-copy workers** — forked worker processes inherit the same
  read-only mapping, so the fork payload carries ``(path, digest)``
  references instead of pickled index structures.
"""

from repro.columnar.arrays import LAYOUT_VERSION, DocColumns, build_doc_columns
from repro.columnar.results import (
    ResultStore,
    load_result,
    prune_cache_dir,
    save_result,
)
from repro.columnar.store import (
    ColumnarStore,
    CorpusArtifacts,
    build_artifacts,
    corpus_digest,
    load_artifacts,
    save_artifacts,
)

__all__ = [
    "LAYOUT_VERSION",
    "DocColumns",
    "build_doc_columns",
    "ColumnarStore",
    "CorpusArtifacts",
    "ResultStore",
    "build_artifacts",
    "corpus_digest",
    "load_artifacts",
    "load_result",
    "prune_cache_dir",
    "save_artifacts",
    "save_result",
]
