"""Per-document numpy columns: the unit of columnar storage.

One :class:`DocColumns` holds every sorted position table the feature
indexes need, as ``int64`` arrays:

``token_starts`` / ``token_ends``
    all tokens, in document order (the arrays behind
    :class:`~repro.features.index.TokenArrays`);
``word_starts`` / ``word_ends``
    WORD tokens only;
``cap_starts`` / ``cap_ends`` / ``cap_run``
    capitalised WORD tokens with their maximal-run ids (the
    :class:`~repro.features.index.CapitalizedIndex` tables);
``num_starts`` / ``num_ends``
    NUMBER tokens (the :class:`~repro.features.index.NumericIndex`
    table);
``region(kind)``
    per region kind, ``(starts, ends, max_end_prefix)`` — the
    :class:`~repro.features.index.RegionIndex` interval arrays with the
    prefix-max precomputed.

Columns are derived purely from immutable document content, so they can
be built once, shared across threads, inherited by forked workers, and
persisted (see :mod:`repro.columnar.store`) — there is nothing to
invalidate.
"""

import numpy as np

from repro.text.tokenize import NUMBER, WORD

__all__ = ["LAYOUT_VERSION", "DocColumns", "build_doc_columns"]

#: Bumped when the column layout changes; folded into the artifact
#: digest so on-disk bundles from an older layout rebuild instead of
#: silently loading wrong.
LAYOUT_VERSION = 1

_I64 = np.int64
_EMPTY = np.empty(0, dtype=_I64)

#: Scalar column names, in canonical (persisted) order.
SCALAR_COLUMNS = (
    "token_starts",
    "token_ends",
    "word_starts",
    "word_ends",
    "cap_starts",
    "cap_ends",
    "cap_run",
    "num_starts",
    "num_ends",
)


class DocColumns:
    """One document's position tables as ``int64`` numpy columns."""

    __slots__ = ("doc_id",) + SCALAR_COLUMNS + ("_regions",)

    def __init__(self, doc_id, regions=None, **columns):
        self.doc_id = doc_id
        for name in SCALAR_COLUMNS:
            setattr(self, name, columns.get(name, _EMPTY))
        #: region kind -> (starts, ends, max_end_prefix)
        self._regions = dict(regions or {})

    def region(self, kind):
        """``(starts, ends, max_end_prefix)`` arrays for one region kind."""
        return self._regions.get(kind, (_EMPTY, _EMPTY, _EMPTY))

    def region_kinds(self):
        return sorted(self._regions)

    def columns(self):
        """``(name, array)`` pairs in canonical order (for persistence)."""
        out = [(name, getattr(self, name)) for name in SCALAR_COLUMNS]
        for kind in self.region_kinds():
            starts, ends, maxend = self._regions[kind]
            out.append(("region:%s:starts" % kind, starts))
            out.append(("region:%s:ends" % kind, ends))
            out.append(("region:%s:maxend" % kind, maxend))
        return out

    @classmethod
    def from_columns(cls, doc_id, named):
        """Rebuild from ``name -> array`` (inverse of :meth:`columns`)."""
        scalars = {}
        regions = {}
        for name, array in named.items():
            if name.startswith("region:"):
                _, kind, part = name.split(":")
                regions.setdefault(kind, {})[part] = array
            else:
                scalars[name] = array
        packed = {
            kind: (
                parts.get("starts", _EMPTY),
                parts.get("ends", _EMPTY),
                parts.get("maxend", _EMPTY),
            )
            for kind, parts in regions.items()
        }
        return cls(doc_id, regions=packed, **scalars)

    @property
    def nbytes(self):
        return sum(array.nbytes for _, array in self.columns())

    def __repr__(self):
        return "DocColumns(%r, %d tokens)" % (self.doc_id, len(self.token_starts))


def _as_column(values):
    return np.asarray(values, dtype=_I64)


def build_doc_columns(doc):
    """Build :class:`DocColumns` from a document (tokenizes once).

    One pass over the token stream fills every token-derived column;
    the capitalised-run sweep mirrors
    ``CapitalizedIndex``/``CapitalizedFeature`` exactly: a run is a
    maximal sequence of capitalised WORD tokens unbroken by a lowercase
    WORD token (non-word tokens neither break nor extend it).
    """
    token_starts = []
    token_ends = []
    word_starts = []
    word_ends = []
    cap_starts = []
    cap_ends = []
    cap_run = []
    num_starts = []
    num_ends = []
    run_id = -1
    in_run = False
    for token in doc.tokens:
        token_starts.append(token.start)
        token_ends.append(token.end)
        if token.kind == NUMBER:
            num_starts.append(token.start)
            num_ends.append(token.end)
        if token.kind != WORD:
            continue
        word_starts.append(token.start)
        word_ends.append(token.end)
        if token.text[:1].isupper():
            if not in_run:
                run_id += 1
                in_run = True
            cap_starts.append(token.start)
            cap_ends.append(token.end)
            cap_run.append(run_id)
        else:
            in_run = False
    regions = {}
    for kind, intervals in doc.regions.items():
        if not intervals:
            continue
        starts = _as_column([s for s, _ in intervals])
        ends = _as_column([e for _, e in intervals])
        regions[kind] = (starts, ends, np.maximum.accumulate(ends))
    return DocColumns(
        doc.doc_id,
        regions=regions,
        token_starts=_as_column(token_starts),
        token_ends=_as_column(token_ends),
        word_starts=_as_column(word_starts),
        word_ends=_as_column(word_ends),
        cap_starts=_as_column(cap_starts),
        cap_ends=_as_column(cap_ends),
        cap_run=_as_column(cap_run),
        num_starts=_as_column(num_starts),
        num_ends=_as_column(num_ends),
    )
