"""Persistent, content-addressed partition-result cache.

The columnar tier caches *inputs* (token/region columns); this module
caches *outputs*: evaluated :class:`~repro.ctables.ctable.CompactTable`
partition results, keyed by the executor's rule fingerprint token — a
SHA-256 over the rule split, its upstream tokens, and the partition's
:attr:`~repro.text.corpus.Corpus.content_digest`.  A key therefore
changes whenever the plan *or* any document content in the partition
changes, which is what makes delta execution safe: after an edit, only
the partitions whose digests moved miss the cache.

Layout mirrors the columnar bundles, two files per entry::

    <key>.res.npy        flat int64 buffer (repro.ctables.codec)
    <key>.res.meta.json  codec sidecar + store envelope (key, total)

and so does the discipline: writes go through ``mkstemp`` +
``os.replace`` (a crashed writer leaves no half-entry), and *any*
load-side defect — missing file, garbage buffer, version or key
mismatch, a span that no longer fits its document — yields ``None`` so
the executor recomputes.  The cache is an accelerator, never a source
of truth.

:func:`prune_cache_dir` keeps a shared artifact directory bounded: when
entry-count or byte caps are exceeded it evicts whole entries (columnar
and result alike) oldest-first by mtime.
"""

import json
import os
import tempfile

import numpy as np

from repro.ctables.codec import CodecError, decode_table, encode_table
from repro.observability.logs import get_logger

__all__ = [
    "ResultStore",
    "load_result",
    "prune_cache_dir",
    "save_result",
]

logger = get_logger("columnar")

_I64 = np.int64

#: suffixes that group a cache entry's files; longest first so
#: ``.res.meta.json`` is never mistaken for a columnar ``.meta.json``
_ENTRY_SUFFIXES = (".res.meta.json", ".res.npy", ".meta.json", ".cols.npy")


def _result_paths(cache_dir, key):
    return (
        os.path.join(cache_dir, "%s.res.npy" % key),
        os.path.join(cache_dir, "%s.res.meta.json" % key),
    )


def _atomic_write(cache_dir, path, suffix, writer):
    fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=suffix)
    try:
        writer(fd)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def save_result(table, cache_dir, key):
    """Persist one evaluated table under ``key``; returns the ``.npy`` path.

    Raises :class:`~repro.ctables.codec.CodecError` when the table
    holds values the codec cannot represent exactly — callers skip
    persisting such results rather than storing an approximation.
    """
    data, meta = encode_table(table)
    meta["key"] = key
    os.makedirs(cache_dir, exist_ok=True)
    data_path, meta_path = _result_paths(cache_dir, key)

    def write_data(fd):
        with os.fdopen(fd, "wb") as handle:
            np.save(handle, np.ascontiguousarray(data))

    def write_meta(fd):
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)

    _atomic_write(cache_dir, data_path, ".npy.tmp", write_data)
    _atomic_write(cache_dir, meta_path, ".json.tmp", write_meta)
    return data_path


def load_result(cache_dir, key, docs_by_id):
    """Decode a persisted result, or ``None`` when absent/corrupt/stale.

    ``docs_by_id`` supplies the live documents spans rehydrate against.
    Every failure mode — missing files, malformed JSON, a key or codec
    version mismatch, any structural defect the codec rejects — yields
    ``None`` so the caller recomputes.
    """
    data_path, meta_path = _result_paths(cache_dir, key)
    if not (os.path.exists(data_path) and os.path.exists(meta_path)):
        return None
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("key") != key:
            raise ValueError("key mismatch")
        data = np.load(data_path, allow_pickle=False)
        if data.ndim != 1 or data.dtype != _I64:
            raise ValueError("unexpected buffer shape/dtype")
        if len(data) != int(meta.get("total", -1)):
            raise ValueError("buffer length mismatch")
        return decode_table(data, meta, docs_by_id)
    except Exception as exc:
        logger.warning("result artifact %s unusable (%s); recomputing", key, exc)
        return None


def _entry_groups(cache_dir):
    """``{entry_key: [(path, size, mtime), ...]}`` for known cache files."""
    groups = {}
    try:
        names = os.listdir(cache_dir)
    except OSError:
        return groups
    for name in names:
        for suffix in _ENTRY_SUFFIXES:
            if name.endswith(suffix):
                path = os.path.join(cache_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    break
                key = name[: -len(suffix)]
                groups.setdefault(key, []).append(
                    (path, stat.st_size, stat.st_mtime)
                )
                break  # .tmp files and unknown names are never touched
    return groups


def prune_cache_dir(cache_dir, max_entries=None, max_bytes=None, keep=()):
    """Evict cache entries beyond the caps; returns the entries removed.

    An *entry* is the file group sharing one ``<key>`` stem — a columnar
    bundle or a persisted result.  Eviction is whole-entry, oldest
    mtime first, with mtime *ties broken by key name*: filesystem
    timestamps are coarse (whole seconds on some mounts), so entries
    written in one burst routinely share an mtime and "oldest first"
    alone would leave the victim to dict/listdir order.  Keys in
    ``keep`` (the live working set) are never evicted even when over
    cap.  Unknown files are left alone.
    """
    if max_entries is None and max_bytes is None:
        return 0
    groups = _entry_groups(cache_dir)
    keep = set(keep)
    entries = sorted(
        (
            (max(mtime for _, _, mtime in files), key, files)
            for key, files in groups.items()
        ),
        key=lambda entry: (entry[0], entry[1]),
    )
    total_bytes = sum(size for _, _, files in entries for _, size, _ in files)
    count = len(entries)
    evicted = 0
    for _, key, files in entries:
        over_count = max_entries is not None and count > max_entries
        over_bytes = max_bytes is not None and total_bytes > max_bytes
        if not (over_count or over_bytes):
            break
        if key in keep:
            continue
        for path, size, _ in files:
            try:
                os.unlink(path)
            except OSError:
                continue
            total_bytes -= size
        count -= 1
        evicted += 1
    return evicted


class ResultStore:
    """The executor-facing handle on one result-cache directory.

    Wraps :func:`save_result` / :func:`load_result` with the policy the
    engine needs: idempotent saves (an existing entry is only touched,
    not rewritten — unless its last load failed, in which case the
    corrupt entry is overwritten), silent misses, optional size caps
    enforced by :func:`prune_cache_dir` after each save, and counters
    for the observability layer.  Safe to share across engines and
    sessions; concurrent writers are harmless because writes are
    atomic and content-addressed.
    """

    __slots__ = (
        "cache_dir",
        "max_entries",
        "max_bytes",
        "saved",
        "loaded",
        "load_failures",
        "skipped",
        "evicted",
        "_live",
        "_rewrite",
    )

    def __init__(self, cache_dir, max_entries=None, max_bytes=None):
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.saved = 0
        self.loaded = 0
        self.load_failures = 0
        self.skipped = 0
        self.evicted = 0
        #: keys served or saved this process — prune never evicts these
        self._live = set()
        #: keys whose last load failed; the next save overwrites them
        self._rewrite = set()

    @classmethod
    def from_config(cls, config):
        """The store an :class:`ExecConfig` asks for, or ``None``.

        ``None`` when incremental execution is disabled or no cache
        directory is configured — callers treat a missing store as
        "no persistence", never as an error.
        """
        if config is None or not getattr(config, "incremental", True):
            return None
        target = getattr(config, "result_cache", None)
        if target is None:
            return None
        if isinstance(target, ResultStore):
            return target
        return cls(str(target))

    def load(self, key, docs_by_id):
        """The persisted table for ``key``, or ``None`` (silent miss)."""
        data_path, meta_path = _result_paths(self.cache_dir, key)
        if not (os.path.exists(data_path) and os.path.exists(meta_path)):
            return None
        table = load_result(self.cache_dir, key, docs_by_id)
        if table is None:
            self.load_failures += 1
            self._rewrite.add(key)
            return None
        self.loaded += 1
        self._live.add(key)
        return table

    def save(self, key, table):
        """Persist ``table`` under ``key`` unless already present."""
        self._live.add(key)
        data_path, meta_path = _result_paths(self.cache_dir, key)
        if (
            key not in self._rewrite
            and os.path.exists(data_path)
            and os.path.exists(meta_path)
        ):
            self.skipped += 1
            for path in (data_path, meta_path):
                try:
                    os.utime(path)  # refresh LRU standing
                except OSError:
                    pass
            return
        try:
            save_result(table, self.cache_dir, key)
        except CodecError as exc:
            logger.warning("result %s not persisted (%s)", key, exc)
            return
        self._rewrite.discard(key)
        self.saved += 1
        self.prune()

    def prune(self):
        """Apply the configured caps; returns entries evicted this call."""
        if self.max_entries is None and self.max_bytes is None:
            return 0
        evicted = prune_cache_dir(
            self.cache_dir,
            max_entries=self.max_entries,
            max_bytes=self.max_bytes,
            keep=self._live,
        )
        self.evicted += evicted
        return evicted

    def __repr__(self):
        return "ResultStore(%r, saved=%d, loaded=%d, evicted=%d)" % (
            self.cache_dir,
            self.saved,
            self.loaded,
            self.evicted,
        )
